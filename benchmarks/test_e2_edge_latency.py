"""Bench E2 — edge latency across paths and low-power protocols (§II-C)."""

from conftest import record, run_once

from repro.experiments.e2_edge_latency import run


def test_e2_edge_latency(benchmark):
    result = run_once(benchmark, run, n_requests=60, seed=13)
    record(result)
    paths = result.data["paths"]
    # the §II-C ordering: direct < indirect (master hop) < offloaded
    assert paths["direct"] < paths["indirect"]
    assert paths["indirect"] < paths["horizontal"]
    assert paths["horizontal"] < paths["vertical"]
    # local processing stays near-real-time
    assert paths["indirect"] < 0.5
    protos = result.data["protocols"]
    # the protocol ladder: fast PANs ≪ LPWANs
    assert protos["zigbee"] < protos["lora"] < protos["sigfox"]
    assert protos["enocean"] < protos["lora"]
