"""Bench E1 — PUE: data furnace vs air-cooled datacenter (§II-A)."""

from conftest import record, run_once

from repro.experiments.e1_pue import run


def test_e1_pue(benchmark):
    result = run_once(benchmark, run, duration_days=1.0, seed=11)
    record(result)
    d = result.data
    # the §II-A claim: DF ≈ 1.0x (no cooling), classical DC well above
    assert d["df_pue"] < 1.05
    assert d["dc_pue"] > 1.3
    # the data-furnace dividend: the DF fleet's energy is useful heat
    assert d["df_useful_heat_fraction"] > 0.9
    assert d["dc_useful_heat_fraction"] == 0.0
    # both substrates actually did the work
    assert d["df_completed"] > 0
    assert d["dc_completed"] > 0
