"""Bench E12 — processor aging under free cooling (§III-C)."""

from conftest import record, run_once

from repro.experiments.e12_aging import run


def test_e12_aging(benchmark):
    result = run_once(benchmark, run, seed=53)
    record(result)
    d = result.data
    # §III-C: free cooling accelerates aging relative to chilled aisles
    assert d["qrad_lifetime_y"] < d["dc_lifetime_y"]
    assert d["qrad_flat_lifetime_y"] < d["dc_lifetime_y"]
    # the heat-driven duty cycle (compute only when heat is wanted) softens it
    assert d["qrad_lifetime_y"] > d["qrad_flat_lifetime_y"]
    # but even the worst case stays beyond a realistic refresh horizon
    assert d["qrad_flat_lifetime_y"] > 5.0
    # lifetime decreases monotonically with utilization on both substrates
    utils = sorted(d["sweep"])
    q = [d["sweep"][u][0] for u in utils]
    c = [d["sweep"][u][1] for u in utils]
    assert all(a > b for a, b in zip(q, q[1:]))
    assert all(a > b for a, b in zip(c, c[1:]))
