"""Bench A2 — fault resilience and the §IV decentralisation claim."""

from conftest import record, run_once

from repro.experiments.a2_resilience import run


def test_a2_resilience(benchmark):
    result = run_once(benchmark, run, seed=61)
    record(result)
    d = result.data
    # heat delivery (the §IV "basic service") survives every fault
    assert d["comfort_in_band"] > 0.9
    # crashed servers' work was salvaged, not lost
    assert d["salvaged"] > 0
    # server crashes are absorbed by the rest of the cluster
    assert d["2 servers down (09–12h)"]["served_rate"] > 0.95
    # a WAN partition does not matter for local service
    assert d["wan cut (18–19h)"]["served_rate"] > 0.95
    # a master outage hurts ONLY its district's indirect path (~half the city)
    assert 0.3 < d["master-0 down (14–16h)"]["served_rate"] < 0.8
    # full recovery afterwards
    assert d["recovered (19–24h)"]["served_rate"] > 0.95
