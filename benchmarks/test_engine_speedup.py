"""Bench the simulation hot path: scalar vs vector vs surrogate kernels.

Runs an E14-shaped city (same generator as the scale experiment: districts
of Q.rad-heated buildings under an edge workload, PREEMPT saturation policy)
at 1x/4x/16x fleet size under the scalar and vector kernels, then pushes the
vector vs surrogate comparison to 64x/256x, and emits
``benchmarks/results/BENCH_engine.json`` — sim-phase wall-clock per kernel,
speedups, and the cross-kernel equivalence verdict — which CI uploads as the
``engine-bench`` artifact.

Methodology:

* Only the simulation phase (``run_until``) is timed.  City construction and
  workload generation are identical work under either kernel and would
  dilute the ratio.
* Best-of-3: each (size, kernel) cell runs three times and keeps the fastest
  wall-clock, damping scheduler noise on shared runners.
* Every run's output signature (completed/expired request multisets, fleet
  energy, executed cycles, filler count, event count) must match across
  kernels and across repetitions — a speedup over a wrong answer is worth
  nothing.

The surrogate section keeps the edge flow aimed at the tier's own sample
districts (byte-identical under both kernels, and the quiesced remainder
stays aggregated), asserts run-to-run determinism per kernel, and checks the
fleet-energy deviation against the declared tolerance budget instead of byte
equality — the surrogate trades bounded accuracy for wall-clock.

The >=3x assertion at the 16x fleet and the >=10x assertion at the 256x
fleet are gated on ``os.cpu_count() >= 2`` so a starved single-core runner
records its numbers honestly (rows labeled ``skipped_insufficient_cores``)
instead of flaking.
"""

import os
import time

import bench_schema
from conftest import RESULTS_DIR

from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import mid_month_start, small_city
from repro.thermal import budget
from repro.thermal.surrogate import SurrogateConfig
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

DAY = 86400.0
SEED = 83
REPEATS = 3
SIZES = (1, 4, 16)          # n_districts: 1x / 4x / 16x fleet
LOAD_DAYS = 0.25            # edge arrivals span
DRAIN_DAYS = 0.05           # extra horizon to drain in-flight work
RATE_PER_HOUR = 60.0
MIN_SPEEDUP_16X = 3.0

SUR_SIZES = (64, 256)       # 64x / 256x fleet: vector vs surrogate
SUR_REPEATS = 2
SUR_LOAD_DAYS = 1.0         # longer horizon: amortise the exact warm-up
SUR_TIER = SurrogateConfig(warmup_ticks=6, sample_districts=1)
MIN_SUR_SPEEDUP_256X = 10.0


def _run(n_districts: int, kernel: str, load_buildings=None,
         load_days: float = LOAD_DAYS):
    """Build the city, inject the workload, time the sim phase only.

    ``load_buildings`` restricts the edge flow to a subset of buildings (the
    surrogate section targets its sample districts); ``None`` loads all.
    """
    mw = small_city(
        seed=SEED,
        start_time=mid_month_start(1),
        n_districts=n_districts,
        buildings_per_district=2,
        rooms_per_building=3,
        saturation_policy=SaturationPolicy.PREEMPT,
        kernel=kernel,
        surrogate=SUR_TIER if kernel == "surrogate" else None,
    )
    t0 = mw.engine.now
    for bname in mw.buildings:
        if load_buildings is not None and bname not in load_buildings:
            continue
        gen = EdgeWorkloadGenerator(
            mw.rngs.stream(f"edge-{bname}"),
            source=bname,
            config=EdgeWorkloadConfig(rate_per_hour=RATE_PER_HOUR),
        )
        mw.inject(gen.generate(t0, t0 + load_days * DAY))
    wall0 = time.perf_counter()
    mw.run_until(t0 + (load_days + DRAIN_DAYS) * DAY)
    wall = time.perf_counter() - wall0
    # request ids come from a global counter, so the signature is built from
    # id-insensitive fields only
    signature = (
        sorted(
            (r.time, r.source, r.started_at, r.completed_at, r.executed_on)
            for r in mw.completed_edge()
        ),
        sorted((r.time, r.source) for r in mw.expired_edge()),
        mw.fleet_energy_j(),
        mw.total_cycles_executed(),
        mw.filler_completed,
        mw.engine.events_executed,
    )
    return wall, signature


def test_engine_speedup():
    cpus = os.cpu_count() or 1
    rows = []
    all_identical = True
    for n in SIZES:
        walls = {"scalar": [], "vector": []}
        sigs = {"scalar": [], "vector": []}
        for _ in range(REPEATS):
            for kernel in ("scalar", "vector"):
                wall, sig = _run(n, kernel)
                walls[kernel].append(wall)
                sigs[kernel].append(sig)
        # determinism within a kernel and equivalence across kernels
        for kernel in ("scalar", "vector"):
            assert all(s == sigs[kernel][0] for s in sigs[kernel]), (
                f"n={n}: {kernel} kernel is not run-to-run deterministic"
            )
        identical = sigs["scalar"][0] == sigs["vector"][0]
        all_identical = all_identical and identical
        assert identical, f"n={n}: kernels disagree on simulation outputs"
        scalar_s = min(walls["scalar"])
        vector_s = min(walls["vector"])
        rows.append(
            {
                "n_districts": n,
                "fleet_multiplier": f"{n}x",
                "scalar_s": round(scalar_s, 3),
                "vector_s": round(vector_s, 3),
                "speedup": round(scalar_s / vector_s, 2),
                "outputs_identical": identical,
            }
        )

    big = rows[-1]
    if cpus >= 2:
        assert big["speedup"] >= MIN_SPEEDUP_16X, (
            f"vector kernel only {big['speedup']:.2f}x at {big['fleet_multiplier']} "
            f"fleet (need >= {MIN_SPEEDUP_16X}x)"
        )

    _update_bench("sizes", rows, {
        "experiment": "ENGINE",
        "seed": SEED,
        "repeats": REPEATS,
        "timed_phase": "run_until only",
        "load_days": LOAD_DAYS,
        "drain_days": DRAIN_DAYS,
        "rate_per_hour": RATE_PER_HOUR,
        "speedup_asserted": cpus >= 2,
        "min_speedup_16x": MIN_SPEEDUP_16X,
        "outputs_identical": all_identical,
    })


def _update_bench(section: str, rows: list, context: dict) -> None:
    """Merge one test's rows into BENCH_engine.json (tests run separately)."""
    bench_schema.merge_section(RESULTS_DIR / "BENCH_engine.json", "engine",
                               section, rows, context)


def _sample_building_names(n_districts: int):
    """The surrogate's own sample districts for this seed/size — discovered
    from a probe city so both kernels get the identical (restricted) load."""
    probe = small_city(
        seed=SEED, start_time=mid_month_start(1), n_districts=n_districts,
        buildings_per_district=2, rooms_per_building=3,
        saturation_policy=SaturationPolicy.PREEMPT,
        kernel="surrogate", surrogate=SUR_TIER,
    )
    return frozenset(
        bname for bname in probe.buildings
        if int(bname.split("/")[0].split("-")[1])
        in probe.surrogate.sample_districts
    )


def test_surrogate_speedup():
    """64x/256x fleets: the surrogate tier vs the vector kernel it rides on."""
    cpus = os.cpu_count() or 1
    asserted = cpus >= 2
    rows = []
    for n in SUR_SIZES:
        load = _sample_building_names(n)
        walls = {"vector": [], "surrogate": []}
        sigs = {"vector": [], "surrogate": []}
        for _ in range(SUR_REPEATS):
            for kernel in ("vector", "surrogate"):
                wall, sig = _run(n, kernel, load_buildings=load,
                                 load_days=SUR_LOAD_DAYS)
                walls[kernel].append(wall)
                sigs[kernel].append(sig)
        for kernel in ("vector", "surrogate"):
            assert all(s == sigs[kernel][0] for s in sigs[kernel]), (
                f"n={n}: {kernel} kernel is not run-to-run deterministic"
            )
        vec, sur = sigs["vector"][0], sigs["surrogate"][0]
        # sample-district edge traffic is inside the byte-identity contract
        assert sur[0] == vec[0], f"n={n}: completed-edge sets diverged"
        assert sur[1] == vec[1], f"n={n}: expired-edge sets diverged"
        energy_rel = abs(sur[2] - vec[2]) / vec[2]
        assert energy_rel <= budget.FLEET_ENERGY_REL_TOL, (
            f"n={n}: fleet energy off by {energy_rel:.3f} "
            f"(budget {budget.FLEET_ENERGY_REL_TOL})"
        )
        vector_s = min(walls["vector"])
        surrogate_s = min(walls["surrogate"])
        rows.append({
            "n_districts": n,
            "fleet_multiplier": f"{n}x",
            "vector_s": round(vector_s, 3),
            "surrogate_s": round(surrogate_s, 3),
            "speedup": round(vector_s / surrogate_s, 2),
            "fleet_energy_rel_dev": round(energy_rel, 4),
            "edge_outputs_identical": True,
            "speedup_asserted": asserted or "skipped_insufficient_cores",
        })

    big = rows[-1]
    if asserted:
        assert big["speedup"] >= MIN_SUR_SPEEDUP_256X, (
            f"surrogate only {big['speedup']:.2f}x at "
            f"{big['fleet_multiplier']} fleet (need >= {MIN_SUR_SPEEDUP_256X}x)"
        )

    _update_bench("surrogate_sizes", rows, {
        "surrogate_repeats": SUR_REPEATS,
        "surrogate_load_days": SUR_LOAD_DAYS,
        "surrogate_warmup_ticks": SUR_TIER.warmup_ticks,
        "surrogate_sample_districts": SUR_TIER.sample_districts,
        "min_surrogate_speedup_256x": MIN_SUR_SPEEDUP_256X,
        "surrogate_speedup_asserted": asserted,
    })
