"""Bench the simulation hot path: scalar reference vs vectorised kernel.

Runs an E14-shaped city (same generator as the scale experiment: districts
of Q.rad-heated buildings under an edge workload, PREEMPT saturation policy)
at 1x/4x/16x fleet size under both kernels and emits
``benchmarks/results/BENCH_engine.json`` — sim-phase wall-clock per kernel,
speedups, and the cross-kernel equivalence verdict — which CI uploads as the
``engine-bench`` artifact.

Methodology:

* Only the simulation phase (``run_until``) is timed.  City construction and
  workload generation are identical work under either kernel and would
  dilute the ratio.
* Best-of-3: each (size, kernel) cell runs three times and keeps the fastest
  wall-clock, damping scheduler noise on shared runners.
* Every run's output signature (completed/expired request multisets, fleet
  energy, executed cycles, filler count, event count) must match across
  kernels and across repetitions — a speedup over a wrong answer is worth
  nothing.

The >=3x assertion at the 16x fleet is gated on ``os.cpu_count() >= 2`` so a
starved single-core runner records its numbers honestly instead of flaking.
"""

import json
import os
import time

from conftest import RESULTS_DIR

from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import mid_month_start, small_city
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

DAY = 86400.0
SEED = 83
REPEATS = 3
SIZES = (1, 4, 16)          # n_districts: 1x / 4x / 16x fleet
LOAD_DAYS = 0.25            # edge arrivals span
DRAIN_DAYS = 0.05           # extra horizon to drain in-flight work
RATE_PER_HOUR = 60.0
MIN_SPEEDUP_16X = 3.0


def _run(n_districts: int, kernel: str):
    """Build the city, inject the workload, time the sim phase only."""
    mw = small_city(
        seed=SEED,
        start_time=mid_month_start(1),
        n_districts=n_districts,
        buildings_per_district=2,
        rooms_per_building=3,
        saturation_policy=SaturationPolicy.PREEMPT,
        kernel=kernel,
    )
    t0 = mw.engine.now
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(
            mw.rngs.stream(f"edge-{bname}"),
            source=bname,
            config=EdgeWorkloadConfig(rate_per_hour=RATE_PER_HOUR),
        )
        mw.inject(gen.generate(t0, t0 + LOAD_DAYS * DAY))
    wall0 = time.perf_counter()
    mw.run_until(t0 + (LOAD_DAYS + DRAIN_DAYS) * DAY)
    wall = time.perf_counter() - wall0
    # request ids come from a global counter, so the signature is built from
    # id-insensitive fields only
    signature = (
        sorted(
            (r.time, r.source, r.started_at, r.completed_at, r.executed_on)
            for r in mw.completed_edge()
        ),
        sorted((r.time, r.source) for r in mw.expired_edge()),
        mw.fleet_energy_j(),
        mw.total_cycles_executed(),
        mw.filler_completed,
        mw.engine.events_executed,
    )
    return wall, signature


def test_engine_speedup():
    cpus = os.cpu_count() or 1
    rows = []
    all_identical = True
    for n in SIZES:
        walls = {"scalar": [], "vector": []}
        sigs = {"scalar": [], "vector": []}
        for _ in range(REPEATS):
            for kernel in ("scalar", "vector"):
                wall, sig = _run(n, kernel)
                walls[kernel].append(wall)
                sigs[kernel].append(sig)
        # determinism within a kernel and equivalence across kernels
        for kernel in ("scalar", "vector"):
            assert all(s == sigs[kernel][0] for s in sigs[kernel]), (
                f"n={n}: {kernel} kernel is not run-to-run deterministic"
            )
        identical = sigs["scalar"][0] == sigs["vector"][0]
        all_identical = all_identical and identical
        assert identical, f"n={n}: kernels disagree on simulation outputs"
        scalar_s = min(walls["scalar"])
        vector_s = min(walls["vector"])
        rows.append(
            {
                "n_districts": n,
                "fleet_multiplier": f"{n}x",
                "scalar_s": round(scalar_s, 3),
                "vector_s": round(vector_s, 3),
                "speedup": round(scalar_s / vector_s, 2),
                "outputs_identical": identical,
            }
        )

    big = rows[-1]
    if cpus >= 2:
        assert big["speedup"] >= MIN_SPEEDUP_16X, (
            f"vector kernel only {big['speedup']:.2f}x at {big['fleet_multiplier']} "
            f"fleet (need >= {MIN_SPEEDUP_16X}x)"
        )

    bench = {
        "experiment": "ENGINE",
        "seed": SEED,
        "repeats": REPEATS,
        "timed_phase": "run_until only",
        "load_days": LOAD_DAYS,
        "drain_days": DRAIN_DAYS,
        "rate_per_hour": RATE_PER_HOUR,
        "cpu_count": cpus,
        "speedup_asserted": cpus >= 2,
        "min_speedup_16x": MIN_SPEEDUP_16X,
        "outputs_identical": all_identical,
        "sizes": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_engine.json"
    out.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
