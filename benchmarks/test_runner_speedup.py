"""Bench the sweep runner: flat serial vs DAG ``--jobs 4`` vs warm cache.

Times the A6 churn sweep (21 grid cells + 1 shared workload-plan prefix, the
repo's largest) through :class:`repro.runner.SweepRunner` and emits
``benchmarks/results/BENCH_runner.json`` — wall-clock per path, speedups,
node-dedup counts and byte-identity — which CI uploads as the
``runner-bench`` artifact.

Honesty rules for the record (they used to be broken — the file carried a
0.87× "speedup" measured on a 1-core runner as if it were a result):

* ``cpu_count`` is always recorded;
* the ≥2× parallel-speedup assertion fires only when ``os.cpu_count() >= 4``;
  on smaller boxes the ``parallel_speedup`` field is the literal string
  ``"skipped_insufficient_cores"`` (the raw measurement moves to
  ``measured_parallel_speedup`` for forensics, clearly not a claim);
* the shared-prefix dedup is asserted unconditionally: the DAG run must
  compute each prefix exactly once (``computed_nodes == points + prefixes``),
  on any machine — dedup is a property of the graph, not of the host.

The warm-cache speedup also holds on any machine — a fully cached sweep
only unpickles and reduces.
"""

import os
import time

import bench_schema
from conftest import RESULTS_DIR

from repro.experiments.a6_churn import SWEEP
from repro.runner import ResultCache, SweepRunner

JOBS = 4
SEED = 101


def _timed(runner):
    t0 = time.perf_counter()
    report = runner.run_spec(SWEEP, seed=SEED)
    return time.perf_counter() - t0, report


def test_runner_speedup(tmp_path):
    cache = ResultCache(tmp_path / "bench_cache")

    # the reference bytes: the historical flat serial path
    serial_s, serial = _timed(SweepRunner(jobs=1, cache=None, backend="flat"))
    parallel_s, parallel = _timed(
        SweepRunner(jobs=JOBS, cache=cache, backend="dag"))
    warm_s, warm = _timed(SweepRunner(jobs=1, cache=cache, backend="dag"))

    # determinism contract: all paths (and both backends) render one text
    assert parallel.result.text == serial.result.text
    assert warm.result.text == serial.result.text
    assert serial.points == parallel.points == warm.points
    assert parallel.computed == parallel.points and parallel.cached == 0
    assert warm.fully_cached

    # shared-prefix dedup (acceptance criterion): the DAG run computed each
    # prefix node exactly once — 21 grid cells + 1 shared workload plan
    assert parallel.nodes == parallel.points + 1
    assert parallel.computed_nodes == parallel.nodes
    assert warm.computed_nodes == 0

    cpus = os.cpu_count() or 1
    measured_speedup = serial_s / parallel_s
    cache_speedup = serial_s / warm_s

    # a fully cached sweep only unpickles and reduces — fast everywhere
    assert cache_speedup >= 2.0, f"warm cache only {cache_speedup:.2f}x"
    speedup_asserted = cpus >= JOBS
    if speedup_asserted:
        assert measured_speedup >= 2.0, (
            f"--jobs {JOBS} only {measured_speedup:.2f}x on {cpus} CPUs"
        )

    stats = parallel.backend_stats
    row = {
        "points": serial.points,
        "nodes": parallel.nodes,
        "computed_nodes": parallel.computed_nodes,
        "prefix_nodes": parallel.nodes - parallel.points,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "warm_cache_s": round(warm_s, 3),
        # never record a sub-1x figure from an undersized box as a result
        "parallel_speedup": (round(measured_speedup, 2) if speedup_asserted
                             else "skipped_insufficient_cores"),
        "measured_parallel_speedup": round(measured_speedup, 2),
        "cache_speedup": round(cache_speedup, 2),
        "parallel_speedup_asserted": speedup_asserted,
        "worker_deaths": stats.worker_deaths if stats else 0,
        "chunks_dispatched": stats.chunks_dispatched if stats else 0,
        "chunk_steals": stats.chunk_steals if stats else 0,
        "queue_depth_peak": stats.queue_depth_peak if stats else 0,
        "byte_identical": True,
    }
    bench_schema.write_bench(
        RESULTS_DIR / "BENCH_runner.json",
        bench_schema.envelope(
            "runner", [row],
            context={"experiment": SWEEP.experiment_id, "seed": SEED,
                     "backend": "dag", "jobs": JOBS},
            cpu_count=cpus))
