"""Bench the sweep runner: serial vs ``--jobs 4`` vs warm cache.

Times the A6 churn sweep (15 independent points, the repo's largest) through
:class:`repro.runner.SweepRunner` three ways and emits
``benchmarks/results/BENCH_runner.json`` — serial/parallel/warm wall-clock,
speedups and byte-identity — which CI uploads as the ``runner-bench``
artifact.

The ≥2× parallel-speedup assertion is gated on ``os.cpu_count() >= 4``: on a
single-core runner four workers cannot beat one, and the artifact records
that honestly instead of asserting fiction.  The warm-cache speedup holds on
any machine — a fully cached sweep only unpickles and reduces.
"""

import json
import os
import time
from pathlib import Path

from conftest import RESULTS_DIR

from repro.experiments.a6_churn import SWEEP
from repro.runner import ResultCache, SweepRunner

JOBS = 4
SEED = 101


def _timed(runner):
    t0 = time.perf_counter()
    report = runner.run_spec(SWEEP, seed=SEED)
    return time.perf_counter() - t0, report


def test_runner_speedup(tmp_path):
    cache = ResultCache(tmp_path / "bench_cache")

    serial_s, serial = _timed(SweepRunner(jobs=1, cache=None))
    parallel_s, parallel = _timed(SweepRunner(jobs=JOBS, cache=cache))
    warm_s, warm = _timed(SweepRunner(jobs=1, cache=cache))

    # determinism contract: all three paths render the same bytes
    assert parallel.result.text == serial.result.text
    assert warm.result.text == serial.result.text
    assert serial.points == parallel.points == warm.points
    assert parallel.computed == parallel.points and parallel.cached == 0
    assert warm.fully_cached

    cpus = os.cpu_count() or 1
    parallel_speedup = serial_s / parallel_s
    cache_speedup = serial_s / warm_s

    # a fully cached sweep only unpickles and reduces — fast everywhere
    assert cache_speedup >= 2.0, f"warm cache only {cache_speedup:.2f}x"
    if cpus >= JOBS:
        assert parallel_speedup >= 2.0, (
            f"--jobs {JOBS} only {parallel_speedup:.2f}x on {cpus} CPUs"
        )

    bench = {
        "experiment": SWEEP.experiment_id,
        "seed": SEED,
        "points": serial.points,
        "jobs": JOBS,
        "cpu_count": cpus,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "parallel_speedup": round(parallel_speedup, 2),
        "cache_speedup": round(cache_speedup, 2),
        "parallel_speedup_asserted": cpus >= JOBS,
        "byte_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = Path(RESULTS_DIR) / "BENCH_runner.json"
    out.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
