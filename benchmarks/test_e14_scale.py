"""Bench E14 — weak scaling of the DF3 city (§III-C)."""

from conftest import record, run_once

from repro.experiments.e14_scale import run


def test_e14_scale(benchmark):
    result = run_once(benchmark, run, seed=83)
    record(result)
    d = result.data
    # load actually grew with the city
    assert d["4"]["edge_requests"] > 2 * d["1"]["edge_requests"]
    assert d["4"]["servers"] == 4 * d["1"]["servers"]
    # QoS is flat under weak scaling: clusters are independent
    for n in ("1", "2", "4"):
        assert d[n]["miss_rate"] < 0.05, n
    assert d["4"]["median_ms"] < 2.0 * d["1"]["median_ms"]
