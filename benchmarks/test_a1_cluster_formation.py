"""Bench A1 — cluster-formation ablation (§III-B)."""

from conftest import record, run_once

from repro.experiments.a1_cluster_formation import run


def test_a1_cluster_formation(benchmark):
    result = run_once(benchmark, run, seed=59)
    record(result)
    d = result.data
    # WSN clustering balances capacity across masters...
    assert d["wsn"]["size_imbalance"] < d["admin"]["size_imbalance"]
    # ...and groups servers that are physically close
    assert d["wsn"]["mean_dist_m"] < d["admin"]["mean_dist_m"]
    # same number of masters in both rules (fair comparison)
    assert d["wsn"]["n_clusters"] == d["admin"]["n_clusters"]
