"""Regenerate EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only``::

    python benchmarks/make_experiments_md.py
"""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

ORDER = ["F4", "F3", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
         "E10", "E11", "E12", "E13", "E14", "A1", "A2", "A3", "A4", "A5", "A6"]

#: experiment id → (paper claim, measured verdict)
NOTES = {
    "F4": ("Fig. 4: monthly mean room temperature, Nov–May, plotted between 17 and 26 °C with means ≈20–25 °C",
           "Winter months regulated to ≈20.5 °C; May drifts warm on free gains — comfort band held all season. SHAPE HOLDS."),
    "F3": ("Fig. 3: heating, Internet and local requests serviced by the same DF servers (no numbers in paper)",
           "All three flows serviced concurrently by one fleet: ≥94% edge served in deadline, 100% cloud completed, rooms in comfort band. SHAPE HOLDS."),
    "E1": ("§II-A: data furnace avoids cooling energy; CloudandHeat claims PUE 1.026 vs typical air-cooled facilities",
           "DF fleet PUE 1.00 vs 1.50 for the air-cooled comparator; 100% of DF energy delivered as requested heat. SHAPE HOLDS."),
    "E2": ("§II-C: direct requests avoid the master hop; indirect pays latency; offloading pays more. §III-B names Zigbee/LoRa/Sigfox/EnOcean",
           "direct < indirect < horizontal < vertical; protocol ladder Zigbee/EnOcean ≪ LoRa ≪ Sigfox as published. SHAPE HOLDS."),
    "E3": ("§III-C/§IV: winter heat demand raises compute capacity, summer reduces it; boilers decouple; pricing becomes seasonal",
           "Winter/summer capacity ratio ≈5 for heaters-only, ≈2 with boilers; spot price peaks in July. SHAPE HOLDS."),
    "E4": ("§III-B: class 1 (shared workers) maximises use but contends; class 2 (dedicated pool) guarantees minimal edge QoS",
           "Shared completes the most DCC but misses 72–94% of edge deadlines under saturation; any dedicated pool gives 0 misses at monotonic DCC cost. SHAPE HOLDS."),
    "E5": ("§III-B: peaks handled by preemption, vertical/horizontal offloading, or delaying",
           "Delaying loses ~100% of deadlines on a saturated cluster; preemption/offloading all rescue the edge flow, with preemption keeping data local. SHAPE HOLDS."),
    "E6": ("§III-B: a DVFS heat regulator guarantees energy consumed corresponds to heat demand",
           "PI+DVFS: RMSE 0.22 °C, 97% in band; bang-bang worse; load-driven heat is uninhabitable (3.6 °C RMSE, 210 overheat deg·h). SHAPE HOLDS."),
    "E7": ("§III-A/C: on-demand DF heat minimises urban heat island; e-radiators dump outside in summer; always-on boilers reject waste heat; DC cooling is a known offender",
           "On-demand DF rejects ~0 kWh outdoors; e-radiator summer mode, always-on boiler and DC cooling all reject tens of kWh/day. SHAPE HOLDS."),
    "E8": ("§III-C: predict heat demand from thermosensitivity, correlated to external weather",
           "Piecewise-linear fit: R²≈0.95 on held-out weather; capacity forecast MAE ≈10 cores of 192. SHAPE HOLDS."),
    "E9": ("§I/§V: DF servers vs personal computers (discomfort, opportunism), micro-datacenters, remote cloud",
           "DF3 beats cloud-only on latency and everyone on energy; comparable latency to micro-DC while reusing heat; desktop grid misses >50% of deadlines. SHAPE HOLDS."),
    "E10": ("§II-A/§VI: suited to batch + low-bandwidth neighbourhood apps; tightly coupled and storage unsuitable",
            "Batch render net-free in winter (heat credit); neighbourhood 3× faster locally; BSP 1.4× slower on DF; storage produces ~no heat. SHAPE HOLDS."),
    "E11": ("§III-C: availability depends on heat demand; free electricity keeps hosts' targets (and capacity) stable",
            "Incentivized hosts: full fleet, CV≈0 in January; cost-conscious hosts: fewer cores, far higher volatility. SHAPE HOLDS."),
    "E12": ("§III-C: free cooling may accelerate processor aging and replacement",
            "Free-cooled Q.rads age 1.6–3× faster than chilled DC silicon; heat-driven duty softens it; worst case still >5-year refresh horizon. SHAPE HOLDS."),
    "E13": ("§II-B1 service stack (containers/VMs) + §III-B environment-switching concern (extension)",
            "A prefetched fleet never demand-misses; an undersized image disk thrashes: hit rate 58%, 62 evictions, p95 latency ~9× worse. Quantifies the §III-B worry."),
    "E14": ("§III-C: 'we can build systems with near real-time response time.  But at what scale?' (extension)",
            "Weak scaling 1→4 districts (6→24 Q.rads, proportional load): median edge latency flat at ~167 ms, zero misses at every size — clusters are independent by construction. CLAIM HOLDS."),
    "A1": ("§III-B (ablation): clusters can follow buildings/districts or WSN clustering techniques (ref [13])",
           "WSN clustering halves size imbalance (8→3.5) and quarters mean server-to-master distance. Quantifies the §III-B design choice."),
    "A2": ("§III-C availability + §IV: 'basic services delivered by the resources (heat for instance) will continue … even if there are problems in the central point'",
           "Comfort ~99% in band through crashes, a master outage and a WAN partition; crashed work salvaged; only the failed master's own district loses its indirect path. CLAIM HOLDS."),
    "A3": ("§II-B1 crypto-heaters + §IV blockchain: heaters that mine",
           "A QC-1 heats its room exactly like a plain heater (same comfort) while mining revenue exceeds the electricity bill → negative net heating cost. CLAIM HOLDS."),
    "A4": ("§III-A: the smart-grid manager negotiates energy consumption with operators",
           "A 2-hour 50% cap curtails fleet power via DVFS budgets; rooms coast on inertia (~99% in band); full recovery after. CLAIM HOLDS."),
    "A5": ("§IV: seasonality as a new dimension of cloud pricing and SLAs",
           "Season-aware planning places a 200k core-hour campaign at ~0.015 €/ch; a summer-only window is infeasible and far pricier per placed hour. The seasonal winter-hard edge SLA audits COMPLIANT. CLAIM HOLDS."),
    "A6": ("§III-C: 'the availability and stability of DF servers could also be a problem' — churn met with retry, cloning, checkpointing and failover",
           "Each single policy beats doing nothing at the harshest churn; the full bundle serves ≥99.9% of edge in deadline even at MTBF 2h; checkpointing finishes 10/10 batch jobs at ~1/48 of the redo waste. CLAIM HOLDS."),
}

HEADER = [
    "# EXPERIMENTS — paper vs measured",
    "",
    "Every figure and quantitative-flavoured claim of the paper, regenerated by",
    "`pytest benchmarks/ --benchmark-only` (22 experiments: the paper's two",
    "figures F3/F4, claim experiments E1–E14, and ablations/extensions A1–A6).",
    "The paper — an invited vision paper — publishes a single data figure and no",
    "tables; for each row below we state the paper's claim, our measured result",
    "(verbatim benchmark output), and whether the shape holds.  Absolute numbers",
    "are not comparable — the substrate is a simulator and the paper gives none.",
    "",
]

FOOTER = [
    "## Reproduction notes",
    "",
    "* All experiments are bit-deterministic given their seed (named RNG streams).",
    "* Substitutions for unavailable artefacts (hardware, traces, middleware) are",
    "  documented in DESIGN.md §1.",
    "* Regenerate any row: `pytest benchmarks/test_<id>*.py --benchmark-only` or",
    "  `python -m repro run <ID>`; rendered tables land in `benchmarks/results/`,",
    "  then `python benchmarks/make_experiments_md.py` rebuilds this file.",
    "* Sweep-shaped experiments (A4, A6, E3, E4, E14) also run point-parallel:",
    "  `python -m repro run A6 --jobs 4` — byte-identical output for any job",
    "  count or cache state (DESIGN.md §2.12); warm `.repro_cache/` re-runs skip",
    "  every already-computed point. E14 therefore reports the deterministic",
    "  simulated-event count; wall-clock throughput stays in its JSON `data`.",
    "* Every rendered table is pinned byte-for-byte by `tests/golden/`;",
    "  regenerate deliberately with `pytest tests/test_golden_outputs.py",
    "  -m 'slow or not slow' --update-golden` and commit the diff.",
    "",
]


def main() -> None:
    out = list(HEADER)
    for eid in ORDER:
        claim, verdict = NOTES[eid]
        body = (RESULTS / f"{eid}.txt").read_text(encoding="utf-8").strip()
        out += [f"## {eid}", "", f"**Paper:** {claim}", "", "```", body, "```",
                "", f"**Measured:** {verdict}", ""]
    out += FOOTER
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(out), encoding="utf-8")
    print(f"EXPERIMENTS.md regenerated ({len(ORDER)} experiments)")


if __name__ == "__main__":
    main()
