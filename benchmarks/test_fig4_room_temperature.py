"""Bench F4 — regenerate the paper's Figure 4 (monthly room temperature)."""

from conftest import record, run_once

from repro.experiments.fig4_temperature import run
from repro.sim.calendar import HEATING_SEASON_MONTHS


def test_fig4_room_temperature(benchmark):
    result = run_once(benchmark, run, days_per_month=2.0, seed=7)
    record(result)
    monthly = result.data["monthly_mean_c"]
    # the figure's claim: DF heating holds comfort all season (paper band
    # is ~20–25 °C between axis limits 17 and 26)
    assert set(monthly) == set(HEATING_SEASON_MONTHS)
    for month, temp in monthly.items():
        assert 19.0 <= temp <= 26.0, f"month {month}: {temp}"
    # deep winter is regulated to the setpoint, not weather-driven
    for month in (12, 1, 2):
        assert abs(monthly[month] - 20.5) < 1.5
    # spring drifts warm (free gains) — the figure's May rise
    assert monthly[5] >= monthly[1]
