"""Bench F3 — the three flows co-serviced on one fleet (paper Fig. 3)."""

from conftest import record, run_once

from repro.experiments.f3_three_flows import run


def test_fig3_three_flows(benchmark):
    result = run_once(benchmark, run, duration_days=1.0, seed=17)
    record(result)
    d = result.data
    # all three flows were actually serviced by the same fleet
    assert d["heating_requests"] > 0
    assert d["edge_completed"] > 0.9 * d["edge_submitted"]
    assert d["cloud_completed"] == d["cloud_submitted"]
    # heating QoS held while compute flowed
    assert d["comfort_in_band"] > 0.8
    assert d["useful_heat_kwh"] > 10.0
    # edge QoS: near-real-time service survived the coexistence
    assert d["edge_miss_rate"] < 0.15
