"""Bench E10 — application suitability on data furnace (§II-A, §VI)."""

from conftest import record, run_once

from repro.experiments.e10_app_classes import run


def test_e10_app_classes(benchmark):
    result = run_once(benchmark, run, seed=43)
    record(result)
    d = result.data
    # batch render: the winter heat credit makes DF net-free
    assert d["batch"]["df_net"] == 0.0
    assert d["batch"]["dc"] > 0.0
    # neighbourhood services: in-building beats the WAN by a wide margin
    assert d["neighbourhood"]["df"] < 0.5 * d["neighbourhood"]["dc"]
    # tightly coupled: the paper's own caveat — DF loses on barrier latency
    assert d["coupled"]["df"] > 1.2 * d["coupled"]["dc"]
    # storage: produces ~no heat relative to a room's demand → unsuitable
    assert d["storage"]["heat_per_tb_day"] < 0.1
