"""Bench E6 — the DVFS heat regulator vs bang-bang vs uncontrolled."""

from conftest import record, run_once

from repro.experiments.e6_heat_regulator import run


def test_e6_heat_regulator(benchmark):
    result = run_once(benchmark, run)
    record(result)
    c = result.data["controllers"]
    reg = c["regulated (PI+DVFS)"]
    bang = c["bang-bang (no DVFS)"]
    wild = c["uncontrolled (load-driven)"]
    # the §III-B guarantee: energy tracks demand → tight temperature control
    assert reg["rmse_c"] < 0.5
    assert reg["in_band"] > 0.9
    # DVFS modulation beats on/off switching
    assert reg["rmse_c"] < bang["rmse_c"]
    # letting compute demand dictate heat is the disaster the regulator avoids
    assert wild["rmse_c"] > 4 * reg["rmse_c"]
    assert wild["overheat_dh"] > 50.0
    assert wild["energy_kwh"] > reg["energy_kwh"]
