"""Shared schema for every ``benchmarks/results/BENCH_*.json`` artifact.

Before this module each bench emitter invented its own JSON shape, which
made ``repro diff`` (the perf-regression radar) and any history tracking
ad-hoc.  All four emitters now write one **envelope**::

    {
      "schema_version": 1,
      "bench": "runner",              # short bench name (file suffix)
      "commit": "<git sha | unknown>",
      "cpu_count": 4,                 # honesty convention: hardware context
      "rows": [ {flat scalars...} ],  # measured quantities, one dict per row
      "context": { ... }              # configuration + non-tabular extras
    }

``rows`` hold *measured* numbers the radar compares with tolerance bands;
``context`` holds configuration (seeds, durations, nested summaries) that
must match exactly or is informational.  Undersized boxes keep writing the
string sentinel ``"skipped_insufficient_cores"`` in place of a perf number
— the schema allows it and the differ skips it.

``history.jsonl`` is the append-only bench trajectory: one JSON line per
(bench, commit) capture so regressions are visible over time, not just
against a single baseline.  Run as a script to validate artifacts in CI::

    python benchmarks/bench_schema.py --validate benchmarks/results/BENCH_*.json
    python benchmarks/bench_schema.py --append-history benchmarks/results/history.jsonl \
        benchmarks/results/BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

SCHEMA_VERSION = 1
RESULTS_DIR = Path(__file__).parent / "results"
HISTORY_PATH = RESULTS_DIR / "history.jsonl"

_SCALAR_TYPES = (str, int, float, bool, type(None))


def commit_sha() -> str:
    """Current git commit (short), or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).parent)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def envelope(bench: str, rows: List[Dict[str, Any]],
             context: Optional[Dict[str, Any]] = None,
             cpu_count: Optional[int] = None,
             commit: Optional[str] = None) -> Dict[str, Any]:
    """Build a schema-conforming bench document (validated before return)."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "commit": commit if commit is not None else commit_sha(),
        "cpu_count": cpu_count if cpu_count is not None
        else (os.cpu_count() or 1),
        "rows": rows,
        "context": dict(context or {}),
    }
    validate(doc)
    return doc


def validate(doc: Any) -> None:
    """Raise ``ValueError`` listing every way ``doc`` violates the schema."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        raise ValueError("bench artifact must be a JSON object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    if not isinstance(doc.get("commit"), str) or not doc.get("commit"):
        problems.append("commit must be a non-empty string")
    cpus = doc.get("cpu_count")
    if not isinstance(cpus, int) or isinstance(cpus, bool) or cpus < 1:
        problems.append(f"cpu_count must be a positive int, got {cpus!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list):
        problems.append("rows must be a list")
    else:
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"rows[{i}] must be an object")
                continue
            for key, value in row.items():
                if not isinstance(value, _SCALAR_TYPES):
                    problems.append(
                        f"rows[{i}].{key} must be a scalar, "
                        f"got {type(value).__name__}")
    if not isinstance(doc.get("context"), dict):
        problems.append("context must be an object")
    extra = set(doc) - {"schema_version", "bench", "commit", "cpu_count",
                        "rows", "context"}
    if extra:
        problems.append(f"unexpected top-level keys: {sorted(extra)}")
    if problems:
        raise ValueError("; ".join(problems))


def validate_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Load + validate one artifact; returns the parsed document."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        validate(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    return doc


def write_bench(path: Union[str, Path], doc: Dict[str, Any]) -> None:
    """Validate and persist one envelope (sorted keys, trailing newline)."""
    validate(doc)
    Path(path).parent.mkdir(exist_ok=True)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def merge_section(path: Union[str, Path], bench: str, section: str,
                  rows: List[Dict[str, Any]],
                  context: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Replace one section's rows in an envelope written by several tests.

    ``BENCH_engine.json`` has two independent emitters (exact-kernel and
    surrogate-tier benches) that may run in either order; each tags its rows
    with ``section`` and this merge keeps the other section's rows intact.
    """
    p = Path(path)
    doc: Dict[str, Any]
    if p.exists():
        try:
            doc = validate_file(p)
            if doc["bench"] != bench:
                doc = envelope(bench, [])
        except (ValueError, json.JSONDecodeError):
            doc = envelope(bench, [])   # pre-schema artifact: start fresh
    else:
        doc = envelope(bench, [])
    kept = [r for r in doc["rows"] if r.get("section") != section]
    tagged = [{**row, "section": section} for row in rows]
    doc["rows"] = kept + tagged
    doc["commit"] = commit_sha()
    doc["cpu_count"] = os.cpu_count() or 1
    if context:
        doc["context"].update(context)
    write_bench(p, doc)
    return doc


# --------------------------------------------------------------------------- #
# history: the append-only bench trajectory
# --------------------------------------------------------------------------- #
def history_entry(doc: Dict[str, Any],
                  generated_at: Optional[str] = None) -> Dict[str, Any]:
    """One trajectory line summarizing a bench envelope (timings only)."""
    validate(doc)
    timings: Dict[str, Any] = {}
    for i, row in enumerate(doc["rows"]):
        label = str(row.get("section", row.get("fleet_multiplier",
                    row.get("policy", row.get("experiment", i)))))
        for key, value in row.items():
            low = key.lower()
            if isinstance(value, (int, float)) and not isinstance(value, bool) \
                    and (low.endswith(("_s", "_ms", "_mib")) or
                         "speedup" in low or "per_s" in low or "rtt" in low):
                timings[f"{label}.{key}"] = value
    entry = {
        "bench": doc["bench"],
        "commit": doc["commit"],
        "cpu_count": doc["cpu_count"],
        "rows": len(doc["rows"]),
        "timings": timings,
    }
    if generated_at is not None:
        entry["generated_at"] = generated_at
    return entry


def append_history(entry: Dict[str, Any],
                   path: Union[str, Path] = HISTORY_PATH) -> None:
    """Append one JSON line to the bench-trajectory log."""
    p = Path(path)
    p.parent.mkdir(exist_ok=True)
    with p.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate BENCH_*.json artifacts / append bench history")
    parser.add_argument("--validate", action="store_true",
                        help="validate each FILE against the shared schema")
    parser.add_argument("--append-history", metavar="HISTORY",
                        help="append one summary line per FILE to HISTORY")
    parser.add_argument("--generated-at", default=None,
                        help="timestamp recorded in history entries")
    parser.add_argument("files", nargs="+", help="BENCH_*.json artifacts")
    args = parser.parse_args(argv)

    status = 0
    for file in args.files:
        try:
            doc = validate_file(file)
        except (ValueError, json.JSONDecodeError, OSError) as exc:
            print(f"INVALID {file}: {exc}", file=sys.stderr)
            status = 1
            continue
        if args.validate:
            print(f"ok {file} (bench={doc['bench']}, rows={len(doc['rows'])})")
        if args.append_history:
            append_history(history_entry(doc, args.generated_at),
                           args.append_history)
            print(f"history += {doc['bench']}@{doc['commit']}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
