"""Bench the telemetry service: SSE throughput, injection latency, RSS.

Boots ``python -m repro serve`` as a real subprocess (the same entry point a
user runs), polls ``/healthz`` until ready, injects requests while paused to
time the command round trip, mutates the scenario mid-run, then consumes the
full SSE stream to measure delivery throughput.  Emits
``benchmarks/results/BENCH_service.json`` — SSE events/sec, injection
round-trip latency and steady-state RSS — which CI uploads as the
``service-bench`` artifact.

The subprocess is always torn down via ``/api/shutdown`` first (the clean
path under test) with SIGKILL as a last resort, so a failing assertion never
leaks a server.
"""

import json
import os
import signal
import socket
import statistics
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import bench_schema
from conftest import RESULTS_DIR

REPO = Path(__file__).resolve().parent.parent
SIM_DAYS = 0.25
N_INJECTIONS = 20
MIN_SSE_EVENTS = 50


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _get(base: str, path: str, timeout: float = 10.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as r:
        return json.loads(r.read())


def _post(base: str, path: str, body: dict, timeout: float = 35.0):
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as r:
        return json.loads(r.read())


def _wait_healthy(base: str, deadline_s: float = 30.0) -> float:
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < deadline_s:
        try:
            if _get(base, "/healthz", timeout=2.0)["status"] == "ok":
                return time.perf_counter() - t0
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise AssertionError(f"server not healthy within {deadline_s}s")


def _rss_kib(pid: int) -> int:
    status = Path(f"/proc/{pid}/status").read_text(encoding="utf-8")
    for line in status.splitlines():
        if line.startswith("VmRSS:"):
            return int(line.split()[1])
    raise AssertionError("no VmRSS in /proc status")


def _consume_sse(base: str):
    """Read the live stream to completion; return (n_events, wall_s, kinds)."""
    kinds: dict = {}
    n = 0
    t0 = time.perf_counter()
    with urllib.request.urlopen(base + "/events", timeout=120) as r:
        assert r.headers["Content-Type"] == "text/event-stream"
        for raw in r:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                kind = line[len("event: "):]
                kinds[kind] = kinds.get(kind, 0) + 1
                n += 1
    return n, time.perf_counter() - t0, kinds


def test_service_throughput():
    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", "127.0.0.1", "--port", str(port),
         "--days", str(SIM_DAYS), "--start-paused",
         "--slice-s", "300", "--telemetry-every-s", "300"],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        startup_s = _wait_healthy(base)

        # -- injection round trip, measured while paused ----------------- #
        latencies = []
        for i in range(N_INJECTIONS):
            t0 = time.perf_counter()
            out = _post(base, "/api/inject",
                        {"flow": "edge", "deadline_s": 30.0})
            latencies.append(time.perf_counter() - t0)
            assert out["status"] == "injected"

        # -- mid-run scenario mutation ----------------------------------- #
        out = _post(base, "/api/scenario",
                    {"weather_delta_c": -5.0, "grid_cap_w": 2500.0})
        assert sorted(out["applied"]) == ["grid_cap_w", "weather_delta_c"]

        # -- resume and drink the full SSE stream ------------------------ #
        _post(base, "/api/control", {"action": "resume"})
        n_events, stream_s, kinds = _consume_sse(base)
        assert n_events >= MIN_SSE_EVENTS, f"only {n_events} SSE events"
        assert kinds.get("run.finished") == 1
        assert kinds.get("metrics", 0) > 0 and kinds.get("state", 0) > 0

        state = _get(base, "/api/state")
        assert state["finished"] and state["injected"]["edge"] == N_INJECTIONS
        rss_kib = _rss_kib(proc.pid)

        # -- clean shutdown through the API ------------------------------ #
        _post(base, "/api/shutdown", {})
        assert proc.wait(timeout=30) == 0, "serve did not exit cleanly"
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)

    row = {
        "startup_to_healthy_s": round(startup_s, 3),
        "sse_events": n_events,
        "sse_stream_s": round(stream_s, 3),
        "sse_events_per_s": round(n_events / stream_s, 1),
        "injections": N_INJECTIONS,
        "inject_rtt_ms_p50": round(
            statistics.median(latencies) * 1e3, 2),
        "inject_rtt_ms_max": round(max(latencies) * 1e3, 2),
        "steady_state_rss_mib": round(rss_kib / 1024, 1),
        "clean_shutdown": True,
    }
    bench = bench_schema.envelope(
        "service", [row],
        context={"sim_days": SIM_DAYS,
                 "sse_event_kinds": dict(sorted(kinds.items()))})
    bench_schema.write_bench(RESULTS_DIR / "BENCH_service.json", bench)
    print(f"\n{json.dumps(bench, indent=2, sort_keys=True)}\n")
