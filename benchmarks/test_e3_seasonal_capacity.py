"""Bench E3 — seasonal compute capacity and §IV pricing."""

from conftest import record, run_once

from repro.experiments.e3_seasonal_capacity import run


def test_e3_seasonal_capacity(benchmark):
    result = run_once(benchmark, run, days_per_month=1.0, seed=19)
    record(result)
    d = result.data
    heaters = d["heaters_only"]
    # §IV: winter capacity is a multiple of summer capacity
    assert d["winter_summer_ratio"] > 2.0
    # §III-C: boilers decouple heat from season → flatter curve
    assert d["boiler_winter_summer_ratio"] < d["winter_summer_ratio"]
    assert all(d["with_boilers"][m] >= heaters[m] for m in range(1, 13))
    # pricing mirrors scarcity: summer spot above winter spot
    prices = d["price_table"]
    assert prices[7] > prices[1]
    assert prices[8] > prices[12]
