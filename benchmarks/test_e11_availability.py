"""Bench E11 — fleet availability vs host behaviour (§III-C)."""

from conftest import record, run_once

from repro.experiments.e11_availability import run


def test_e11_availability(benchmark):
    result = run_once(benchmark, run, days=2.0, seed=47)
    record(result)
    d = result.data
    # §III-C: subsidised hosts keep steady targets → more, stabler capacity
    for month in ("Jan", "Mar"):
        inc = d[f"{month}/incentivized"]
        cc = d[f"{month}/cost_conscious"]
        assert inc["mean_cores"] >= cc["mean_cores"]
        assert inc["cv"] <= cc["cv"] + 1e-9
    # deep winter with incentives: the whole fleet is available, rock-steady
    jan = d["Jan/incentivized"]
    assert jan["mean_cores"] > 180
    assert jan["cv"] < 0.05
    # the incentive has a real price the operator pays
    assert jan["subsidy_eur"] > d["May/incentivized"]["subsidy_eur"]
