"""Bench E13 — container cold starts on the service stack (§II-B1)."""

from conftest import record, run_once

from repro.experiments.e13_cold_start import run


def test_e13_cold_start(benchmark):
    result = run_once(benchmark, run, n_requests=150, seed=79)
    record(result)
    d = result.data
    pre = d["prefetched, 20 GB disk"]
    cold = d["cold, 20 GB disk"]
    thrash = d["cold, 5 GB disk (thrash)"]
    # every request was served in all scenarios
    assert pre["served"] == cold["served"] == thrash["served"] == 150
    # a prefetched fleet never demand-misses; a cold one misses a little
    assert pre["hit_rate"] == 1.0
    assert cold["hit_rate"] < 1.0
    # an undersized disk thrashes: evictions, misses and tail latency explode
    assert thrash["evictions"] > 10
    assert thrash["hit_rate"] < cold["hit_rate"] - 0.2
    assert thrash["p95_ms"] > 3 * cold["p95_ms"]
