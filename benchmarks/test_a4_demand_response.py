"""Bench A4 — smart-grid demand response (§III-A)."""

from conftest import record, run_once

from repro.experiments.a4_demand_response import run


def test_a4_demand_response(benchmark):
    result = run_once(benchmark, run, seed=71)
    record(result)
    d = result.data
    # the manager actually curtailed the fleet during the event
    assert d["curtailment_events"] > 0
    assert d["capped (17–19h)"] < d["before (14–17h)"]
    # and released it afterwards
    assert d["after (19–22h)"] > d["capped (17–19h)"]
    # rooms coasted on inertia: comfort held through the event
    assert d["comfort_in_band"] > 0.9
