"""Bench A5 — seasonal SLAs and campaign planning (§IV)."""

from conftest import record, run_once

from repro.experiments.a5_seasonal_sla import run


def test_a5_seasonal_sla(benchmark):
    result = run_once(benchmark, run, seed=73)
    record(result)
    d = result.data
    # season-aware planning places the whole campaign; summer-only cannot
    assert d["aware_feasible"]
    assert not d["blind_feasible"]
    assert d["blind_unplaced"] > 0
    # and what the blind strategy does place costs more per core-hour
    assert d["aware_cost"] > 0
    # the winter contract holds on the simulated fleet
    assert d["sla_compliant"]
    assert d["sla_penalty_eur"] == 0.0
    assert d["completion_rate"] > 0.98
