"""Bench E7 — urban-heat-island waste heat by substrate (§III-A/C)."""

from conftest import record, run_once

from repro.experiments.e7_heat_island import run


def test_e7_heat_island(benchmark):
    result = run_once(benchmark, run, duration_days=1.0, seed=31)
    record(result)
    d = result.data
    # on-demand DF heat: nothing rejected outdoors in summer (boards are off)
    assert d["df3 on-demand"] < 1.0
    # every alternative pushes heat into the street
    assert d["e-radiator (summer dump)"] > 50.0
    assert d["always-on boiler"] > 10.0
    assert d["air-cooled dc"] > 10.0
    # the §III-A ranking: on-demand ≪ all always-on modes
    assert d["df3 on-demand"] < 0.1 * min(
        d["e-radiator (summer dump)"], d["always-on boiler"], d["air-cooled dc"]
    )
