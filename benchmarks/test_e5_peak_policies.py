"""Bench E5 — preemption vs offloading vs delay on a saturated cluster."""

from conftest import record, run_once

from repro.experiments.e5_peak_policies import run


def test_e5_peak_policies(benchmark):
    result = run_once(benchmark, run, seed=29)
    record(result)
    d = result.data
    # delaying (queue) against a saturated cluster loses the deadlines
    assert d["queue"]["edge_miss"] > 0.9
    # every active policy rescues the edge flow
    for policy in ("preempt", "vertical", "horizontal", "decision"):
        assert d[policy]["edge_miss"] < 0.1, policy
    # offload policies actually offloaded
    assert d["vertical"]["vertical"] > 0
    assert d["horizontal"]["horizontal"] > 0
    # preemption keeps work local: zero offloads
    assert d["preempt"]["vertical"] == d["preempt"]["horizontal"] == 0
    # horizontal cooperation is booked in the fairness ledger
    assert 0.0 < d["horizontal"]["fairness"] <= 1.0
