"""Bench E4 — architecture class 1 (shared) vs class 2 (dedicated)."""

from conftest import record, run_once

from repro.experiments.e4_architectures import run


def test_e4_architectures(benchmark):
    result = run_once(benchmark, run, seed=23)
    record(result)
    d = result.data
    shared_burst = d["burst/shared (class 1)"]
    ded1_burst = d["burst/dedicated pool=1 (class 2)"]
    shared_steady = d["steady/shared (class 1)"]
    ded3_steady = d["steady/dedicated pool=3 (class 2)"]
    # class 2 guarantees edge QoS even through the burst
    assert ded1_burst["edge_miss"] == 0.0
    # class 1 wins utilisation: more DCC completed than any dedicated split
    assert shared_steady["cloud_done"] >= ded3_steady["cloud_done"]
    # reserving more workers costs monotonically more DCC throughput
    pools = [d[f"steady/dedicated pool={p} (class 2)"]["cloud_done"] for p in (1, 2, 3)]
    assert pools[0] >= pools[1] >= pools[2]
    # and the burst hurts the shared architecture more than the dedicated one
    assert shared_burst["edge_miss"] >= ded1_burst["edge_miss"]
