"""Bench E8 — heat-demand / thermosensitivity prediction (§III-C)."""

from conftest import record, run_once

from repro.experiments.e8_thermosensitivity import run


def test_e8_thermosensitivity(benchmark):
    result = run_once(benchmark, run, seed=37)
    record(result)
    d = result.data
    # "thermosensitivity is in general correlated to the external weather":
    # a weather-only model explains most of the demand variance
    assert d["train_r2"] > 0.9
    assert d["test_r2"] > 0.85   # holds on unseen weather
    # the fit is physically sensible for 12 heated rooms
    assert d["sensitivity"] > 50.0
    assert 12.0 <= d["base_temp"] <= 24.0
    # the capacity forecast is usable by the smart-grid manager
    assert d["capacity_mae_cores"] < 30.0  # of a 192-core fleet
