"""Bench A3 — crypto-heater economics (§II-B1, §IV)."""

from conftest import record, run_once

from repro.experiments.a3_crypto_heater import run


def test_a3_crypto_heater(benchmark):
    result = run_once(benchmark, run, days=3.0, seed=67)
    record(result)
    d = result.data
    # the QC-1 is a real heater: comfort equals a plain electric heater's
    assert d["comfort_in_band"] > 0.9
    assert d["rmse_c"] < 0.6
    # and it pays for itself: net heating cost below the plain heater's bill
    assert d["net_cost_eur"] < d["electricity_eur"]
    assert d["revenue_eur"] > 0
    assert d["hashes"] > 0
