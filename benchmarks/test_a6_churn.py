"""Bench A6 — recovery policies under stochastic churn (§III-C).

Besides the shape assertions, this benchmark emits
``benchmarks/results/BENCH_resilience.json`` — per (MTBF, policy):
served-in-deadline rate, wasted cycles and detection-latency p50/p99 — which
CI uploads as the ``resilience-bench`` artifact.
"""

import json
from pathlib import Path

from conftest import RESULTS_DIR, record, run_once

from repro.experiments.a6_churn import BUNDLES, run


def test_a6_churn(benchmark):
    result = run_once(benchmark, run, seed=101)
    record(result)
    d = result.data

    # ---- the headline ordering at the harshest churn level -------------- #
    worst = d["mtbf=2h"]
    none_rate = worst["none"]["served_rate"]
    for single in ("retry", "clone", "checkpoint"):
        # each policy alone strictly beats doing nothing...
        assert worst[single]["served_rate"] > none_rate, single
        # ...and none of them beats the full bundle
        assert worst[single]["served_rate"] <= worst["all"]["served_rate"], single

    # checkpointing rescues the batch jobs a restart loop starves
    assert worst["checkpoint"]["cloud_done"] > worst["none"]["cloud_done"]
    # and does so with far less redo work
    assert worst["checkpoint"]["wasted_gcycles"] < 0.1 * worst["none"]["wasted_gcycles"]

    # detection is never omniscient: latency within (timeout-interval, timeout]
    for level in d.values():
        for cell in level.values():
            assert 1.5 < cell["detect_p50_s"] <= cell["detect_p99_s"] <= 2.5

    # gentler churn, better service for every bundle
    assert d["mtbf=24h"]["none"]["served_rate"] > d["mtbf=2h"]["none"]["served_rate"]

    # ---- machine-readable artifact for CI ------------------------------- #
    bench = {
        "experiment": "A6",
        "seed": 101,
        "policies": list(BUNDLES),
        "levels": {
            level: {
                policy: {
                    "served_in_deadline_rate": cell["served_rate"],
                    "wasted_gcycles": cell["wasted_gcycles"],
                    "detection_latency_p50_s": cell["detect_p50_s"],
                    "detection_latency_p99_s": cell["detect_p99_s"],
                    "cloud_done": cell["cloud_done"],
                    "server_failures": cell["server_failures"],
                }
                for policy, cell in cells.items()
            }
            for level, cells in d.items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = Path(RESULTS_DIR) / "BENCH_resilience.json"
    out.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
