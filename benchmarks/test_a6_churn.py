"""Bench A6 — recovery policies under stochastic churn (§III-C).

Besides the shape assertions, this benchmark emits
``benchmarks/results/BENCH_resilience.json`` — per (MTBF, policy):
served-in-deadline rate, wasted cycles split by attribution (losing-clone
work vs crash redo) and detection-latency p50/p99, plus the per-level
waste-vs-deadline **Pareto frontier** — which CI uploads as the
``resilience-bench`` artifact.

The frontier is not just recorded, it is *asserted*: at benign churn
(mtbf=24h) the adaptive policy engine must serve at least the checkpoint
bundle's deadline rate, reach >= 99.9% served-in-deadline, and do it at
under 10% of legacy first-completion cloning's wasted gigacycles — the
acceptance bar of the policy-engine PR.
"""

import bench_schema
import pytest
from conftest import RESULTS_DIR, record, run_once

from repro.experiments.a6_churn import BUNDLES, MTBF_LEVELS_S, run


def test_a6_churn(benchmark):
    result = run_once(benchmark, run, seed=101)
    record(result)
    d = result.data

    # ---- the headline ordering at the harshest churn level -------------- #
    worst = d["mtbf=2h"]
    none_rate = worst["none"]["served_rate"]
    for single in ("retry", "clone", "checkpoint"):
        # each policy alone strictly beats doing nothing...
        assert worst[single]["served_rate"] > none_rate, single
        # ...and none of them beats the full bundle
        assert worst[single]["served_rate"] <= worst["all"]["served_rate"], single

    # checkpointing rescues the batch jobs a restart loop starves
    assert worst["checkpoint"]["cloud_done"] > worst["none"]["cloud_done"]
    # and does so with far less redo work
    assert worst["checkpoint"]["wasted_gcycles"] < 0.1 * worst["none"]["wasted_gcycles"]

    # detection is never omniscient: latency within (timeout-interval, timeout]
    for label in MTBF_LEVELS_S:  # d also carries the "pareto" frontier key
        for cell in d[label].values():
            assert 1.5 < cell["detect_p50_s"] <= cell["detect_p99_s"] <= 2.5
            # the waste split is exhaustive: clone + failure = total
            assert cell["wasted_gcycles"] == pytest.approx(
                cell["clone_waste_gcycles"] + cell["failure_waste_gcycles"],
                rel=1e-9)

    # synchronized-service cloning: zero losing-clone work at every level
    for label in MTBF_LEVELS_S:
        assert d[label]["clone-cs"]["clone_waste_gcycles"] == 0.0
        assert d[label]["adaptive"]["clone_waste_gcycles"] == 0.0
        # ...while legacy first-completion cloning burns real cycles
        assert d[label]["clone"]["clone_waste_gcycles"] > 0.0

    # gentler churn, better service for every bundle
    assert d["mtbf=24h"]["none"]["served_rate"] > d["mtbf=2h"]["none"]["served_rate"]

    # ---- Pareto dominance: the policy-engine acceptance bar ------------- #
    benign = d["mtbf=24h"]
    adaptive, clone, ckpt = (benign["adaptive"], benign["clone"],
                             benign["checkpoint"])
    assert adaptive["served_rate"] >= 0.999
    assert adaptive["served_rate"] >= ckpt["served_rate"]
    assert adaptive["wasted_gcycles"] <= 0.10 * clone["wasted_gcycles"]
    front = d["pareto"]["mtbf=24h"]
    assert front, "empty Pareto frontier"
    assert "adaptive" in front
    assert "clone" not in front  # dominated: same cover, far more waste
    for label in MTBF_LEVELS_S:  # frontier members are genuinely undominated
        for p in d["pareto"][label]:
            assert p in BUNDLES

    # ---- machine-readable artifact for CI ------------------------------- #
    rows = [
        {
            "mtbf": label,
            "policy": policy,
            "served_in_deadline_rate": cell["served_rate"],
            "wasted_gcycles": cell["wasted_gcycles"],
            "clone_waste_gcycles": cell["clone_waste_gcycles"],
            "failure_waste_gcycles": cell["failure_waste_gcycles"],
            "detection_latency_p50_s": cell["detect_p50_s"],
            "detection_latency_p99_s": cell["detect_p99_s"],
            "cloud_done": cell["cloud_done"],
            "server_failures": cell["server_failures"],
            "clones": cell["clones"],
            "clone_skips": cell["clone_skips"],
            "policy_switches": cell["policy_switches"],
        }
        for label in MTBF_LEVELS_S
        for policy, cell in d[label].items()
    ]
    bench_schema.write_bench(
        RESULTS_DIR / "BENCH_resilience.json",
        bench_schema.envelope(
            "resilience", rows,
            context={"experiment": "A6", "seed": 101,
                     "policies": list(BUNDLES),
                     "pareto_frontier": d["pareto"]}))
