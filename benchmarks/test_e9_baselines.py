"""Bench E9 — DF3 vs cloud-only vs micro-DC vs desktop grid (§I, §V)."""

from conftest import record, run_once

from repro.experiments.e9_baselines import run


def test_e9_baselines(benchmark):
    result = run_once(benchmark, run, duration_days=1.0, seed=41)
    record(result)
    d = result.data
    # edge latency: DF3 beats the remote cloud, and is comparable to micro-DC
    assert d["df3"]["edge_median_ms"] < d["cloud-only"]["edge_median_ms"]
    assert d["df3"]["edge_median_ms"] < 2.0 * d["micro-dc"]["edge_median_ms"]
    # energy: reusing compute heat beats resistive heating + cooled compute
    assert d["df3"]["energy_kwh"] < d["micro-dc"]["energy_kwh"]
    assert d["df3"]["energy_kwh"] < d["cloud-only"]["energy_kwh"]
    # desktop grids cannot carry a real-time edge flow (§I critique)
    assert d["desktop-grid"]["edge_miss"] > 0.3
    assert d["df3"]["edge_miss"] < 0.05
    # DF3 heats the homes it serves
    assert d["df3"]["comfort_in_band"] > 0.8
