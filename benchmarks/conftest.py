"""Benchmark harness plumbing.

Each benchmark runs its experiment exactly once (``benchmark.pedantic`` with
one round — these are system simulations, not microbenchmarks), asserts the
DESIGN.md §4 shape expectations, and records the rendered table under
``benchmarks/results/`` (the source of EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(result) -> None:
    """Persist an ExperimentResult's rendered text and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment_id}.txt"
    path.write_text(str(result) + "\n", encoding="utf-8")
    print(f"\n{result}\n")


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
