"""Legacy setup shim.

Modern installs should use ``pip install -e .`` against ``pyproject.toml``;
this shim keeps ``python setup.py develop`` working on offline machines whose
pip/setuptools cannot build PEP 660 editable wheels (no ``wheel`` package).
"""

from setuptools import setup

setup()
