"""Low-power IoT network protocols (paper §III-B, ref [12]).

"Low power networks and communication protocols (Zigbee, Lora, Sigfox,
Enocean etc.) are inevitable in edge computing."  The four protocols the paper
names are modelled with their published characteristics:

=========  ==========  ============  ===========  =================
protocol   datarate    base latency  max payload  duty-cycle limit
=========  ==========  ============  ===========  =================
Zigbee     250 kbps    ~15 ms        ~100 B       none (CSMA)
LoRa       5.5 kbps    ~80 ms        51–222 B     1 % (EU 868 MHz)
Sigfox     100 bps     ~2 s          12 B         1 % (≈140 msg/day)
EnOcean    125 kbps    ~10 ms        14 B         ~1 % (very short)
=========  ==========  ============  ===========  =================

Duty cycles are the defining constraint of sub-GHz ISM bands: a device that
just used the air for ``a`` seconds may not transmit again for
``a·(1/duty − 1)`` seconds.  :class:`LowPowerLink` enforces this with a
next-free-time gate, so request generators see realistic queueing delays when
they push sensor data too fast — exactly the effect that forces
sense-compute-actuate designs to stay frugal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["LowPowerProtocol", "LowPowerLink", "ZIGBEE", "LORA", "SIGFOX", "ENOCEAN"]


@dataclass(frozen=True)
class LowPowerProtocol:
    """Published characteristics of a low-power radio protocol."""

    name: str
    datarate_bps: float
    base_latency_s: float
    max_payload_bytes: int
    duty_cycle: float  # 1.0 = unrestricted

    def __post_init__(self) -> None:
        if self.datarate_bps <= 0:
            raise ValueError("datarate must be > 0")
        if not 0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        if self.max_payload_bytes < 1:
            raise ValueError("payload must be >= 1 byte")


ZIGBEE = LowPowerProtocol("zigbee", 250_000.0, 0.015, 100, 1.0)
LORA = LowPowerProtocol("lora", 5_500.0, 0.08, 222, 0.01)
SIGFOX = LowPowerProtocol("sigfox", 100.0, 2.0, 12, 0.01)
ENOCEAN = LowPowerProtocol("enocean", 125_000.0, 0.01, 14, 0.01)


class LowPowerLink:
    """One device's uplink on a low-power protocol.

    Messages larger than the protocol payload are fragmented; each fragment
    pays the base latency and airtime, and the duty-cycle gate applies to the
    summed airtime.  Per-device state (``next_free_time``) models the legal
    transmit-budget of that device, not channel contention.
    """

    def __init__(self, protocol: LowPowerProtocol, rng: Optional[np.random.Generator] = None,
                 jitter_std_s: float = 0.0):
        if jitter_std_s < 0:
            raise ValueError("jitter std must be >= 0")
        if jitter_std_s > 0 and rng is None:
            raise ValueError("jittery link needs an rng stream")
        self.protocol = protocol
        self.rng = rng
        self.jitter_std_s = jitter_std_s
        self.next_free_time = 0.0
        self.messages_sent = 0
        self.airtime_used_s = 0.0

    # ------------------------------------------------------------------ #
    def fragments(self, size_bytes: int) -> int:
        """Number of radio frames needed for ``size_bytes`` of payload."""
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        if size_bytes == 0:
            return 1  # an empty ping still occupies a frame
        p = self.protocol.max_payload_bytes
        return -(-size_bytes // p)

    def airtime_s(self, size_bytes: int) -> float:
        """Total on-air transmission time for a message of ``size_bytes``."""
        nfrag = self.fragments(size_bytes)
        payload_bits = max(size_bytes, 1) * 8.0
        overhead_bits = nfrag * 20 * 8.0  # ~20 B of preamble/header per frame
        return (payload_bits + overhead_bits) / self.protocol.datarate_bps

    def send(self, now: float, size_bytes: int) -> float:
        """Transmit a message starting no earlier than ``now``.

        Returns the **delivery time** (absolute).  The device's duty-cycle
        budget is consumed; subsequent sends may be gated.
        """
        air = self.airtime_s(size_bytes)
        start = max(now, self.next_free_time)
        jitter = 0.0
        if self.jitter_std_s > 0:
            jitter = max(float(self.rng.normal(0.0, self.jitter_std_s)), 0.0)
        delivered = start + self.protocol.base_latency_s + air + jitter
        # duty cycle: after `air` seconds on air, stay silent for air*(1/d - 1)
        silence = air * (1.0 / self.protocol.duty_cycle - 1.0)
        self.next_free_time = start + air + silence
        self.messages_sent += 1
        self.airtime_used_s += air
        return delivered

    def delivery_delay(self, now: float, size_bytes: int) -> float:
        """Convenience: delay (s) rather than absolute delivery time."""
        return self.send(now, size_bytes) - now

    def max_message_rate_hz(self, size_bytes: int) -> float:
        """Sustainable message rate under the duty cycle (messages/s)."""
        air = self.airtime_s(size_bytes)
        return self.protocol.duty_cycle / air
