"""Network models: links, low-power IoT protocols, city topology, WAN.

Edge requests in the DF3 model arrive over **low-power networks** (the paper
names Zigbee, LoRa, Sigfox, EnOcean — §III-B), while Internet/DCC requests and
vertical offloading ride fiber WAN paths.  This package models both classes of
transport, plus the city-scale topology (buildings → district clusters →
datacenter backbone) that horizontal/vertical offloading costs are computed
over.
"""

from repro.network.internet import WANLink, WANProfile
from repro.network.link import Link, TransferResult
from repro.network.lowpower import (
    ENOCEAN,
    LORA,
    SIGFOX,
    ZIGBEE,
    LowPowerLink,
    LowPowerProtocol,
)
from repro.network.segmentation import IsolationAuditor, Segment, SegmentationPolicy
from repro.network.topology import CityTopology, NodeKind

__all__ = [
    "ENOCEAN",
    "CityTopology",
    "IsolationAuditor",
    "Link",
    "Segment",
    "SegmentationPolicy",
    "LORA",
    "LowPowerLink",
    "LowPowerProtocol",
    "NodeKind",
    "SIGFOX",
    "TransferResult",
    "WANLink",
    "WANProfile",
    "ZIGBEE",
]
