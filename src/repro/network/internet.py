"""WAN models: fiber uplinks and Internet paths.

Q.rads have a fiber uplink to the Qarnot middleware (paper §II-B1); vertical
offloading pays an Internet round trip to the datacenter.  WAN profiles bundle
the latency/bandwidth shapes the experiments sweep over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.network.link import Link

__all__ = ["WANProfile", "WANLink"]


@dataclass(frozen=True)
class WANProfile:
    """Named WAN latency/bandwidth shape."""

    name: str
    latency_s: float
    bandwidth_bps: float
    jitter_std_s: float

    @staticmethod
    def metro_fiber() -> "WANProfile":
        """Same-metro fiber: the Q.rad uplink (~4 ms, 1 Gbps)."""
        return WANProfile("metro-fiber", 0.004, 1e9, 0.0005)

    @staticmethod
    def national_internet() -> "WANProfile":
        """Edge site → national datacenter (~15 ms, 500 Mbps)."""
        return WANProfile("national-internet", 0.015, 5e8, 0.002)

    @staticmethod
    def continental_internet() -> "WANProfile":
        """Edge site → continental cloud region (~35 ms, 200 Mbps)."""
        return WANProfile("continental-internet", 0.035, 2e8, 0.005)


class WANLink(Link):
    """A :class:`~repro.network.link.Link` built from a :class:`WANProfile`."""

    def __init__(self, profile: WANProfile, rng: Optional[np.random.Generator] = None):
        super().__init__(
            name=profile.name,
            latency_s=profile.latency_s,
            bandwidth_bps=profile.bandwidth_bps,
            jitter_std_s=profile.jitter_std_s if rng is not None else 0.0,
            rng=rng,
        )
        self.profile = profile

    def round_trip(self, request_bytes: float, response_bytes: float) -> float:
        """Delay of a request/response exchange (both directions sampled)."""
        return self.delay(request_bytes) + self.delay(response_bytes)
