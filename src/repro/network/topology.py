"""City-scale topology on a ``networkx`` graph.

The DF3 deployment shape (paper Figs. 3 and 5): buildings host DF servers,
buildings group into **district clusters** coordinated by a master/gateway,
districts connect to each other and to the remote datacenter over fiber.
Offloading decisions need path delays over this graph:

* *direct* edge request: device → server inside one building (LAN);
* *indirect* edge request: device → master → worker (one extra LAN hop);
* *horizontal* offload: cluster → neighbouring cluster (metro fiber);
* *vertical* offload: cluster → datacenter (national Internet).

Node kinds are tagged so experiments can enumerate servers per district, and
every edge carries a :class:`~repro.network.link.Link`.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.network.internet import WANProfile
from repro.network.link import Link

__all__ = ["NodeKind", "CityTopology"]


class NodeKind(str, Enum):
    """Roles a topology node can play."""

    DEVICE = "device"
    BUILDING = "building"
    MASTER = "master"
    DISTRICT = "district"
    DATACENTER = "datacenter"


#: in-building LAN (Ethernet between Q.rads, §II-B1)
_LAN = dict(latency_s=0.0005, bandwidth_bps=1e9)
#: building ↔ district master (street-level fiber)
_STREET = dict(latency_s=0.001, bandwidth_bps=1e9)
#: district ↔ district (metro fiber)
_METRO = dict(latency_s=0.004, bandwidth_bps=1e9)


class CityTopology:
    """A city graph of districts, buildings and one datacenter.

    Use :meth:`build` for the canonical layout: ``n_districts`` districts of
    ``buildings_per_district`` buildings each, every district linked to its
    neighbours in a ring and to the datacenter over a WAN profile.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str, kind: NodeKind) -> None:
        """Add a node; names must be unique."""
        if name in self.graph:
            raise ValueError(f"node {name!r} already exists")
        self.graph.add_node(name, kind=kind)

    def connect(self, a: str, b: str, link: Link) -> None:
        """Connect two existing nodes with a link."""
        for n in (a, b):
            if n not in self.graph:
                raise KeyError(f"unknown node {n!r}")
        self.graph.add_edge(a, b, link=link, weight=link.latency_s)

    @staticmethod
    def build(
        n_districts: int = 3,
        buildings_per_district: int = 4,
        wan: WANProfile = WANProfile.national_internet(),
        rng: Optional[np.random.Generator] = None,
    ) -> "CityTopology":
        """The canonical DF3 city.

        Layout: each district has a master node and its buildings (star);
        districts form a ring over metro fiber; every district master links
        to the single datacenter over ``wan``.
        """
        if n_districts < 1 or buildings_per_district < 1:
            raise ValueError("need at least one district and one building")
        topo = CityTopology()
        topo.add_node("dc", NodeKind.DATACENTER)
        for d in range(n_districts):
            master = f"district-{d}/master"
            topo.add_node(master, NodeKind.MASTER)
            for b in range(buildings_per_district):
                name = f"district-{d}/building-{b}"
                topo.add_node(name, NodeKind.BUILDING)
                topo.connect(name, master, Link(f"street-{d}-{b}", **_STREET))
            topo.connect(
                master, "dc",
                Link(f"wan-{d}", wan.latency_s, wan.bandwidth_bps,
                     wan.jitter_std_s if rng is not None else 0.0, rng),
            )
        for d in range(n_districts):  # ring of districts
            if n_districts > 1:
                nxt = (d + 1) % n_districts
                if not topo.graph.has_edge(f"district-{d}/master", f"district-{nxt}/master"):
                    topo.connect(
                        f"district-{d}/master",
                        f"district-{nxt}/master",
                        Link(f"metro-{d}-{nxt}", **_METRO),
                    )
        return topo

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def kind(self, name: str) -> NodeKind:
        """Kind tag of a node."""
        try:
            return self.graph.nodes[name]["kind"]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def nodes_of_kind(self, kind: NodeKind) -> List[str]:
        """All node names with the given kind, sorted for determinism."""
        return sorted(n for n, d in self.graph.nodes(data=True) if d["kind"] == kind)

    def buildings_of_district(self, district: int) -> List[str]:
        """Building nodes of one district (canonical layout naming)."""
        prefix = f"district-{district}/building-"
        return sorted(n for n in self.graph.nodes if n.startswith(prefix))

    def path(self, a: str, b: str) -> List[str]:
        """Minimum-latency path between two nodes."""
        return nx.shortest_path(self.graph, a, b, weight="weight")

    def path_links(self, a: str, b: str) -> List[Link]:
        """Links along the minimum-latency path."""
        p = self.path(a, b)
        return [self.graph.edges[u, v]["link"] for u, v in zip(p, p[1:])]

    def path_delay(self, a: str, b: str, size_bytes: float) -> float:
        """Simulated transfer delay of ``size_bytes`` along the best path.

        Jittery links draw jitter; per-hop store-and-forward is assumed
        (delays sum).
        """
        return sum(link.delay(size_bytes) for link in self.path_links(a, b))

    def expected_path_delay(self, a: str, b: str, size_bytes: float) -> float:
        """Deterministic expected delay along the best path."""
        return sum(link.expected_delay(size_bytes) for link in self.path_links(a, b))

    def hops(self, a: str, b: str) -> int:
        """Hop count of the minimum-latency path."""
        return len(self.path(a, b)) - 1

    def iter_links(self) -> Iterator[Tuple[str, str, Link]]:
        """All links with their endpoints."""
        for u, v, d in self.graph.edges(data=True):
            yield u, v, d["link"]
