"""Network segmentation and resource-sharing policy (paper §II-C, §III-B).

"As DF servers are also used for Internet requests, direct requests can raise
several security issues.  For their implementation, it is important to
formulate a good resource sharing and network segmentation model."  And
§III-B: "to guarantee the privacy of edge data, it is preferable to have two
local networks, one for edge and one for DCC ... we can envision to put the
dedicated edge servers in a (virtual) private network."

The model: servers belong to **segments** (edge VPN, DCC network, management),
and a :class:`SegmentationPolicy` states which request flows may execute on
which segments.  An :class:`IsolationAuditor` replays a run's placements and
reports violations — the security metric for the architecture-class and
direct-request discussions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.requests import CloudRequest, EdgeRequest, Flow

__all__ = ["Segment", "SegmentationPolicy", "IsolationAuditor", "Violation"]


class Segment(str, Enum):
    """Network segments of a DF3 deployment."""

    EDGE_VPN = "edge-vpn"
    DCC_NET = "dcc-net"
    SHARED = "shared"      # one flat network (the class-1 default)
    MGMT = "mgmt"


@dataclass(frozen=True)
class SegmentationPolicy:
    """Which flows may run on which segments.

    Two canonical policies:

    * :meth:`flat` — one shared network, everything allowed (class 1 without
      isolation; fastest, weakest);
    * :meth:`isolated` — edge only on the edge VPN, DCC only on the DCC net
      (the class-2 recommendation).
    """

    allowed: Tuple[Tuple[Flow, Segment], ...]
    privacy_requires_vpn: bool = True

    def permits(self, flow: Flow, segment: Segment) -> bool:
        """Whether ``flow`` may execute on ``segment``."""
        return (flow, segment) in self.allowed

    def check(self, request, segment: Segment) -> bool:
        """Full check for one request placement."""
        flow = Flow.EDGE if isinstance(request, EdgeRequest) else Flow.CLOUD
        if not self.permits(flow, segment):
            return False
        if (
            self.privacy_requires_vpn
            and isinstance(request, EdgeRequest)
            and request.privacy_sensitive
            and segment is not Segment.EDGE_VPN
        ):
            return False
        return True

    @staticmethod
    def flat() -> "SegmentationPolicy":
        """One flat network; privacy constraint disabled (class-1 default)."""
        return SegmentationPolicy(
            allowed=(
                (Flow.EDGE, Segment.SHARED),
                (Flow.CLOUD, Segment.SHARED),
            ),
            privacy_requires_vpn=False,
        )

    @staticmethod
    def isolated() -> "SegmentationPolicy":
        """Strict class-2 isolation: edge↔VPN, DCC↔DCC-net."""
        return SegmentationPolicy(
            allowed=(
                (Flow.EDGE, Segment.EDGE_VPN),
                (Flow.CLOUD, Segment.DCC_NET),
            ),
            privacy_requires_vpn=True,
        )


@dataclass(frozen=True)
class Violation:
    """One placement that breached the policy."""

    request_id: str
    flow: str
    server: str
    segment: Segment
    privacy_sensitive: bool


class IsolationAuditor:
    """Audits executed placements against a segmentation policy.

    Parameters
    ----------
    policy: the rules.
    segment_of: server name → segment assignment.
    """

    def __init__(self, policy: SegmentationPolicy, segment_of: Dict[str, Segment]):
        self.policy = policy
        self.segment_of = dict(segment_of)

    @staticmethod
    def segments_for_cluster(cluster, shared: bool = False) -> Dict[str, Segment]:
        """Derive the natural segment map from a cluster's dedication split."""
        if shared:
            return {w.name: Segment.SHARED for w in cluster.workers}
        out: Dict[str, Segment] = {}
        dedicated = {w.name for w in cluster.edge_dedicated_workers}
        for w in cluster.workers:
            out[w.name] = Segment.EDGE_VPN if w.name in dedicated else Segment.DCC_NET
        return out

    def audit(self, requests: Iterable) -> List[Violation]:
        """Check every executed request; unknown servers are violations."""
        violations: List[Violation] = []
        for req in requests:
            if not req.executed_on or req.executed_on == "dc":
                continue  # datacenter placements are governed by can_vertical
            segment = self.segment_of.get(req.executed_on)
            flow = Flow.EDGE if isinstance(req, EdgeRequest) else Flow.CLOUD
            privacy = bool(getattr(req, "privacy_sensitive", False))
            if segment is None or not self.policy.check(req, segment):
                violations.append(
                    Violation(
                        request_id=req.request_id,
                        flow=flow.value,
                        server=req.executed_on,
                        segment=segment if segment is not None else Segment.MGMT,
                        privacy_sensitive=privacy,
                    )
                )
        return violations
