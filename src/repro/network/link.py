"""Point-to-point link model: propagation + serialisation + jitter.

The base cost of sending ``size_bytes`` over a link is

.. code-block:: text

    delay = latency + size_bytes * 8 / bandwidth + jitter_draw

which is all the framework needs to compare direct edge requests, master-hop
indirect requests, and WAN offloads (paper §II-C: "they imply to pay an
additional latency cost").  Queueing effects inside a link are ignored here —
contention is modelled at the *server* (cores) and, for low-power radio, via
duty cycles in :mod:`repro.network.lowpower`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Link", "TransferResult"]


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one simulated transfer."""

    delay_s: float
    latency_s: float
    serialisation_s: float
    jitter_s: float


class Link:
    """A bidirectional link with fixed latency, bandwidth and optional jitter.

    Parameters
    ----------
    name: display name.
    latency_s: one-way propagation + processing latency (s).
    bandwidth_bps: payload bandwidth (bits per second).
    jitter_std_s: standard deviation of truncated-at-zero Gaussian jitter.
    rng: stream for jitter; required when ``jitter_std_s > 0``.
    """

    def __init__(
        self,
        name: str,
        latency_s: float,
        bandwidth_bps: float,
        jitter_std_s: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth_bps}")
        if jitter_std_s < 0:
            raise ValueError(f"jitter std must be >= 0, got {jitter_std_s}")
        if jitter_std_s > 0 and rng is None:
            raise ValueError("jittery link needs an rng stream")
        self.name = name
        self.latency_s = float(latency_s)
        self.bandwidth_bps = float(bandwidth_bps)
        self.jitter_std_s = float(jitter_std_s)
        self.rng = rng
        self.bytes_carried = 0
        self.transfers = 0

    def transfer(self, size_bytes: float) -> TransferResult:
        """Simulate one transfer; returns the component delays."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        ser = size_bytes * 8.0 / self.bandwidth_bps
        jit = 0.0
        if self.jitter_std_s > 0:
            jit = max(float(self.rng.normal(0.0, self.jitter_std_s)), 0.0)
        self.bytes_carried += int(size_bytes)
        self.transfers += 1
        return TransferResult(
            delay_s=self.latency_s + ser + jit,
            latency_s=self.latency_s,
            serialisation_s=ser,
            jitter_s=jit,
        )

    def delay(self, size_bytes: float) -> float:
        """Convenience: just the total delay of one transfer."""
        return self.transfer(size_bytes).delay_s

    def expected_delay(self, size_bytes: float) -> float:
        """Deterministic expected delay (no jitter draw, no accounting)."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        return self.latency_s + size_bytes * 8.0 / self.bandwidth_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.latency_s*1e3:.1f}ms {self.bandwidth_bps/1e6:.1f}Mbps>"
