"""repro — Data Furnace in Three Flows (DF3), executable.

A simulation framework reproducing *"Invited Paper: How Future Buildings Could
Redefine Distributed Computing"* (Ngoko, Sainthérant, Cérin, Trystram — IPDPS
Workshops 2018): data-furnace servers integrated in buildings, serving
district heating, distributed-cloud and edge computing from one middleware.

Entry points
------------
* :class:`repro.core.middleware.DF3Middleware` — the assembled city;
* :mod:`repro.experiments` — every reproduced figure/claim (F3, F4, E1-E12,
  A1-A4), runnable via ``python -m repro run <id>``;
* ``DESIGN.md`` / ``EXPERIMENTS.md`` — system inventory and paper-vs-measured.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
