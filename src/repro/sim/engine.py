"""Discrete-event simulation engine.

A deliberately small, deterministic kernel: events are ``(time, priority, seq)``
ordered in a binary heap, where ``seq`` is a monotonically increasing insertion
counter that guarantees a *stable* order for simultaneous events.  Determinism
of the event order — together with the named RNG streams of
:mod:`repro.sim.rng` — is what makes every experiment in this repository
bit-reproducible.

The engine supports two styles of activity:

* **one-shot callbacks** scheduled with :meth:`Engine.schedule` /
  :meth:`Engine.schedule_at`;
* **periodic processes** (:class:`Process`) registered with
  :meth:`Engine.add_process`, used by continuous subsystems (thermal
  integration, controllers, metric sampling) that advance on a fixed tick.

Periodic processes receive the elapsed ``dt`` so integrators do not need to
track time themselves.

Processes that share a period (and offset) may be **fused** into one batched
dispatch by registering them with the same ``group=`` name: the engine then
pops a single heap event per tick and invokes every member callback in
registration order, instead of popping one event per process.  Fusion is an
engine-level optimisation with a strict ordering contract — member callbacks
run in exactly the order an unfused registration would have run them (see
``tests/test_sim_engine_properties.py``) — and a fused tick counts as one
executed event, because it *is* one event.

One low-level hook supports byte-identical *vectorised* fast paths layered
above the engine (see DESIGN.md §2.13): :meth:`Engine.reserve_seq` advances
the insertion counter without scheduling, so a batched operation can consume
exactly the sequence numbers its scalar equivalent would have consumed — the
live events' ``(time, priority, seq)`` triples, and therefore the dispatch
order, stay identical.

The engine optionally carries a tracer and a profiler (see :mod:`repro.obs`):
with either attached, every dispatched callback is attributed to a label (the
``label=`` given at scheduling time, or the callback's ``__qualname__``) —
the profiler accumulates wall-clock per label, the tracer records the
dispatch at simulated time.  With both detached (the default) the dispatch
loop is exactly the uninstrumented fast path.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional

__all__ = ["Engine", "Event", "Process", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid engine usage (e.g. scheduling in the past)."""


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, priority, seq)``.  Lower ``priority`` runs first
    among simultaneous events; ``seq`` breaks remaining ties by insertion
    order.  ``cancelled`` events stay in the heap but are skipped when popped
    (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: Optional[str] = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True


class Process:
    """A periodic activity driven by the engine.

    ``fn(now, dt)`` is invoked every ``period`` simulated seconds.  The first
    invocation happens at ``start + period`` (a process observes the interval
    that just elapsed, it does not fire at registration time).
    """

    __slots__ = ("name", "period", "fn", "_last", "active")

    def __init__(self, name: str, period: float, fn: Callable[[float, float], None]):
        if period <= 0:
            raise SimulationError(f"process {name!r}: period must be > 0, got {period}")
        self.name = name
        self.period = float(period)
        self.fn = fn
        self._last: Optional[float] = None
        self.active = True

    def stop(self) -> None:
        """Deactivate the process; it will not be rescheduled."""
        self.active = False


class _ProcessGroup:
    """Same-period processes fused into one batched dispatch (see module doc)."""

    __slots__ = ("name", "members")

    def __init__(self, name: str):
        self.name = name
        self.members: List[Process] = []


class Engine:
    """The simulation event loop.

    Parameters
    ----------
    start:
        Simulation epoch in seconds (default 0.0 = Jan 1, 00:00 in
        :class:`repro.sim.calendar.SimCalendar` terms).
    tracer:
        Optional :class:`repro.obs.Tracer`; when set, each dispatched
        callback emits an ``engine.dispatch`` record.
    profiler:
        Optional :class:`repro.obs.Profiler`; when set, each dispatched
        callback's wall-clock time is attributed to its label.

    Notes
    -----
    The engine never advances past the horizon given to :meth:`run_until`;
    events scheduled beyond it remain queued and will run if the horizon is
    extended by a later call.
    """

    def __init__(self, start: float = 0.0, tracer=None, profiler=None):
        self.now: float = float(start)
        # heap entries are (time, priority, seq, Event): the hot-loop
        # comparisons then run on plain tuples in C instead of dispatching
        # Event.__lt__ per sift — seq is unique, so the Event never compares
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._processes: List[Process] = []
        self._groups: dict = {}  # (group, period, offset) → _ProcessGroup
        self._events_executed = 0
        self.tracer = tracer
        self.profiler = profiler
        #: vector-kernel switch, set *before* building the model: servers
        #: bound to this engine adopt O(1) incremental bookkeeping (cached
        #: busy-core counters) instead of the scalar reference's recompute-
        #: on-read.  Results are byte-identical either way; only the work
        #: per query changes (DESIGN.md §2.13).
        self.incremental_accounting = False

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], None], priority: int = 0,
                 label: Optional[str] = None) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, callback, priority, label=label)

    def schedule_at(self, time: float, callback: Callable[[], None], priority: int = 0,
                    label: Optional[str] = None) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        ``label`` names the event for profiling/tracing attribution; unnamed
        events fall back to the callback's ``__qualname__``.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule event at NaN time")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: t={time} < now={self.now}"
            )
        # direct slot stores: same object state as Event(...), minus the
        # dataclass argument plumbing on the hottest allocation in the engine
        ev = Event.__new__(Event)
        ev.time = t = float(time)
        ev.priority = priority
        ev.seq = seq = next(self._seq)
        ev.callback = callback
        ev.cancelled = False
        ev.label = label
        heapq.heappush(self._heap, (t, priority, seq, ev))
        return ev

    def reserve_seq(self, n: int = 1) -> None:
        """Advance the insertion counter by ``n`` without scheduling anything.

        Batched fast paths (e.g. :meth:`repro.hardware.server.ComputeServer.
        submit_batch`) call this to consume exactly the sequence numbers their
        scalar equivalents would have consumed on intermediate, immediately
        cancelled events.  The surviving event then carries the same
        ``(time, priority, seq)`` triple either way, which is what keeps the
        vectorised kernel byte-identical to the scalar one.
        """
        if n < 0:
            raise SimulationError(f"cannot reserve {n} sequence numbers")
        for _ in range(n):
            next(self._seq)

    def add_process(self, name: str, period: float, fn: Callable[[float, float], None],
                    offset: float = 0.0, group: Optional[str] = None) -> Process:
        """Register a periodic process; see :class:`Process`.

        ``offset`` shifts the process phase: the first invocation happens at
        ``now + offset + period`` and subsequent ones every ``period``.  Use
        distinct offsets to keep independent periodic activities (thermal
        tick, per-district checkpointers, ...) from piling onto the same
        event timestamps.

        ``group`` fuses same-cadence processes: all processes registered with
        the same ``(group, period, offset)`` share **one** heap event per
        tick, and their callbacks run back-to-back in registration order when
        it fires.  A fused tick is one dispatched event (one sequence number,
        one ``events_executed`` increment) regardless of the member count.
        Members registered after the group's first tick join the shared
        cadence: their first ``dt`` is the time since their registration.
        """
        if offset < 0:
            raise SimulationError(f"process {name!r}: offset must be >= 0, got {offset}")
        proc = Process(name, period, fn)
        proc._last = self.now
        self._processes.append(proc)
        if group is None:
            self._schedule_process(proc, extra_delay=offset)
            return proc
        key = (group, proc.period, float(offset))
        grp = self._groups.get(key)
        if grp is None:
            grp = _ProcessGroup(group)
            self._groups[key] = grp
            self._schedule_group(key, grp, proc.period, extra_delay=offset)
        grp.members.append(proc)
        return proc

    def _schedule_process(self, proc: Process, extra_delay: float = 0.0) -> None:
        def tick() -> None:
            if not proc.active:
                return
            dt = self.now - proc._last
            proc._last = self.now
            proc.fn(self.now, dt)
            if proc.active:
                self._schedule_process(proc)

        self.schedule(proc.period + extra_delay, tick, priority=10,
                      label=f"process:{proc.name}")

    def _schedule_group(self, key, grp: _ProcessGroup, period: float,
                        extra_delay: float = 0.0) -> None:
        def tick() -> None:
            # the active check sits inside the loop on purpose: a member may
            # stop a later member mid-tick, exactly as an unfused dispatch
            # would observe (the later event pops, sees inactive, skips)
            for proc in grp.members:
                if not proc.active:
                    continue
                dt = self.now - proc._last
                proc._last = self.now
                proc.fn(self.now, dt)
            if any(p.active for p in grp.members):
                self._schedule_group(key, grp, period)
            else:
                # let a later add_process with the same key start fresh
                self._groups.pop(key, None)

        self.schedule(period + extra_delay, tick, priority=10,
                      label=f"process:{grp.name}")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_until(self, horizon: float) -> None:
        """Execute all events with ``time <= horizon``, then set now=horizon."""
        if horizon < self.now:
            raise SimulationError(f"horizon {horizon} is before now={self.now}")
        instrumented = self.tracer is not None or self.profiler is not None
        while self._heap and self._heap[0][0] <= horizon:
            ev = heapq.heappop(self._heap)[3]
            if ev.cancelled:
                continue
            self.now = ev.time
            if instrumented:
                self._dispatch_instrumented(ev)
            else:
                ev.callback()
            self._events_executed += 1
        self.now = float(horizon)

    def step_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Execute events with ``time <= horizon``, up to ``max_events`` of them.

        The pausable form of :meth:`run_until`: it returns the number of
        callbacks executed, and only advances ``now`` to ``horizon`` once
        every due event has run — when the event budget is exhausted first,
        ``now`` stays at the last executed event's time so a later call (or
        a plain :meth:`run_until`) resumes exactly where this one stopped.

        Determinism contract (DESIGN.md §2.15): any sequence of
        ``step_until`` calls that reaches ``horizon`` executes the same
        events, in the same order, with the same ``now`` at each dispatch,
        as one ``run_until(horizon)`` — pausing is unobservable to the model.
        """
        if horizon < self.now:
            raise SimulationError(f"horizon {horizon} is before now={self.now}")
        if max_events is not None and max_events < 0:
            raise SimulationError(f"max_events must be >= 0, got {max_events}")
        instrumented = self.tracer is not None or self.profiler is not None
        executed = 0
        while self._heap and self._heap[0][0] <= horizon:
            if max_events is not None and executed >= max_events:
                return executed
            ev = heapq.heappop(self._heap)[3]
            if ev.cancelled:
                continue
            self.now = ev.time
            if instrumented:
                self._dispatch_instrumented(ev)
            else:
                ev.callback()
            self._events_executed += 1
            executed += 1
        self.now = float(horizon)
        return executed

    def iter_run(self, horizon: float, max_events: int = 1000):
        """Generator-style ticking: drive to ``horizon`` in bounded batches.

        Yields ``(now, executed)`` after each batch of at most ``max_events``
        dispatched callbacks; the consumer may pause arbitrarily long between
        ``next()`` calls (or interleave reads of engine state) and the run
        stays byte-identical to one :meth:`run_until` call — this is the
        engine/IO split the service layer is built on.
        """
        if max_events < 1:
            raise SimulationError(f"max_events must be >= 1, got {max_events}")
        while True:
            executed = self.step_until(horizon, max_events=max_events)
            yield self.now, executed
            if executed < max_events:
                return

    def step(self) -> bool:
        """Execute the single next event.  Returns False if the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)[3]
            if ev.cancelled:
                continue
            self.now = ev.time
            if self.tracer is not None or self.profiler is not None:
                self._dispatch_instrumented(ev)
            else:
                ev.callback()
            self._events_executed += 1
            return True
        return False

    def _dispatch_instrumented(self, ev: Event) -> None:
        """Run one callback under profiling and/or tracing attribution."""
        label = ev.label or getattr(ev.callback, "__qualname__", "callback")
        t0 = perf_counter()
        ev.callback()
        elapsed = perf_counter() - t0
        if self.profiler is not None:
            self.profiler.record(label, elapsed)
        if self.tracer is not None:
            self.tracer.emit("engine", "engine.dispatch", self.now,
                             label=label, priority=ev.priority)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_executed

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None
