"""Deterministic discrete-event simulation kernel for the DF3 framework.

The kernel is intentionally small: a stable event heap (:mod:`repro.sim.engine`),
a civil-time calendar over simulated seconds (:mod:`repro.sim.calendar`) and a
registry of named, independently seeded random streams (:mod:`repro.sim.rng`).
Every other subsystem in :mod:`repro` is built on these three pieces, which is
what makes whole-city experiments bit-reproducible from a single seed.
"""

from repro.sim.calendar import (
    DAY,
    HEATING_SEASON_MONTHS,
    HOUR,
    MINUTE,
    MONTH_LENGTHS,
    WEEK,
    YEAR,
    SimCalendar,
    month_name,
)
from repro.sim.engine import Engine, Event, Process
from repro.sim.rng import RngRegistry

__all__ = [
    "DAY",
    "HEATING_SEASON_MONTHS",
    "HOUR",
    "MINUTE",
    "MONTH_LENGTHS",
    "WEEK",
    "YEAR",
    "Engine",
    "Event",
    "Process",
    "RngRegistry",
    "SimCalendar",
    "month_name",
]
