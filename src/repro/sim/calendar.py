"""Civil time over simulated seconds.

The simulation epoch (t = 0.0 s) is **January 1st, 00:00** of a non-leap year.
Experiments that span the paper's Figure 4 window (November through May) simply
start the engine at ``SimCalendar.month_start(11)`` and run across the year
boundary; the calendar wraps modulo one year.

All durations are plain floats in seconds so that the thermal integrators and
the event engine share one time base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "YEAR",
    "MONTH_LENGTHS",
    "HEATING_SEASON_MONTHS",
    "SimCalendar",
    "month_name",
]

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY
#: Days per month, non-leap year (the paper's Fig. 4 spans Nov 2015 – May 2016).
MONTH_LENGTHS: Tuple[int, ...] = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)
YEAR = sum(MONTH_LENGTHS) * DAY

#: Months of the Fig. 4 heating season, in display order: Nov..May.
HEATING_SEASON_MONTHS: Tuple[int, ...] = (11, 12, 1, 2, 3, 4, 5)

_MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)

_MONTH_STARTS_DAYS: List[int] = []
_acc = 0
for _len in MONTH_LENGTHS:
    _MONTH_STARTS_DAYS.append(_acc)
    _acc += _len


def month_name(month: int) -> str:
    """Three-letter English name for a 1-based month number."""
    if not 1 <= month <= 12:
        raise ValueError(f"month must be in 1..12, got {month}")
    return _MONTH_NAMES[month - 1]


@dataclass(frozen=True)
class SimCalendar:
    """Stateless converter between simulated seconds and civil time.

    An instance exists (rather than module functions) so a future variant could
    shift the epoch; all conversions wrap modulo one 365-day year.
    """

    epoch_offset: float = 0.0

    # -------------------------------------------------------------- #
    def _wrapped(self, t: float) -> float:
        return (t + self.epoch_offset) % YEAR

    def day_of_year(self, t: float) -> int:
        """0-based day within the year at simulated time ``t``."""
        return int(self._wrapped(t) // DAY)

    def month(self, t: float) -> int:
        """1-based month at simulated time ``t``."""
        day = self.day_of_year(t)
        for m in range(12, 0, -1):
            if day >= _MONTH_STARTS_DAYS[m - 1]:
                return m
        return 1

    def day_of_month(self, t: float) -> int:
        """1-based day of month at ``t``."""
        return self.day_of_year(t) - _MONTH_STARTS_DAYS[self.month(t) - 1] + 1

    def hour_of_day(self, t: float) -> float:
        """Fractional hour in [0, 24) at ``t``."""
        return (self._wrapped(t) % DAY) / HOUR

    def day_of_week(self, t: float) -> int:
        """0 = Monday .. 6 = Sunday (epoch day is a Monday)."""
        return self.day_of_year(t) % 7

    def is_weekend(self, t: float) -> bool:
        """True on Saturday/Sunday."""
        return self.day_of_week(t) >= 5

    def is_business_hours(self, t: float) -> bool:
        """Weekday 09:00–18:00, the paper's DCC 'business opportunity' window."""
        return (not self.is_weekend(t)) and 9.0 <= self.hour_of_day(t) < 18.0

    # -------------------------------------------------------------- #
    def month_start(self, month: int) -> float:
        """Simulated time of 00:00 on the 1st of ``month`` (1-based)."""
        if not 1 <= month <= 12:
            raise ValueError(f"month must be in 1..12, got {month}")
        return _MONTH_STARTS_DAYS[month - 1] * DAY - self.epoch_offset

    def month_length(self, month: int) -> float:
        """Duration of ``month`` in seconds."""
        if not 1 <= month <= 12:
            raise ValueError(f"month must be in 1..12, got {month}")
        return MONTH_LENGTHS[month - 1] * DAY

    def in_heating_season(self, t: float) -> bool:
        """True during the Nov–May window the paper's Fig. 4 covers."""
        return self.month(t) in HEATING_SEASON_MONTHS

    def iter_heating_season(self) -> Iterator[Tuple[int, float, float]]:
        """Yield ``(month, t_start, t_end)`` for Nov..May in display order.

        The spring months (Jan–May) are returned one year after the autumn
        months so that the intervals are monotonically increasing — callers
        can run one engine across the whole season.
        """
        for m in HEATING_SEASON_MONTHS:
            start = self.month_start(m)
            if m < 11:  # Jan..May of the following year
                start += YEAR
            yield m, start, start + self.month_length(m)

    def season_fraction(self, t: float) -> float:
        """Position in the year as a fraction in [0, 1), 0 = Jan 1."""
        return self._wrapped(t) / YEAR
