"""Named, independently seeded random streams.

Every stochastic source in the framework (weather noise, request arrivals, job
sizes, sensor noise, ...) draws from its own named stream derived from a single
experiment seed via ``numpy.random.SeedSequence.spawn`` semantics.  Two
properties follow:

* **reproducibility** — the same experiment seed replays bit-identically;
* **insensitivity** — adding a new stochastic source (a new stream name) does
  not perturb draws of existing streams, because each stream's seed is derived
  from ``(root seed, stream name)``, not from draw order.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root experiment seed. Any non-negative integer.

    Examples
    --------
    >>> rngs = RngRegistry(42)
    >>> weather = rngs.stream("weather")
    >>> arrivals = rngs.stream("edge-arrivals")
    >>> float(weather.standard_normal()) != float(arrivals.standard_normal())
    True
    """

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be >= 0, got {seed}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always returns the *same generator object*, so sequential
        draws from one logical source advance one state.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Stable across processes/runs: derive a child key from the CRC of
            # the name (not Python's salted hash()).
            child = zlib.crc32(name.encode("utf-8"))
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence([self.seed, child])))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. per replication) with independent streams."""
        child_seed = (self.seed * 1_000_003 + zlib.crc32(name.encode("utf-8"))) % (2**63)
        return RngRegistry(child_seed)

    def names(self) -> Iterator[str]:
        """Names of streams created so far."""
        return iter(sorted(self._streams))

    def stream_states(self) -> Dict[str, dict]:
        """Snapshot of every created stream's bit-generator state.

        For stream-isolation regression tests: because each stream's seed
        derives from ``(root seed, name)`` and not draw order, creating or
        consuming a *new* stream must leave every other name's state here
        unchanged — assert the snapshots are equal.
        """
        return {
            name: gen.bit_generator.state
            for name, gen in self._streams.items()
        }

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
