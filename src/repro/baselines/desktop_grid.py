"""Desktop-grid / volunteer-computing baseline (paper §I, refs [3–5]).

Personal computers in homes execute grid work **opportunistically**: only when
the owner is not using the machine.  The paper's critique, reproduced here:

* "the experimental validation of desktop grid architectures has often been
  done on opportunistic workloads ... Such workloads do not capture the
  foundations of real-time applications" — edge requests stall whenever the
  local desktops are reclaimed by their owners;
* "the execution of edge computing workloads on personal computers will
  introduce new discomfort problems for end-users like: unexpected heat,
  noises or the fact of not being able to fully use their computing power" —
  we account *discomfort hours*: fan-noise hours while the owner is present,
  plus unwanted-heat hours outside the heating season.

Desktops have fans (they are not silent Q.rads), a smaller envelope, and an
owner-presence schedule that suspends grid tasks.
"""

from __future__ import annotations

from typing import List

from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.hardware.cpu import DVFSLadder
from repro.hardware.server import ComputeServer, ServerSpec, Task
from repro.sim.calendar import SimCalendar
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

__all__ = ["DesktopGridBaseline", "DESKTOP_SPEC"]

#: a typical home desktop volunteered to the grid
DESKTOP_SPEC = ServerSpec(
    model="desktop",
    n_cores=8,
    ladder=DVFSLadder.intel_like(),
    p_idle_w=45.0,
    p_max_w=180.0,
    heat_fraction=1.0,
)


class DesktopGridBaseline:
    """Opportunistic execution on owner-scheduled desktops."""

    def __init__(
        self,
        n_desktops: int = 12,
        seed: int = 0,
        start_time: float = 0.0,
        owner_hours: tuple = (18.0, 23.0),
        tick_s: float = 300.0,
    ):
        if n_desktops < 1:
            raise ValueError("need at least one desktop")
        if not 0 <= owner_hours[0] < owner_hours[1] <= 24:
            raise ValueError("owner hours must be an increasing pair in [0, 24]")
        self.engine = Engine(start=start_time)
        self.rngs = RngRegistry(seed)
        self.cal = SimCalendar()
        self.owner_hours = owner_hours
        self.desktops: List[ComputeServer] = [
            ComputeServer(f"desktop-{i}", DESKTOP_SPEC, self.engine)
            for i in range(n_desktops)
        ]
        self._queue: List = []       # (req, sink) pairs waiting for idle windows
        self.completed_edge: List[EdgeRequest] = []
        self.completed_cloud: List[CloudRequest] = []
        self.suspensions = 0
        self.noise_discomfort_hours = 0.0
        self.unwanted_heat_kwh = 0.0
        self.engine.add_process("desktop-grid-tick", tick_s, self._tick)

    # ------------------------------------------------------------------ #
    def owner_present(self, t: float) -> bool:
        """Whether owners are at their machines (grid must yield)."""
        hod = self.cal.hour_of_day(t)
        return self.owner_hours[0] <= hod < self.owner_hours[1]

    def _tick(self, now: float, dt: float) -> None:
        present = self.owner_present(now)
        for d in self.desktops:
            # discomfort accounting covers the interval that just elapsed,
            # while grid work was (still) running
            d.sync()
            busy = d.busy_cores > 0
            if busy and present:
                self.noise_discomfort_hours += dt / 3600.0
            if busy and not self.cal.in_heating_season(now):
                self.unwanted_heat_kwh += d.heat_output_w() * dt / 3.6e6
            if present:
                # owners reclaim their machines: suspend all grid work
                for task in list(d.running_tasks):
                    t = d.preempt(task.task_id)
                    req = t.metadata["request"]
                    req.cycles = max(t.remaining_cycles, 1.0)
                    req.status = RequestStatus.QUEUED
                    sink = t.metadata["sink"]
                    self._queue.insert(0, (req, sink))
                    self.suspensions += 1
        if not present:
            self._drain()

    # ------------------------------------------------------------------ #
    def _drain(self) -> None:
        if self.owner_present(self.engine.now):
            return
        remaining = []
        for req, sink in self._queue:
            if not self._try_place(req, sink):
                remaining.append((req, sink))
        self._queue = remaining

    def _try_place(self, req, sink) -> bool:
        for d in self.desktops:
            if d.free_cores >= req.cores:
                task = Task(
                    f"{req.request_id}-try{int(self.engine.now)}",
                    req.cycles,
                    req.cores,
                    on_complete=lambda t, now: self._done(t, now),
                    metadata={"request": req, "sink": sink},
                )
                if d.submit(task):
                    req.status = RequestStatus.RUNNING
                    req.started_at = self.engine.now
                    req.executed_on = d.name
                    return True
        return False

    def _done(self, task: Task, now: float) -> None:
        req = task.metadata["request"]
        req.mark_completed(now)
        task.metadata["sink"].append(req)
        self._drain()

    # ------------------------------------------------------------------ #
    def submit_edge(self, req: EdgeRequest) -> None:
        """Edge request: runs only if an idle window is open right now."""
        self._submit(req, self.completed_edge)

    def submit_cloud(self, req: CloudRequest) -> None:
        """Grid batch work: waits for idle windows like BOINC."""
        self._submit(req, self.completed_cloud)

    def _submit(self, req, sink) -> None:
        if self.owner_present(self.engine.now) or not self._try_place(req, sink):
            req.status = RequestStatus.QUEUED
            self._queue.append((req, sink))

    def inject(self, requests) -> None:
        """Schedule request arrivals."""
        for req in requests:
            if isinstance(req, EdgeRequest):
                self.engine.schedule_at(req.time, lambda r=req: self.submit_edge(r))
            elif isinstance(req, CloudRequest):
                self.engine.schedule_at(req.time, lambda r=req: self.submit_cloud(r))
            else:
                raise TypeError(f"desktop grid cannot take {type(req).__name__}")

    def run_until(self, t: float) -> None:
        """Advance the baseline world."""
        self.engine.run_until(t)

    # ------------------------------------------------------------------ #
    def edge_deadline_miss_rate(self) -> float:
        """Miss rate counting still-queued edge requests as misses."""
        done = [r for r in self.completed_edge if r.status is RequestStatus.COMPLETED]
        stuck = [r for r, _ in self._queue if isinstance(r, EdgeRequest)]
        n = len(done) + len(stuck)
        if n == 0:
            return 0.0
        return (sum(1 for r in done if not r.deadline_met()) + len(stuck)) / n

    def total_energy_j(self) -> float:
        """Desktop fleet energy."""
        for d in self.desktops:
            d.sync()
        return sum(d.energy_j for d in self.desktops)
