"""Micro-datacenter baseline (paper §V, Schneider white paper [23]).

Small air-cooled server rooms distributed across the city's districts: edge
requests reach their district's micro-DC over metro fiber (latency comparable
to DF3), cloud requests spill to whichever micro-DC has room.  The two costs
DF3 avoids remain: cooling overhead on every joule, and all heat — IT plus
compressor work — rejected outdoors while homes burn resistive heat.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.hardware.datacenter import Datacenter
from repro.hardware.server import Task
from repro.network.link import Link
from repro.network.lowpower import ZIGBEE, LowPowerLink
from repro.sim.calendar import SimCalendar
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.thermal.building import Building, RoomConfig
from repro.thermal.comfort import ComfortTracker
from repro.thermal.heat_island import HeatIslandLedger
from repro.thermal.weather import Weather, WeatherConfig

__all__ = ["MicroDatacenterBaseline"]


class MicroDatacenterBaseline:
    """One small air-cooled DC per district + resistive home heating."""

    def __init__(
        self,
        n_districts: int = 2,
        nodes_per_micro_dc: int = 2,
        n_rooms: int = 12,
        seed: int = 0,
        start_time: float = 0.0,
        weather: WeatherConfig = WeatherConfig(),
        heater_w: float = 1000.0,
        thermal_tick_s: float = 300.0,
        metro_latency_s: float = 0.004,
        weather_horizon: float = 2 * 365 * 86400.0,
    ):
        if n_districts < 1 or nodes_per_micro_dc < 1:
            raise ValueError("need at least one district and one node")
        self.engine = Engine(start=start_time)
        self.rngs = RngRegistry(seed)
        self.cal = SimCalendar()
        self.weather = Weather(self.rngs.stream("weather"), weather, horizon=weather_horizon)
        self.ledger = HeatIslandLedger()
        self.comfort = ComfortTracker()
        # micro-DCs are small rooms with packaged cooling: worse overhead than
        # a hyperscale plant (Schneider's own sizing guidance)
        self.micro_dcs: Dict[int, Datacenter] = {
            d: Datacenter(f"mdc-{d}", nodes_per_micro_dc, self.engine,
                          cooling_overhead=0.45, fixed_overhead_w=40.0,
                          ledger=self.ledger)
            for d in range(n_districts)
        }
        self.metro = Link("metro", metro_latency_s, 1e9)
        self.heater_w = float(heater_w)
        self.heater_energy_j = 0.0
        self.setpoint_c = 20.0
        self.completed_edge: List[EdgeRequest] = []
        self.completed_cloud: List[CloudRequest] = []
        # same building radio fabric as DF3: edge pays the first hop
        self._radio: Dict[str, LowPowerLink] = {}
        rooms = [RoomConfig(name=f"room-{i}") for i in range(n_rooms)]
        self.building = Building(rooms, self.weather, t_init_c=18.0)
        self._heater_on = np.zeros(n_rooms, dtype=bool)
        self.engine.add_process("micro-dc-tick", thermal_tick_s, self._tick)

    # ------------------------------------------------------------------ #
    def _tick(self, now: float, dt: float) -> None:
        temps = self.building.temperatures
        self._heater_on = np.where(
            temps < self.setpoint_c - 0.5, True,
            np.where(temps > self.setpoint_c + 0.5, False, self._heater_on),
        )
        for room, on in zip(self.building.rooms, self._heater_on):
            room.aux_heat_w = self.heater_w if on else 0.0
        self.heater_energy_j += float(np.sum(self._heater_on)) * self.heater_w * dt
        self.building.step(now, dt)
        self.comfort.add(dt, self.building.temperatures, self.setpoint_c,
                         month=self.cal.month(now))
        for dc in self.micro_dcs.values():
            dc.account_heat(dt)

    # ------------------------------------------------------------------ #
    def _district_of(self, source: str) -> int:
        try:
            return int(source.split("/")[0].split("-")[1]) % len(self.micro_dcs)
        except (IndexError, ValueError):
            return 0

    def _execute_on(self, dc: Datacenter, req, sink: List) -> None:
        hop = self.metro.delay(req.input_bytes)
        req.network_delay_s += hop

        def arrive() -> None:
            def done(task: Task, now: float) -> None:
                ret = self.metro.delay(req.output_bytes)
                req.network_delay_s += ret
                self.engine.schedule(ret, lambda: req.mark_completed(self.engine.now))
                sink.append(req)

            req.status = RequestStatus.RUNNING
            req.started_at = self.engine.now
            req.executed_on = dc.name
            dc.submit(Task(req.request_id, req.cycles, req.cores, on_complete=done,
                           metadata={"request": req}))

        self.engine.schedule(hop, arrive)

    def submit_edge(self, req: EdgeRequest) -> None:
        """Edge requests run in their district's micro-DC (radio + metro)."""
        link = self._radio.setdefault(req.source or "?", LowPowerLink(ZIGBEE))
        radio = link.delivery_delay(self.engine.now, int(req.input_bytes))
        req.network_delay_s += radio
        dc = self.micro_dcs[self._district_of(req.source)]
        self.engine.schedule(radio, lambda: self._execute_on(dc, req, self.completed_edge))

    def submit_cloud(self, req: CloudRequest) -> None:
        """Cloud requests go to the emptiest micro-DC."""
        dc = max(self.micro_dcs.values(), key=lambda d: d.free_cores)
        self._execute_on(dc, req, self.completed_cloud)

    def inject(self, requests) -> None:
        """Schedule request arrivals."""
        for req in requests:
            if isinstance(req, EdgeRequest):
                self.engine.schedule_at(req.time, lambda r=req: self.submit_edge(r))
            elif isinstance(req, CloudRequest):
                self.engine.schedule_at(req.time, lambda r=req: self.submit_cloud(r))
            else:
                raise TypeError(f"micro-DC baseline cannot take {type(req).__name__}")

    def run_until(self, t: float) -> None:
        """Advance the baseline world."""
        self.engine.run_until(t)

    # ------------------------------------------------------------------ #
    def edge_deadline_miss_rate(self) -> float:
        """Deadline miss rate of the micro-DC edge flow."""
        done = [r for r in self.completed_edge if r.status is RequestStatus.COMPLETED]
        if not done:
            return 0.0
        return sum(1 for r in done if not r.deadline_met()) / len(done)

    def total_energy_j(self) -> float:
        """All micro-DCs (incl. cooling) + resistive heating."""
        total = self.heater_energy_j
        for dc in self.micro_dcs.values():
            for n in dc.nodes:
                n.sync()
            total += sum(n.energy_j for n in dc.nodes)
        return total
