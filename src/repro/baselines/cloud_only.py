"""The status-quo baseline: remote cloud + resistive home heating.

Every edge and cloud request crosses the WAN to one air-cooled datacenter.
Homes are heated by plain electric heaters under a bang-bang thermostat —
electricity turns into heat with no computation attached, which is exactly
the waste the data-furnace model monetises.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.hardware.datacenter import Datacenter
from repro.hardware.server import Task
from repro.network.internet import WANLink, WANProfile
from repro.network.lowpower import ZIGBEE, LowPowerLink
from repro.sim.calendar import SimCalendar
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.thermal.building import Building, RoomConfig
from repro.thermal.comfort import ComfortTracker
from repro.thermal.heat_island import HeatIslandLedger, OutdoorHeatSource
from repro.thermal.weather import Weather, WeatherConfig

__all__ = ["CloudOnlyBaseline"]


class CloudOnlyBaseline:
    """All compute remote, all heat resistive.

    Parameters mirror the DF3 middleware's city shape so E9 compares equals:
    same number of rooms (each with a 1 kW resistive heater), same weather,
    same request streams.
    """

    def __init__(
        self,
        n_rooms: int = 12,
        dc_nodes: int = 8,
        seed: int = 0,
        start_time: float = 0.0,
        wan: WANProfile = WANProfile.continental_internet(),
        weather: WeatherConfig = WeatherConfig(),
        heater_w: float = 1000.0,
        thermal_tick_s: float = 300.0,
        weather_horizon: float = 2 * 365 * 86400.0,
    ):
        if n_rooms < 1:
            raise ValueError("need at least one room")
        self.engine = Engine(start=start_time)
        self.rngs = RngRegistry(seed)
        self.cal = SimCalendar()
        self.weather = Weather(self.rngs.stream("weather"), weather, horizon=weather_horizon)
        self.ledger = HeatIslandLedger()
        self.comfort = ComfortTracker()
        self.datacenter = Datacenter("dc", dc_nodes, self.engine, ledger=self.ledger)
        self.wan = WANLink(wan, rng=self.rngs.stream("wan"))
        self.heater_w = float(heater_w)
        self.heater_energy_j = 0.0
        self.setpoint_c = 20.0
        self.completed_edge: List[EdgeRequest] = []
        self.completed_cloud: List[CloudRequest] = []
        # edge devices still sit on the building's low-power fabric: the
        # radio first hop is paid before the WAN (same access network as DF3)
        self._radio: Dict[str, LowPowerLink] = {}
        rooms = [RoomConfig(name=f"room-{i}") for i in range(n_rooms)]
        self.building = Building(rooms, self.weather, t_init_c=18.0)
        self._heater_on = np.zeros(n_rooms, dtype=bool)
        self.engine.add_process("cloud-only-tick", thermal_tick_s, self._tick)

    # ------------------------------------------------------------------ #
    def _tick(self, now: float, dt: float) -> None:
        temps = self.building.temperatures
        # bang-bang thermostat with 0.5 °C hysteresis
        self._heater_on = np.where(
            temps < self.setpoint_c - 0.5, True,
            np.where(temps > self.setpoint_c + 0.5, False, self._heater_on),
        )
        for room, on in zip(self.building.rooms, self._heater_on):
            room.aux_heat_w = self.heater_w if on else 0.0
        self.heater_energy_j += float(np.sum(self._heater_on)) * self.heater_w * dt
        self.building.step(now, dt)
        self.comfort.add(dt, self.building.temperatures, self.setpoint_c,
                         month=self.cal.month(now))
        self.datacenter.account_heat(dt)

    # ------------------------------------------------------------------ #
    def _remote_execute(self, req, sink: List) -> None:
        uplink = self.wan.delay(req.input_bytes)
        req.network_delay_s += uplink

        def arrive() -> None:
            def done(task: Task, now: float) -> None:
                ret = self.wan.delay(req.output_bytes)
                req.network_delay_s += ret
                self.engine.schedule(ret, lambda: req.mark_completed(self.engine.now))
                sink.append(req)

            req.status = RequestStatus.RUNNING
            req.started_at = self.engine.now
            req.executed_on = "dc"
            self.datacenter.submit(
                Task(req.request_id, req.cycles, req.cores, on_complete=done,
                     metadata={"request": req})
            )

        self.engine.schedule(uplink, arrive)

    def submit_edge(self, req: EdgeRequest) -> None:
        """Edge requests have nowhere local to run: radio hop, then the WAN."""
        link = self._radio.setdefault(req.source or "?", LowPowerLink(ZIGBEE))
        radio = link.delivery_delay(self.engine.now, int(req.input_bytes))
        req.network_delay_s += radio
        self.engine.schedule(radio, lambda: self._remote_execute(req, self.completed_edge))

    def submit_cloud(self, req: CloudRequest) -> None:
        """Cloud requests go to the datacenter as usual."""
        self._remote_execute(req, self.completed_cloud)

    def inject(self, requests) -> None:
        """Schedule request arrivals (edge/cloud only — no heating flow here)."""
        for req in requests:
            if isinstance(req, EdgeRequest):
                self.engine.schedule_at(req.time, lambda r=req: self.submit_edge(r))
            elif isinstance(req, CloudRequest):
                self.engine.schedule_at(req.time, lambda r=req: self.submit_cloud(r))
            else:
                raise TypeError(f"cloud-only baseline cannot take {type(req).__name__}")

    def run_until(self, t: float) -> None:
        """Advance the baseline world."""
        self.engine.run_until(t)

    # ------------------------------------------------------------------ #
    def edge_deadline_miss_rate(self) -> float:
        """Deadline miss rate of the remotely executed edge flow."""
        done = [r for r in self.completed_edge if r.status is RequestStatus.COMPLETED]
        if not done:
            return 0.0
        return sum(1 for r in done if not r.deadline_met()) / len(done)

    def total_energy_j(self) -> float:
        """Datacenter (incl. cooling) + resistive heating energy."""
        for n in self.datacenter.nodes:
            n.sync()
        return sum(n.energy_j for n in self.datacenter.nodes) + self.heater_energy_j
