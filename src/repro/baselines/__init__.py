"""Baseline architectures the paper positions DF3 against (§I, §V).

* :class:`~repro.baselines.cloud_only.CloudOnlyBaseline` — the status quo:
  every computation rides the WAN to a remote air-cooled datacenter, homes are
  heated by plain resistive heaters;
* :class:`~repro.baselines.micro_dc.MicroDatacenterBaseline` — Schneider-style
  micro-datacenters distributed in the city (§V): edge latency is local, but
  the heat is rejected outdoors and homes still burn resistive heat;
* :class:`~repro.baselines.desktop_grid.DesktopGridBaseline` — desktop-grid /
  volunteer computing (§I, refs [3–5]): opportunistic execution on personal
  computers in idle periods, with the owner-discomfort problem the paper
  calls out ("unexpected heat, noises ...").

All three accept the same request streams as :class:`repro.core.middleware.
DF3Middleware` and reduce to the same metric surface, so experiment E9 is an
apples-to-apples table.
"""

from repro.baselines.cloud_only import CloudOnlyBaseline
from repro.baselines.desktop_grid import DesktopGridBaseline
from repro.baselines.micro_dc import MicroDatacenterBaseline

__all__ = ["CloudOnlyBaseline", "DesktopGridBaseline", "MicroDatacenterBaseline"]
