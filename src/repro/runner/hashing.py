"""Stable content hashing for sweep specs and the code-version fingerprint.

Cache keys must survive process restarts, so they cannot lean on ``hash()``
(salted per process) or ``pickle`` (protocol details drift).  Instead every
spec is rendered to a *canonical form*: a type-tagged, recursively sorted
text encoding in which equal values encode equally and values of different
types (``1`` vs ``1.0`` vs ``True`` vs ``"1"``) never collide.  The SHA-256
of that encoding is the key.

``code_version()`` fingerprints the ``repro`` package sources themselves, so
editing *any* simulator code invalidates every cached result.  That is
deliberately coarse: a stale cache silently reporting pre-change numbers is
far worse than recomputing a sweep after an unrelated edit.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from pathlib import Path
from typing import Any, Optional

__all__ = ["canonical", "stable_hash", "code_version", "kernel_cache_tag"]


def canonical(obj: Any) -> str:
    """Deterministic, type-tagged text encoding of ``obj``.

    Supported: None, bool, int, float, str, bytes, enums, tuples/lists,
    sets/frozensets (sorted by encoding), dicts (sorted by key encoding),
    dataclass instances (tagged with their qualified class name) and numpy
    scalars/arrays.  Anything else falls back to ``repr`` — fine for value
    objects with a faithful repr, and the property tests pin the rest.
    """
    if obj is None:
        return "N"
    if isinstance(obj, bool):  # before int: True would encode as i:1
        return f"b:{int(obj)}"
    if isinstance(obj, int):
        return f"i:{obj}"
    if isinstance(obj, float):
        # repr is exact for floats (round-trips the IEEE value); nan/inf fine
        return f"f:{obj!r}"
    if isinstance(obj, str):
        return f"s:{len(obj)}:{obj}"
    if isinstance(obj, bytes):
        return f"y:{obj.hex()}"
    if isinstance(obj, enum.Enum):
        return f"e:{type(obj).__qualname__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"D:{type(obj).__module__}.{type(obj).__qualname__}({fields})"
    if isinstance(obj, (tuple, list)):
        return f"l:[{','.join(canonical(v) for v in obj)}]"
    if isinstance(obj, (set, frozenset)):
        return f"S:{{{','.join(sorted(canonical(v) for v in obj))}}}"
    if isinstance(obj, dict):
        items = sorted((canonical(k), canonical(v)) for k, v in obj.items())
        return f"d:{{{','.join(f'{k}->{v}' for k, v in items)}}}"
    # numpy without importing numpy at module scope (keep this module light)
    cls = type(obj)
    if cls.__module__ == "numpy":
        try:
            return f"np:{canonical(obj.tolist())}"
        except AttributeError:
            pass
    return f"r:{type(obj).__qualname__}:{obj!r}"


def stable_hash(obj: Any) -> str:
    """Hex SHA-256 of :func:`canonical`, stable across processes and runs."""
    return hashlib.sha256(canonical(obj).encode("utf-8")).hexdigest()


def kernel_cache_tag() -> str:
    """Cache namespace of the active simulation kernel.

    The scalar and vector kernels are byte-identical by contract, so their
    results may share cache entries — the tag is empty.  The surrogate tier
    is tolerance-budgeted, not identical: its results must never be served
    from (or poison) the exact kernels' cache, so it gets its own namespace.
    Read from the environment, like the kernel resolution itself, so sweep
    worker processes agree with the parent.
    """
    import os

    return "surrogate" if os.environ.get("REPRO_KERNEL") == "surrogate" else ""


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Fingerprint of every ``repro`` source file (cached per process).

    Hashes the sorted (relative path, contents) sequence of all ``*.py``
    files under the installed ``repro`` package, so any code edit — in the
    runner, an experiment, or the simulator core — yields a new version and
    therefore fresh cache keys.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION
