"""Graph execution backends: inline, and chunked work-stealing processes.

Both backends execute a *pending subset* of a :class:`~repro.runner.graph.TaskGraph`
given the values already known (cache hits), calling back into the runner as
each node completes so per-node cache writes happen immediately.  They share
one determinism contract: node **values** are a pure function of the graph,
so execution order, worker assignment, chunking, retries — none of it can
leak into results, and observability merge-back always happens in graph
order, never completion order.

* :class:`InlineBackend` — runs pending nodes in deterministic topological
  order in this process under the ambient observability bundle.  With the
  flat runner's ``jobs=1`` path this *is* the reference serial execution.
* :class:`ProcessBackend` — the multicore path.  The parent keeps the DAG's
  ready frontier flowing into one **shared task queue**; idle workers steal
  the next chunk regardless of which worker computed its upstreams (there is
  no static partition to go idle on).  Chunks amortize IPC; every chunk is
  ``claim``-acknowledged by its thief before execution so the parent knows
  exactly which nodes die with a worker.  Workers stamp a shared heartbeat
  array from a daemon thread; the parent combines ``Process.is_alive()``
  with heartbeat staleness to detect crashed or frozen workers, re-enqueues
  their claimed-but-unfinished nodes (each node is retried at most
  ``retry_limit`` times — default exactly once), and respawns replacement
  workers within a death budget.  Because cells are pure, an occasional
  double execution (watchdog re-enqueue racing a slow worker) is harmless:
  the first ``done`` message wins, duplicates are dropped.

A cell that *raises* is never retried: the run is deterministic, the same
exception would recur on any worker, so the parent aborts with
:class:`NodeExecutionError` carrying the worker's traceback.
"""

from __future__ import annotations

import itertools
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as obs_mod
from repro.runner.graph import TaskGraph
from repro.runner.worker import dag_worker_main

__all__ = [
    "BackendStats",
    "InlineBackend",
    "NodeExecutionError",
    "ProcessBackend",
    "WorkerCrashError",
]


class NodeExecutionError(RuntimeError):
    """A node's cell raised inside a worker (deterministic — not retried)."""

    def __init__(self, node_id: str, message: str, worker_traceback: str = ""):
        self.node_id = node_id
        self.worker_traceback = worker_traceback
        super().__init__(f"node {node_id!r} failed: {message}\n{worker_traceback}")


class WorkerCrashError(RuntimeError):
    """A node exhausted its retry budget across worker crashes."""

    def __init__(self, node_id: str, attempts: int):
        self.node_id = node_id
        self.attempts = attempts
        super().__init__(
            f"node {node_id!r} lost to {attempts} worker crash(es) — "
            "retry budget exhausted"
        )


@dataclass
class BackendStats:
    """What one graph execution did, for reports, benchmarks and tests."""

    executed: int = 0                 # first completions (cache misses run)
    chunks_dispatched: int = 0
    worker_deaths: int = 0
    retried_nodes: int = 0            # re-enqueues after worker deaths
    respawned_workers: int = 0
    duplicate_results: int = 0        # late results discarded (idempotent)
    nodes_per_worker: Dict[int, int] = field(default_factory=dict)
    last_heartbeat: Dict[int, float] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
class InlineBackend:
    """Execute pending nodes inline, in deterministic topological order."""

    def __init__(self, obs: Optional[obs_mod.Observability] = None):
        self.obs = obs

    def execute(
        self,
        graph: TaskGraph,
        pending: Sequence[str],
        values: Dict[str, Any],
        on_complete: Callable[[str, Any], None],
    ) -> BackendStats:
        stats = BackendStats()
        ambient = self.obs if self.obs is not None else obs_mod.get_obs()
        tracing = ambient.tracer.enabled
        pending_set = set(pending)
        for nid in graph.order():
            if nid not in pending_set:
                continue
            if tracing:
                # same id hygiene as the workers: traced ids are a pure
                # function of the node, not of prior nodes' request counts
                from repro.core.requests import reset_ids
                reset_ids()
            value = graph[nid].execute(values)
            values[nid] = value
            on_complete(nid, value)
            stats.executed += 1
        return stats


# --------------------------------------------------------------------------- #
class ProcessBackend:
    """Chunked work-stealing execution over a pool of worker processes."""

    def __init__(
        self,
        jobs: int,
        obs: Optional[obs_mod.Observability] = None,
        chunk_size: Optional[int] = None,
        heartbeat_interval_s: float = 0.2,
        hang_timeout_s: Optional[float] = None,
        stall_timeout_s: float = 30.0,
        retry_limit: int = 1,
        poll_s: float = 0.05,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {retry_limit}")
        self.jobs = jobs
        self.obs = obs
        self.chunk_size = chunk_size
        self.heartbeat_interval_s = heartbeat_interval_s
        self.hang_timeout_s = hang_timeout_s
        self.stall_timeout_s = stall_timeout_s
        self.retry_limit = retry_limit
        self.poll_s = poll_s

    # ------------------------------------------------------------------ #
    def _chunk(self, ready: List[str]) -> List[List[str]]:
        """Split the ready frontier into steal-sized chunks.

        Auto-sizing aims at ~4 chunks per worker wave: big enough to
        amortize pickling, small enough that a fast worker can steal work a
        slow one would otherwise sit on.
        """
        if not ready:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, min(8, (len(ready) + 4 * self.jobs - 1)
                              // (4 * self.jobs)))
        return [ready[i:i + size] for i in range(0, len(ready), size)]

    def execute(
        self,
        graph: TaskGraph,
        pending: Sequence[str],
        values: Dict[str, Any],
        on_complete: Callable[[str, Any], None],
    ) -> BackendStats:
        import multiprocessing as mp

        bundle = self.obs if self.obs is not None else obs_mod.get_obs()
        want_metrics = bundle.metrics_enabled
        want_profile = bundle.profiler is not None
        want_trace = bundle.tracer.enabled
        trace_kinds = getattr(bundle.tracer, "kinds", None)

        stats = BackendStats()
        pending_set = set(pending)
        pending_order = [nid for nid in graph.order() if nid in pending_set]
        done: set = set()
        dispatched: set = set()
        retries: Dict[str, int] = {}
        chunk_nodes: Dict[int, List[str]] = {}
        chunk_claims: Dict[int, int] = {}          # chunk id → worker id
        merge_back: Dict[str, Tuple[Optional[obs_mod.MetricsRegistry],
                                    Optional[obs_mod.Profiler],
                                    Optional[list]]] = {}
        chunk_ids = itertools.count()
        respawn_budget = self.jobs
        watchdog_rounds = 3

        ctx = mp.get_context()
        task_q: Any = ctx.Queue()
        result_q: Any = ctx.Queue()
        heartbeats = ctx.Array("d", [time.time()] * (self.jobs * 2))
        workers: Dict[int, Any] = {}
        dead: set = set()

        def _spawn(slot: int) -> None:
            proc = ctx.Process(
                target=dag_worker_main,
                args=(slot, task_q, result_q, heartbeats,
                      self.heartbeat_interval_s, want_metrics, want_profile,
                      want_trace, trace_kinds),
                name=f"dag-worker-{slot}",
                daemon=True,
            )
            proc.start()
            workers[slot] = proc

        def _dispatch() -> None:
            ready = [nid for nid in pending_order
                     if nid not in done and nid not in dispatched
                     and all(up in values for up in graph[nid].upstream_ids)]
            for chunk in self._chunk(ready):
                cid = next(chunk_ids)
                chunk_nodes[cid] = list(chunk)
                task_q.put(("run", cid, [
                    (graph[nid],
                     {up: values[up] for up in graph[nid].upstream_ids})
                    for nid in chunk
                ]))
                dispatched.update(chunk)
                stats.chunks_dispatched += 1

        def _reenqueue(lost: List[str], count_retry: bool) -> None:
            for nid in lost:
                if count_retry:
                    retries[nid] = retries.get(nid, 0) + 1
                    stats.retried_nodes += 1
                    if retries[nid] > self.retry_limit:
                        raise WorkerCrashError(nid, retries[nid])
                dispatched.discard(nid)

        def _lost_nodes(slot: int) -> List[str]:
            lost: List[str] = []
            for cid, wid in chunk_claims.items():
                if wid != slot:
                    continue
                lost.extend(nid for nid in chunk_nodes[cid]
                            if nid not in done and nid not in lost)
            return lost

        def _check_workers() -> None:
            now = time.time()
            deaths_before = stats.worker_deaths
            for slot, proc in list(workers.items()):
                if slot in dead:
                    continue
                hung = (self.hang_timeout_s is not None
                        and now - heartbeats[slot] > self.hang_timeout_s)
                if proc.is_alive() and not hung:
                    continue
                if proc.is_alive():  # frozen: reclaim its work forcibly
                    proc.terminate()
                    proc.join(timeout=2.0)
                dead.add(slot)
                stats.worker_deaths += 1
                _reenqueue(_lost_nodes(slot), count_retry=True)
                if (respawn_budget - stats.respawned_workers > 0
                        and len(done) < len(pending_order)):
                    new_slot = max(workers) + 1
                    if new_slot < len(heartbeats):
                        heartbeats[new_slot] = time.time()
                        _spawn(new_slot)
                        stats.respawned_workers += 1
            if all(slot in dead for slot in workers) \
                    and len(done) < len(pending_order):
                raise WorkerCrashError("<all workers dead>",
                                       stats.worker_deaths)
            if stats.worker_deaths > deaths_before:
                _dispatch()  # reclaimed nodes go back out immediately

        try:
            for slot in range(self.jobs):
                _spawn(slot)
            _dispatch()
            last_progress = time.time()
            deaths_at_last_progress = 0
            while len(done) < len(pending_order):
                try:
                    msg = result_q.get(timeout=self.poll_s)
                except queue_mod.Empty:
                    _check_workers()
                    stalled = time.time() - last_progress > self.stall_timeout_s
                    if stalled and stats.worker_deaths > deaths_at_last_progress:
                        # a death raced the claim ack: its chunk may be gone
                        # from the queue without ever being claimed.  Cells
                        # are pure, so conservatively re-enqueue everything
                        # unfinished that no live worker has claimed.
                        if watchdog_rounds == 0:
                            raise WorkerCrashError("<stalled>",
                                                   stats.worker_deaths)
                        watchdog_rounds -= 1
                        live_claims = {nid for cid, wid in chunk_claims.items()
                                       if wid in workers and wid not in dead
                                       for nid in chunk_nodes[cid]}
                        _reenqueue([nid for nid in pending_order
                                    if nid not in done
                                    and nid not in live_claims],
                                   count_retry=False)
                        last_progress = time.time()
                        _dispatch()
                    continue
                kind = msg[0]
                if kind == "claim":
                    _, wid, cid, _members = msg
                    chunk_claims[cid] = wid
                    last_progress = time.time()
                elif kind == "start":
                    _, wid, _nid = msg
                    stats.last_heartbeat[wid] = time.time()
                    last_progress = time.time()
                elif kind == "done":
                    _, wid, nid, value, registry, profiler, records = msg
                    if nid in done:
                        stats.duplicate_results += 1
                        continue
                    done.add(nid)
                    values[nid] = value
                    merge_back[nid] = (registry, profiler, records)
                    on_complete(nid, value)
                    stats.executed += 1
                    stats.nodes_per_worker[wid] = \
                        stats.nodes_per_worker.get(wid, 0) + 1
                    last_progress = time.time()
                    deaths_at_last_progress = stats.worker_deaths
                    _dispatch()
                elif kind == "error":
                    _, wid, nid, message, tb = msg
                    raise NodeExecutionError(nid, message, tb)
                # "bye" and unknown kinds: ignore
        finally:
            for slot, proc in workers.items():
                if proc.is_alive():
                    task_q.put(("stop",))
            deadline = time.time() + 2.0
            for proc in workers.values():
                proc.join(timeout=max(0.0, deadline - time.time()))
            for proc in workers.values():
                if proc.is_alive():
                    proc.terminate()
            task_q.close()
            result_q.close()

        for slot in workers:
            stats.last_heartbeat.setdefault(slot, heartbeats[slot])
            stats.last_heartbeat[slot] = max(stats.last_heartbeat[slot],
                                             heartbeats[slot])

        # deterministic merge-back: graph order, never completion order
        for nid in pending_order:
            registry, profiler, records = merge_back.get(nid, (None, None, None))
            if registry is not None:
                bundle.registry.merge(registry)
            if profiler is not None and bundle.profiler is not None:
                bundle.profiler.merge(profiler)
            if records:
                bundle.tracer.absorb(records)
        return stats
