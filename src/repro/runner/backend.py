"""Graph execution backends: inline, and chunked work-stealing processes.

Both backends execute a *pending subset* of a :class:`~repro.runner.graph.TaskGraph`
given the values already known (cache hits), calling back into the runner as
each node completes so per-node cache writes happen immediately.  They share
one determinism contract: node **values** are a pure function of the graph,
so execution order, worker assignment, chunking, retries — none of it can
leak into results, and observability merge-back always happens in graph
order, never completion order.

* :class:`InlineBackend` — runs pending nodes in deterministic topological
  order in this process under the ambient observability bundle.  With the
  flat runner's ``jobs=1`` path this *is* the reference serial execution.
* :class:`ProcessBackend` — the multicore path.  The parent keeps the DAG's
  ready frontier flowing into one **shared task queue**; idle workers steal
  the next chunk regardless of which worker computed its upstreams (there is
  no static partition to go idle on).  Chunks amortize IPC; every chunk is
  ``claim``-acknowledged by its thief before execution so the parent knows
  exactly which nodes die with a worker.  Workers stamp a shared heartbeat
  array from a daemon thread; the parent combines ``Process.is_alive()``
  with heartbeat staleness to detect crashed or frozen workers, re-enqueues
  their claimed-but-unfinished nodes (each node is retried at most
  ``retry_limit`` times — default exactly once), and respawns replacement
  workers within a death budget.  Because cells are pure, an occasional
  double execution (watchdog re-enqueue racing a slow worker) is harmless:
  the first ``done`` message wins, duplicates are dropped.

A cell that *raises* is never retried: the run is deterministic, the same
exception would recur on any worker, so the parent aborts with
:class:`NodeExecutionError` carrying the worker's traceback.
"""

from __future__ import annotations

import itertools
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as obs_mod
from repro.runner.graph import TaskGraph
from repro.runner.worker import dag_worker_main

__all__ = [
    "BackendStats",
    "InlineBackend",
    "NodeExecutionError",
    "ProcessBackend",
    "WorkerCrashError",
]


class NodeExecutionError(RuntimeError):
    """A node's cell raised inside a worker (deterministic — not retried)."""

    def __init__(self, node_id: str, message: str, worker_traceback: str = ""):
        self.node_id = node_id
        self.worker_traceback = worker_traceback
        super().__init__(f"node {node_id!r} failed: {message}\n{worker_traceback}")


class WorkerCrashError(RuntimeError):
    """A node exhausted its retry budget across worker crashes."""

    def __init__(self, node_id: str, attempts: int):
        self.node_id = node_id
        self.attempts = attempts
        super().__init__(
            f"node {node_id!r} lost to {attempts} worker crash(es) — "
            "retry budget exhausted"
        )


@dataclass
class BackendStats:
    """What one graph execution did, for reports, benchmarks and tests.

    Two kinds of fields live here, with different determinism guarantees:

    * **deterministic bookkeeping** — ``executed`` (and, at ``jobs=1``,
      everything else) is a pure function of the graph;
    * **wall-clock telemetry** — ``timeline`` rows and the queue/steal/
      heartbeat counters record *how* this particular execution went
      (worker assignment, claim/start/done wall times, staleness).  They
      feed ``--progress``, ``RunReport.to_dict()`` and the report's
      worker×node Gantt panel, and are deliberately kept **out of the
      trace**, which must stay byte-identical across jobs counts.
    """

    executed: int = 0                 # first completions (cache misses run)
    chunks_dispatched: int = 0
    chunk_steals: int = 0             # chunks claim-acked by an idle worker
    queue_depth_peak: int = 0         # max nodes dispatched-but-unfinished
    worker_deaths: int = 0
    retried_nodes: int = 0            # re-enqueues after worker deaths
    respawned_workers: int = 0
    duplicate_results: int = 0        # late results discarded (idempotent)
    heartbeat_max_staleness_s: float = 0.0   # worst observed beat lag
    nodes_per_worker: Dict[int, int] = field(default_factory=dict)
    last_heartbeat: Dict[int, float] = field(default_factory=dict)
    #: per-node lifecycle rows (graph order): node, kind, worker, attempts,
    #: enqueue_s/claim_s/start_s/done_s relative to execute() start, and the
    #: worker-measured wall_s of the winning attempt
    timeline: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (int worker ids become string keys)."""
        return {
            "executed": self.executed,
            "chunks_dispatched": self.chunks_dispatched,
            "chunk_steals": self.chunk_steals,
            "queue_depth_peak": self.queue_depth_peak,
            "worker_deaths": self.worker_deaths,
            "retried_nodes": self.retried_nodes,
            "respawned_workers": self.respawned_workers,
            "duplicate_results": self.duplicate_results,
            "heartbeat_max_staleness_s": round(
                self.heartbeat_max_staleness_s, 6),
            "nodes_per_worker": {str(k): v
                                 for k, v in self.nodes_per_worker.items()},
            "last_heartbeat": {str(k): v
                               for k, v in self.last_heartbeat.items()},
            "timeline": [dict(row) for row in self.timeline],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BackendStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            executed=int(d.get("executed", 0)),
            chunks_dispatched=int(d.get("chunks_dispatched", 0)),
            chunk_steals=int(d.get("chunk_steals", 0)),
            queue_depth_peak=int(d.get("queue_depth_peak", 0)),
            worker_deaths=int(d.get("worker_deaths", 0)),
            retried_nodes=int(d.get("retried_nodes", 0)),
            respawned_workers=int(d.get("respawned_workers", 0)),
            duplicate_results=int(d.get("duplicate_results", 0)),
            heartbeat_max_staleness_s=float(
                d.get("heartbeat_max_staleness_s", 0.0)),
            nodes_per_worker={int(k): int(v) for k, v in
                              d.get("nodes_per_worker", {}).items()},
            last_heartbeat={int(k): float(v) for k, v in
                            d.get("last_heartbeat", {}).items()},
            timeline=[dict(row) for row in d.get("timeline", [])],
        )


# --------------------------------------------------------------------------- #
# deterministic runner spans
#
# Node spans are part of the trace byte-identity contract: a traced sweep
# must produce record-for-record identical output at --jobs 1 and --jobs N.
# Both backends therefore emit the SAME records in the SAME positions — one
# ``runner.node`` record per executed node immediately before that node's own
# cell records (InlineBackend: before executing; ProcessBackend: at the
# deterministic graph-order merge-back), then one ``runner.sweep`` summary.
# Record content is a pure function of the graph (ts is the node's execution
# ordinal, never a wall time); everything wall-clock-dependent — worker ids,
# claim/start/done times, retries — lives in BackendStats instead.
# --------------------------------------------------------------------------- #
def _emit_node_span(tracer, node, seq: int) -> None:
    tracer.emit("runner", "runner.node", float(seq),
                node=node.node_id, node_kind=node.kind,
                experiment=node.experiment_id, seq=seq,
                upstreams=len(node.upstream_ids), status="computed")


def _emit_sweep_summary(tracer, graph: TaskGraph,
                        pending_order: Sequence[str]) -> None:
    prefixes = sum(1 for nid in pending_order
                   if graph[nid].kind == "prefix")
    tracer.emit("runner", "runner.sweep", float(len(pending_order)),
                executed=len(pending_order), prefixes=prefixes,
                points=len(pending_order) - prefixes, graph_nodes=len(graph))


# --------------------------------------------------------------------------- #
class InlineBackend:
    """Execute pending nodes inline, in deterministic topological order."""

    def __init__(self, obs: Optional[obs_mod.Observability] = None,
                 progress: Optional[Callable[[Dict[str, Any]], None]] = None):
        self.obs = obs
        self.progress = progress

    def execute(
        self,
        graph: TaskGraph,
        pending: Sequence[str],
        values: Dict[str, Any],
        on_complete: Callable[[str, Any], None],
    ) -> BackendStats:
        stats = BackendStats()
        ambient = self.obs if self.obs is not None else obs_mod.get_obs()
        tracing = ambient.tracer.enabled
        pending_set = set(pending)
        pending_order = [nid for nid in graph.order() if nid in pending_set]
        t0 = time.perf_counter()
        for seq, nid in enumerate(pending_order):
            node = graph[nid]
            if tracing:
                # same id hygiene as the workers: traced ids are a pure
                # function of the node, not of prior nodes' request counts
                from repro.core.requests import reset_ids
                reset_ids()
                _emit_node_span(ambient.tracer, node, seq)
            start_s = time.perf_counter() - t0
            value = node.execute(values)
            done_s = time.perf_counter() - t0
            values[nid] = value
            on_complete(nid, value)
            stats.executed += 1
            stats.nodes_per_worker[0] = stats.nodes_per_worker.get(0, 0) + 1
            stats.timeline.append({
                "node": nid, "kind": node.kind, "worker": 0, "attempts": 1,
                "enqueue_s": round(start_s, 6), "claim_s": round(start_s, 6),
                "start_s": round(start_s, 6), "done_s": round(done_s, 6),
                "wall_s": round(done_s - start_s, 6),
            })
            if self.progress is not None:
                self.progress({"done": stats.executed,
                               "total": len(pending_order),
                               "inflight": 0, "deaths": 0, "retries": 0,
                               "workers": 1})
        if tracing:
            _emit_sweep_summary(ambient.tracer, graph, pending_order)
        stats.queue_depth_peak = 1 if pending_order else 0
        return stats


# --------------------------------------------------------------------------- #
class ProcessBackend:
    """Chunked work-stealing execution over a pool of worker processes."""

    def __init__(
        self,
        jobs: int,
        obs: Optional[obs_mod.Observability] = None,
        chunk_size: Optional[int] = None,
        heartbeat_interval_s: float = 0.2,
        hang_timeout_s: Optional[float] = None,
        stall_timeout_s: float = 30.0,
        retry_limit: int = 1,
        poll_s: float = 0.05,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {retry_limit}")
        self.jobs = jobs
        self.obs = obs
        self.chunk_size = chunk_size
        self.heartbeat_interval_s = heartbeat_interval_s
        self.hang_timeout_s = hang_timeout_s
        self.stall_timeout_s = stall_timeout_s
        self.retry_limit = retry_limit
        self.poll_s = poll_s
        self.progress = progress

    # ------------------------------------------------------------------ #
    def _chunk(self, ready: List[str]) -> List[List[str]]:
        """Split the ready frontier into steal-sized chunks.

        Auto-sizing aims at ~4 chunks per worker wave: big enough to
        amortize pickling, small enough that a fast worker can steal work a
        slow one would otherwise sit on.
        """
        if not ready:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, min(8, (len(ready) + 4 * self.jobs - 1)
                              // (4 * self.jobs)))
        return [ready[i:i + size] for i in range(0, len(ready), size)]

    def execute(
        self,
        graph: TaskGraph,
        pending: Sequence[str],
        values: Dict[str, Any],
        on_complete: Callable[[str, Any], None],
    ) -> BackendStats:
        import multiprocessing as mp

        bundle = self.obs if self.obs is not None else obs_mod.get_obs()
        want_metrics = bundle.metrics_enabled
        want_profile = bundle.profiler is not None
        want_trace = bundle.tracer.enabled
        trace_kinds = getattr(bundle.tracer, "kinds", None)

        stats = BackendStats()
        pending_set = set(pending)
        pending_order = [nid for nid in graph.order() if nid in pending_set]
        done: set = set()
        dispatched: set = set()
        retries: Dict[str, int] = {}
        t0 = time.perf_counter()
        events: Dict[str, Dict[str, Any]] = {}   # node id → timeline row
        chunk_nodes: Dict[int, List[str]] = {}
        chunk_claims: Dict[int, int] = {}          # chunk id → worker id
        merge_back: Dict[str, Tuple[Optional[obs_mod.MetricsRegistry],
                                    Optional[obs_mod.Profiler],
                                    Optional[list]]] = {}
        chunk_ids = itertools.count()
        respawn_budget = self.jobs
        watchdog_rounds = 3

        ctx = mp.get_context()
        task_q: Any = ctx.Queue()
        result_q: Any = ctx.Queue()
        heartbeats = ctx.Array("d", [time.time()] * (self.jobs * 2))
        workers: Dict[int, Any] = {}
        dead: set = set()

        def _spawn(slot: int) -> None:
            proc = ctx.Process(
                target=dag_worker_main,
                args=(slot, task_q, result_q, heartbeats,
                      self.heartbeat_interval_s, want_metrics, want_profile,
                      want_trace, trace_kinds),
                name=f"dag-worker-{slot}",
                daemon=True,
            )
            proc.start()
            workers[slot] = proc

        def _rel() -> float:
            return round(time.perf_counter() - t0, 6)

        def _event(nid: str) -> Dict[str, Any]:
            return events.setdefault(nid, {
                "node": nid, "kind": graph[nid].kind, "worker": None,
                "attempts": 0,
            })

        def _report_progress() -> None:
            if self.progress is None:
                return
            self.progress({
                "done": len(done), "total": len(pending_order),
                "inflight": len(dispatched - done),
                "deaths": stats.worker_deaths,
                "retries": stats.retried_nodes,
                "workers": sum(1 for s in workers if s not in dead),
            })

        def _dispatch() -> None:
            ready = [nid for nid in pending_order
                     if nid not in done and nid not in dispatched
                     and all(up in values for up in graph[nid].upstream_ids)]
            for chunk in self._chunk(ready):
                cid = next(chunk_ids)
                chunk_nodes[cid] = list(chunk)
                task_q.put(("run", cid, [
                    (graph[nid],
                     {up: values[up] for up in graph[nid].upstream_ids})
                    for nid in chunk
                ]))
                for nid in chunk:
                    _event(nid)["enqueue_s"] = _rel()
                dispatched.update(chunk)
                stats.chunks_dispatched += 1
            stats.queue_depth_peak = max(stats.queue_depth_peak,
                                         len(dispatched - done))
            if ready:
                _report_progress()

        def _reenqueue(lost: List[str], count_retry: bool) -> None:
            for nid in lost:
                if count_retry:
                    retries[nid] = retries.get(nid, 0) + 1
                    stats.retried_nodes += 1
                    if retries[nid] > self.retry_limit:
                        raise WorkerCrashError(nid, retries[nid])
                dispatched.discard(nid)

        def _lost_nodes(slot: int) -> List[str]:
            lost: List[str] = []
            for cid, wid in chunk_claims.items():
                if wid != slot:
                    continue
                lost.extend(nid for nid in chunk_nodes[cid]
                            if nid not in done and nid not in lost)
            return lost

        def _check_workers() -> None:
            now = time.time()
            deaths_before = stats.worker_deaths
            for slot, proc in list(workers.items()):
                if slot in dead:
                    continue
                stats.heartbeat_max_staleness_s = max(
                    stats.heartbeat_max_staleness_s, now - heartbeats[slot])
                hung = (self.hang_timeout_s is not None
                        and now - heartbeats[slot] > self.hang_timeout_s)
                if proc.is_alive() and not hung:
                    continue
                if proc.is_alive():  # frozen: reclaim its work forcibly
                    proc.terminate()
                    proc.join(timeout=2.0)
                dead.add(slot)
                stats.worker_deaths += 1
                _reenqueue(_lost_nodes(slot), count_retry=True)
                if (respawn_budget - stats.respawned_workers > 0
                        and len(done) < len(pending_order)):
                    new_slot = max(workers) + 1
                    if new_slot < len(heartbeats):
                        heartbeats[new_slot] = time.time()
                        _spawn(new_slot)
                        stats.respawned_workers += 1
            if all(slot in dead for slot in workers) \
                    and len(done) < len(pending_order):
                raise WorkerCrashError("<all workers dead>",
                                       stats.worker_deaths)
            if stats.worker_deaths > deaths_before:
                _report_progress()
                _dispatch()  # reclaimed nodes go back out immediately

        try:
            for slot in range(self.jobs):
                _spawn(slot)
            _dispatch()
            last_progress = time.time()
            deaths_at_last_progress = 0
            while len(done) < len(pending_order):
                try:
                    msg = result_q.get(timeout=self.poll_s)
                except queue_mod.Empty:
                    _check_workers()
                    stalled = time.time() - last_progress > self.stall_timeout_s
                    if stalled and stats.worker_deaths > deaths_at_last_progress:
                        # a death raced the claim ack: its chunk may be gone
                        # from the queue without ever being claimed.  Cells
                        # are pure, so conservatively re-enqueue everything
                        # unfinished that no live worker has claimed.
                        if watchdog_rounds == 0:
                            raise WorkerCrashError("<stalled>",
                                                   stats.worker_deaths)
                        watchdog_rounds -= 1
                        live_claims = {nid for cid, wid in chunk_claims.items()
                                       if wid in workers and wid not in dead
                                       for nid in chunk_nodes[cid]}
                        _reenqueue([nid for nid in pending_order
                                    if nid not in done
                                    and nid not in live_claims],
                                   count_retry=False)
                        last_progress = time.time()
                        _dispatch()
                    continue
                kind = msg[0]
                if kind == "claim":
                    _, wid, cid, _members = msg
                    chunk_claims[cid] = wid
                    stats.chunk_steals += 1
                    for member in chunk_nodes.get(cid, ()):
                        ev = _event(member)
                        ev["claim_s"] = _rel()
                        ev["worker"] = wid
                    last_progress = time.time()
                elif kind == "start":
                    _, wid, nid = msg
                    ev = _event(nid)
                    ev["start_s"] = _rel()
                    ev["worker"] = wid
                    ev["attempts"] += 1
                    stats.last_heartbeat[wid] = time.time()
                    last_progress = time.time()
                elif kind == "done":
                    _, wid, nid, value, registry, profiler, records, wall_s = msg
                    if nid in done:
                        stats.duplicate_results += 1
                        continue
                    done.add(nid)
                    values[nid] = value
                    merge_back[nid] = (registry, profiler, records)
                    on_complete(nid, value)
                    stats.executed += 1
                    stats.nodes_per_worker[wid] = \
                        stats.nodes_per_worker.get(wid, 0) + 1
                    ev = _event(nid)
                    ev["done_s"] = _rel()
                    ev["worker"] = wid
                    ev["wall_s"] = round(wall_s, 6)
                    last_progress = time.time()
                    deaths_at_last_progress = stats.worker_deaths
                    _report_progress()
                    _dispatch()
                elif kind == "error":
                    _, wid, nid, message, tb = msg
                    raise NodeExecutionError(nid, message, tb)
                # "bye" and unknown kinds: ignore
        finally:
            for slot, proc in workers.items():
                if proc.is_alive():
                    task_q.put(("stop",))
            deadline = time.time() + 2.0
            for proc in workers.values():
                proc.join(timeout=max(0.0, deadline - time.time()))
            for proc in workers.values():
                if proc.is_alive():
                    proc.terminate()
            task_q.close()
            result_q.close()

        for slot in workers:
            stats.last_heartbeat.setdefault(slot, heartbeats[slot])
            stats.last_heartbeat[slot] = max(stats.last_heartbeat[slot],
                                             heartbeats[slot])
        stats.timeline = [events[nid] for nid in pending_order
                          if nid in events]

        # deterministic merge-back: graph order, never completion order.
        # Runner node spans are emitted HERE (not at wall-clock completion)
        # so the traced record sequence — span(n), cell records(n), … — is
        # byte-identical to an InlineBackend run of the same pending set.
        for seq, nid in enumerate(pending_order):
            if want_trace:
                _emit_node_span(bundle.tracer, graph[nid], seq)
            registry, profiler, records = merge_back.get(nid, (None, None, None))
            if registry is not None:
                bundle.registry.merge(registry)
            if profiler is not None and bundle.profiler is not None:
                bundle.profiler.merge(profiler)
            if records:
                bundle.tracer.absorb(records)
        if want_trace:
            _emit_sweep_summary(bundle.tracer, graph, pending_order)
        return stats
