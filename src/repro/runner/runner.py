"""`SweepRunner`: execute experiment sweeps serially, in parallel, or cached.

The execution pipeline for a sweep-shaped experiment (one exporting a
``SWEEP`` spec, see :mod:`repro.runner.spec`):

1. **decompose** — ``spec.make_points(**kwargs)`` yields the ordered point
   list; each point gets a cache key from :func:`~repro.runner.hashing.stable_hash`
   over (code version, point spec);
2. **probe** — with a cache attached, stored cell values are loaded and only
   the *pending* points go to execution;
3. **execute** — ``jobs=1`` runs pending cells inline, in points order, under
   the ambient observability bundle (byte-identical to the historical serial
   path); ``jobs>1`` fans them out over a ``ProcessPoolExecutor`` whose
   workers are initialized by :func:`~repro.runner.worker.init_worker`;
4. **reassemble** — cell values are keyed by ``point_id`` and handed to
   ``spec.reduce`` strictly in points order, so completion order can never
   leak into the result (property-tested in ``tests/test_runner_properties.py``);
5. **merge back** — per-worker metrics registries and profilers are folded
   into the parent bundle, again in points order.

Experiments without a ``SWEEP`` spec still benefit: their whole
:class:`~repro.experiments.common.ExperimentResult` is cached under
(code version, experiment id, kwargs), so a warm ``run all`` skips them too.

**Backends.**  ``backend="dag"`` (the default, overridable via the
``REPRO_BACKEND`` environment variable) routes the sweep through
:func:`~repro.runner.graph.graph_of`: shared prefix stages become upstream
nodes computed once and cached per node (:func:`~repro.runner.graph.node_key`
folds upstream digests into each key), and ``jobs>1`` executes the pending
subgraph on the work-stealing :class:`~repro.runner.backend.ProcessBackend`.
``backend="flat"`` preserves the historical point-pool pipeline above.  The
two backends are byte-identical for every jobs/cache combination — point
cells recompute their prefixes inline when no value is injected, so both
paths execute the same pure functions (locked in by
``tests/test_runner_equivalence.py`` and the golden harness).
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as obs_mod
from repro.runner.backend import BackendStats, InlineBackend, ProcessBackend
from repro.runner.cache import ResultCache
from repro.runner.graph import TaskGraph, graph_of, node_key
from repro.runner.hashing import code_version, kernel_cache_tag, stable_hash
from repro.runner.spec import SweepPoint, SweepSpec, sweep_of
from repro.runner.worker import init_worker, run_point_task

__all__ = ["BACKENDS", "RunReport", "SweepRunner", "point_key", "reassemble",
           "run_sweep"]

BACKENDS = ("flat", "dag")


def default_backend() -> str:
    """The backend used when none is specified: $REPRO_BACKEND or ``dag``."""
    backend = os.environ.get("REPRO_BACKEND", "dag")
    if backend not in BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {BACKENDS}, got {backend!r}")
    return backend


def point_key(point: SweepPoint) -> str:
    """Cache key of one sweep point (content-addressed, code-versioned).

    Kernel-namespaced: surrogate-tier results never share entries with the
    byte-identical exact kernels (see :func:`kernel_cache_tag`).
    """
    return stable_hash(("point", code_version(), kernel_cache_tag(), point))


def result_key(experiment_id: str, kwargs: Dict[str, Any]) -> str:
    """Cache key of a whole-experiment result (the non-sweep fallback)."""
    return stable_hash(("result", code_version(), kernel_cache_tag(),
                        experiment_id, tuple(sorted(kwargs.items()))))


def reassemble(
    points: Sequence[SweepPoint],
    outcomes: Dict[str, Any],
) -> Dict[str, Any]:
    """Cell values keyed by ``point_id`` **in points order**.

    ``outcomes`` may have been populated in any completion order; the
    returned dict's iteration order is the points order, which is what makes
    ``reduce`` deterministic under parallel execution.
    """
    missing = [p.point_id for p in points if p.point_id not in outcomes]
    if missing:
        raise KeyError(f"missing outcomes for points: {missing}")
    return {p.point_id: outcomes[p.point_id] for p in points}


@dataclass
class RunReport:
    """What one experiment run did: the result plus cache/execution counts.

    ``points``/``computed``/``cached`` count **sweep points** under every
    backend, so reports stay comparable across ``flat`` and ``dag``.  The
    node-level fields are only populated by the DAG backend: ``nodes`` is the
    full graph size (points + prefixes), ``computed_nodes`` the nodes
    actually executed, ``cached_nodes`` the nodes served from the per-node
    cache — which is how tests assert a shared prefix ran *exactly once*.

    ``to_dict``/``from_dict`` round-trip everything except the in-memory
    ``result`` object itself, which is represented by ``result_digest``
    (sha256 over the rendered ``result.text`` when present) so two runs can
    be compared for outcome identity from their JSON reports alone.
    """

    result: Any
    points: int = 0        # sweep points in the decomposition (0 = non-sweep)
    computed: int = 0      # points (or whole results) actually executed
    cached: int = 0        # points (or whole results) served from the cache
    nodes: int = 0           # DAG only: total graph nodes (points + prefixes)
    computed_nodes: int = 0  # DAG only: nodes executed (incl. prefixes)
    cached_nodes: int = 0    # DAG only: nodes served from the cache
    backend_stats: Optional[BackendStats] = None
    experiment: str = ""   # experiment id (sweeps; CLI fills for non-sweeps)
    backend: str = ""      # "flat" | "dag" ("" for direct construction)
    jobs: int = 0          # worker processes the runner was configured with
    wall_s: float = 0.0    # end-to-end run wall time (decompose → reduce)
    result_digest: str = ""  # sha256 of the rendered result text

    def __post_init__(self) -> None:
        if not self.result_digest and self.result is not None:
            text = getattr(self.result, "text", None)
            payload = text if isinstance(text, str) else repr(self.result)
            self.result_digest = hashlib.sha256(
                payload.encode("utf-8")).hexdigest()

    @property
    def fully_cached(self) -> bool:
        """True when nothing had to be executed."""
        return self.computed == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view of the run (everything but the result object)."""
        return {
            "experiment": self.experiment,
            "backend": self.backend,
            "jobs": self.jobs,
            "points": self.points,
            "computed": self.computed,
            "cached": self.cached,
            "nodes": self.nodes,
            "computed_nodes": self.computed_nodes,
            "cached_nodes": self.cached_nodes,
            "fully_cached": self.fully_cached,
            "wall_s": round(self.wall_s, 6),
            "result_digest": self.result_digest,
            "backend_stats": (self.backend_stats.to_dict()
                              if self.backend_stats is not None else None),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output (``result`` is lost)."""
        stats = payload.get("backend_stats")
        return cls(
            result=None,
            points=int(payload.get("points", 0)),
            computed=int(payload.get("computed", 0)),
            cached=int(payload.get("cached", 0)),
            nodes=int(payload.get("nodes", 0)),
            computed_nodes=int(payload.get("computed_nodes", 0)),
            cached_nodes=int(payload.get("cached_nodes", 0)),
            backend_stats=(BackendStats.from_dict(stats)
                           if stats is not None else None),
            experiment=str(payload.get("experiment", "")),
            backend=str(payload.get("backend", "")),
            jobs=int(payload.get("jobs", 0)),
            wall_s=float(payload.get("wall_s", 0.0)),
            result_digest=str(payload.get("result_digest", "")),
        )


@dataclass
class SweepRunner:
    """Sweep executor: ``jobs`` worker processes + optional result cache.

    ``jobs=1`` (the default) never creates a pool: pending cells run inline
    in points order in this process, so an uncached ``jobs=1`` run is
    *the* reference serial execution.  ``obs`` overrides the bundle that
    receives worker merge-back (defaults to the process-wide current one at
    call time).  ``progress`` is an optional callback receiving small dicts
    as the run advances — a ``{"phase": "plan", ...}`` event after cache
    probing, then per-completion execution events from the backend
    (``done``/``total``/``inflight``/``deaths``/``retries``/``workers``);
    it is display-only telemetry and never influences execution.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    obs: Optional[obs_mod.Observability] = None
    backend: Optional[str] = None   # None → $REPRO_BACKEND or "dag"
    progress: Optional[Callable[[Dict[str, Any]], None]] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.backend is None:
            self.backend = default_backend()
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")

    # ------------------------------------------------------------------ #
    def _emit_progress(self, event: Dict[str, Any]) -> None:
        if self.progress is not None:
            self.progress(event)

    def _finish(self, report: RunReport, experiment: str,
                t0: float) -> RunReport:
        """Stamp provenance fields shared by every execution path."""
        report.experiment = experiment
        report.backend = self.backend or ""
        report.jobs = self.jobs
        report.wall_s = time.perf_counter() - t0
        return report

    def run_experiment(self, fn: Callable[..., Any], **kwargs: Any) -> RunReport:
        """Run ``fn`` (an experiment ``run`` callable) through the runner.

        Sweep-shaped experiments are decomposed per point; everything else
        falls back to whole-result execution + caching.
        """
        spec = sweep_of(fn)
        if spec is not None:
            return self.run_spec(spec, **kwargs)
        t0 = time.perf_counter()
        if self.cache is None:
            return self._finish(RunReport(result=fn(**kwargs), computed=1),
                                "", t0)
        key = result_key(f"{fn.__module__}:{fn.__qualname__}", kwargs)
        hit, value = self.cache.get(key)
        if hit:
            return self._finish(RunReport(result=value, cached=1), "", t0)
        value = fn(**kwargs)
        self.cache.put(key, value)
        return self._finish(RunReport(result=value, computed=1), "", t0)

    def run_spec(self, spec: SweepSpec, **kwargs: Any) -> RunReport:
        """Decompose → probe cache → execute pending → reduce in order."""
        if self.backend == "dag":
            return self._run_spec_dag(spec, **kwargs)
        t0 = time.perf_counter()
        points = spec.make_points(**kwargs)
        outcomes: Dict[str, Any] = {}
        pending: List[Tuple[SweepPoint, Optional[str]]] = []
        for p in points:
            key = point_key(p) if self.cache is not None else None
            if key is not None:
                hit, value = self.cache.get(key)
                if hit:
                    outcomes[p.point_id] = value
                    continue
            pending.append((p, key))

        self._emit_progress({
            "phase": "plan", "experiment": spec.experiment_id,
            "points": len(points), "cached": len(points) - len(pending),
            "pending": len(pending),
        })
        if pending:
            self._execute(pending, outcomes)
        cells = reassemble(points, outcomes)
        return self._finish(RunReport(
            result=spec.reduce(cells, **kwargs),
            points=len(points),
            computed=len(pending),
            cached=len(points) - len(pending),
        ), spec.experiment_id, t0)

    def _run_spec_dag(self, spec: SweepSpec, **kwargs: Any) -> RunReport:
        """Graph build → probe per-node cache → execute subgraph → reduce.

        Cache probing is **points-first**: only the ancestors of cache-missed
        points are needed, so a fully warm run executes nothing (prefixes
        included) and a partially warm run computes each needed prefix at
        most once.  ``on_complete`` persists every node's value the moment
        it lands, so a crash mid-sweep still leaves finished nodes cached.
        """
        t0 = time.perf_counter()
        graph = graph_of(spec, **kwargs)
        memo: Dict[str, str] = {}
        keys: Dict[str, Optional[str]] = {}
        values: Dict[str, Any] = {}
        outcomes: Dict[str, Any] = {}
        point_nodes = graph.points()

        def probe(node_id: str) -> bool:
            """Key the node, try the cache; True (and record value) on hit."""
            key = node_key(graph, node_id, memo) if self.cache is not None \
                else None
            keys[node_id] = key
            if key is not None:
                hit, value = self.cache.get(key)
                if hit:
                    values[node_id] = value
                    return True
            return False

        pending_points: List[str] = []
        for node in point_nodes:
            if probe(node.node_id):
                outcomes[node.node_id] = values[node.node_id]
            else:
                pending_points.append(node.node_id)

        pending: List[str] = []
        cached_nodes = len(point_nodes) - len(pending_points)
        if pending_points:
            needed_upstream = graph.ancestors(pending_points)
            for nid in graph.node_ids:     # deterministic declaration order
                if nid in needed_upstream:
                    if probe(nid):
                        cached_nodes += 1
                    else:
                        pending.append(nid)
            pending.extend(pending_points)

        self._emit_progress({
            "phase": "plan", "experiment": spec.experiment_id,
            "points": len(point_nodes),
            "cached": len(point_nodes) - len(pending_points),
            "pending": len(pending), "graph_nodes": len(graph),
        })
        stats: Optional[BackendStats] = None
        if pending:
            def on_complete(nid: str, value: Any) -> None:
                key = keys.get(nid)
                if key is not None and self.cache is not None:
                    self.cache.put(key, value)
                if graph[nid].kind == "point":
                    outcomes[nid] = value

            if self.jobs == 1:
                engine: Any = InlineBackend(obs=self.obs,
                                            progress=self.progress)
            else:
                engine = ProcessBackend(self.jobs, obs=self.obs,
                                        progress=self.progress)
            stats = engine.execute(graph, pending, values, on_complete)

        missing = [n.node_id for n in point_nodes if n.node_id not in outcomes]
        if missing:
            raise KeyError(f"missing outcomes for points: {missing}")
        cells = {n.node_id: outcomes[n.node_id] for n in point_nodes}
        return self._finish(RunReport(
            result=spec.reduce(cells, **kwargs),
            points=len(point_nodes),
            computed=len(pending_points),
            cached=len(point_nodes) - len(pending_points),
            nodes=len(graph),
            computed_nodes=stats.executed if stats is not None else 0,
            cached_nodes=cached_nodes,
            backend_stats=stats,
        ), spec.experiment_id, t0)

    # ------------------------------------------------------------------ #
    def _execute(
        self,
        pending: Sequence[Tuple[SweepPoint, Optional[str]]],
        outcomes: Dict[str, Any],
    ) -> None:
        if self.jobs == 1:
            ambient = self.obs if self.obs is not None else obs_mod.get_obs()
            tracing = ambient.tracer.enabled
            for done, (point, key) in enumerate(pending, start=1):
                if tracing:
                    # same id hygiene as run_point_task: traced ids must be a
                    # pure function of the point, not of prior points' counts
                    from repro.core.requests import reset_ids
                    reset_ids()
                value = point.execute()
                outcomes[point.point_id] = value
                if key is not None and self.cache is not None:
                    self.cache.put(key, value)
                self._emit_progress({
                    "done": done, "total": len(pending), "inflight": 0,
                    "deaths": 0, "retries": 0, "workers": 1,
                })
            return

        bundle = self.obs if self.obs is not None else obs_mod.get_obs()
        want_metrics = bundle.metrics_enabled
        want_profile = bundle.profiler is not None
        want_trace = bundle.tracer.enabled
        trace_kinds = getattr(bundle.tracer, "kinds", None)
        merge_back: Dict[str, Tuple[Optional[obs_mod.MetricsRegistry],
                                    Optional[obs_mod.Profiler],
                                    Optional[List[obs_mod.TraceRecord]]]] = {}
        with ProcessPoolExecutor(max_workers=self.jobs,
                                 initializer=init_worker) as pool:
            futures = {
                pool.submit(run_point_task, point, want_metrics, want_profile,
                            want_trace, trace_kinds):
                (point, key)
                for point, key in pending
            }
            # gather in submission order (workers still run concurrently);
            # reduce-order determinism is enforced again by reassemble()
            for done, (future, (point, key)) in enumerate(futures.items(),
                                                          start=1):
                point_id, value, registry, profiler, records = future.result()
                outcomes[point_id] = value
                merge_back[point_id] = (registry, profiler, records)
                if key is not None and self.cache is not None:
                    self.cache.put(key, value)
                self._emit_progress({
                    "done": done, "total": len(pending),
                    "inflight": len(pending) - done, "deaths": 0,
                    "retries": 0, "workers": self.jobs,
                })

        for point, _ in pending:  # merge in points order, not completion order
            registry, profiler, records = merge_back.get(
                point.point_id, (None, None, None))
            if registry is not None:
                bundle.registry.merge(registry)
            if profiler is not None and bundle.profiler is not None:
                bundle.profiler.merge(profiler)
            if records:
                bundle.tracer.absorb(records)


def run_sweep(spec: SweepSpec, jobs: int = 1,
              cache: Optional[ResultCache] = None,
              backend: Optional[str] = None, **kwargs: Any) -> Any:
    """Run one sweep spec and return its ``ExperimentResult``.

    ``run_sweep(SWEEP, **kwargs)`` with the defaults is the drop-in body for
    an experiment module's ``run()``: serial, uncached, byte-identical to
    the pre-runner implementation (under either backend — that equivalence
    is the repo's core determinism contract).
    """
    return SweepRunner(jobs=jobs, cache=cache,
                       backend=backend).run_spec(spec, **kwargs).result
