"""Explicit worker-process initialization and the per-point worker task.

Worker processes must not depend on whatever process-global state the parent
accumulated: the process-wide observability bundle is reset to the inactive
default on startup, and each cell builds its own city from its point spec
(``repro.experiments.common`` keeps no mutable module-level singletons — a
property ``tests/test_runner_worker.py`` enforces).

When the parent's bundle collects metrics, profiles or traces, the worker
builds a *fresh* bundle with the same pillars, runs the cell under it, and
ships the registry/profiler/trace records back alongside the cell value; the
parent merges them in deterministic points order.  A parallel ``--trace``
sweep therefore yields the concatenation of per-point narratives in points
order — the same records a serial run emits, grouped by point rather than
interleaved by wall clock.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro import obs as obs_mod
from repro.runner.spec import SweepPoint

__all__ = ["init_worker", "run_point_task"]


def init_worker() -> None:
    """Initializer for every pool worker: start from a clean slate.

    Installs the inactive observability bundle (a forked worker would
    otherwise inherit whatever bundle the parent had installed, double
    counting its metrics) and pre-imports the experiment package so the
    first point does not pay the import latency under timing.
    """
    obs_mod.install(obs_mod.OBS_OFF)
    import repro.experiments.common  # noqa: F401  (warm the import cache)


def run_point_task(
    point: SweepPoint, want_metrics: bool, want_profile: bool,
    want_trace: bool = False, trace_kinds: Optional[frozenset] = None,
) -> Tuple[str, Any, Optional[obs_mod.MetricsRegistry],
           Optional[obs_mod.Profiler],
           Optional[List[obs_mod.TraceRecord]]]:
    """Execute one sweep point in a worker; returns merge-back material.

    The returned tuple is ``(point_id, cell value, registry | None,
    profiler | None, trace records | None)`` — everything picklable,
    nothing process-global.
    """
    if not (want_metrics or want_profile or want_trace):
        return point.point_id, point.execute(), None, None, None
    registry = obs_mod.MetricsRegistry() if want_metrics else None
    profiler = obs_mod.Profiler() if want_profile else None
    tracer = obs_mod.Tracer(kinds=trace_kinds) if want_trace else None
    if want_trace:
        # request ids appear in trace records; restart the process-global
        # counter so a point's ids don't depend on which worker ran it (or
        # on the count the parent had reached before forking)
        from repro.core.requests import reset_ids
        reset_ids()
    bundle = obs_mod.Observability(tracer=tracer, registry=registry,
                                   profiler=profiler)
    with obs_mod.obs_session(bundle):
        value = point.execute()
    records = tracer.records if tracer is not None else None
    return point.point_id, value, registry, profiler, records
