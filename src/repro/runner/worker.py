"""Explicit worker-process initialization and the per-point worker task.

Worker processes must not depend on whatever process-global state the parent
accumulated: the process-wide observability bundle is reset to the inactive
default on startup, and each cell builds its own city from its point spec
(``repro.experiments.common`` keeps no mutable module-level singletons — a
property ``tests/test_runner_worker.py`` enforces).

When the parent's bundle collects metrics or profiles, the worker builds a
*fresh* bundle with the same pillars, runs the cell under it, and ships the
registry/profiler back alongside the cell value; the parent merges them in
deterministic points order.  Tracing stays parent-side only: a trace is an
ordered narrative, and interleaving per-worker narratives would be noise.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro import obs as obs_mod
from repro.runner.spec import SweepPoint

__all__ = ["init_worker", "run_point_task"]


def init_worker() -> None:
    """Initializer for every pool worker: start from a clean slate.

    Installs the inactive observability bundle (a forked worker would
    otherwise inherit whatever bundle the parent had installed, double
    counting its metrics) and pre-imports the experiment package so the
    first point does not pay the import latency under timing.
    """
    obs_mod.install(obs_mod.OBS_OFF)
    import repro.experiments.common  # noqa: F401  (warm the import cache)


def run_point_task(
    point: SweepPoint, want_metrics: bool, want_profile: bool,
) -> Tuple[str, Any, Optional[obs_mod.MetricsRegistry],
           Optional[obs_mod.Profiler]]:
    """Execute one sweep point in a worker; returns merge-back material.

    The returned tuple is ``(point_id, cell value, registry | None,
    profiler | None)`` — everything picklable, nothing process-global.
    """
    if not (want_metrics or want_profile):
        return point.point_id, point.execute(), None, None
    registry = obs_mod.MetricsRegistry() if want_metrics else None
    profiler = obs_mod.Profiler() if want_profile else None
    bundle = obs_mod.Observability(registry=registry, profiler=profiler)
    with obs_mod.obs_session(bundle):
        value = point.execute()
    return point.point_id, value, registry, profiler
