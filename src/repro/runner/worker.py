"""Explicit worker-process initialization and the per-point worker task.

Worker processes must not depend on whatever process-global state the parent
accumulated: the process-wide observability bundle is reset to the inactive
default on startup, and each cell builds its own city from its point spec
(``repro.experiments.common`` keeps no mutable module-level singletons — a
property ``tests/test_runner_worker.py`` enforces).

When the parent's bundle collects metrics, profiles or traces, the worker
builds a *fresh* bundle with the same pillars, runs the cell under it, and
ships the registry/profiler/trace records back alongside the cell value; the
parent merges them in deterministic points order.  A parallel ``--trace``
sweep therefore yields the concatenation of per-point narratives in points
order — the same records a serial run emits, grouped by point rather than
interleaved by wall clock.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro import obs as obs_mod
from repro.runner.spec import SweepPoint

__all__ = ["dag_worker_main", "init_worker", "run_node_task", "run_point_task"]


def init_worker() -> None:
    """Initializer for every pool worker: start from a clean slate.

    Installs the inactive observability bundle (a forked worker would
    otherwise inherit whatever bundle the parent had installed, double
    counting its metrics) and pre-imports the experiment package so the
    first point does not pay the import latency under timing.
    """
    obs_mod.install(obs_mod.OBS_OFF)
    import repro.experiments.common  # noqa: F401  (warm the import cache)


def run_point_task(
    point: SweepPoint, want_metrics: bool, want_profile: bool,
    want_trace: bool = False, trace_kinds: Optional[frozenset] = None,
) -> Tuple[str, Any, Optional[obs_mod.MetricsRegistry],
           Optional[obs_mod.Profiler],
           Optional[List[obs_mod.TraceRecord]]]:
    """Execute one sweep point in a worker; returns merge-back material.

    The returned tuple is ``(point_id, cell value, registry | None,
    profiler | None, trace records | None)`` — everything picklable,
    nothing process-global.
    """
    if not (want_metrics or want_profile or want_trace):
        return point.point_id, point.execute(), None, None, None
    registry = obs_mod.MetricsRegistry() if want_metrics else None
    profiler = obs_mod.Profiler() if want_profile else None
    tracer = obs_mod.Tracer(kinds=trace_kinds) if want_trace else None
    if want_trace:
        # request ids appear in trace records; restart the process-global
        # counter so a point's ids don't depend on which worker ran it (or
        # on the count the parent had reached before forking)
        from repro.core.requests import reset_ids
        reset_ids()
    bundle = obs_mod.Observability(tracer=tracer, registry=registry,
                                   profiler=profiler)
    with obs_mod.obs_session(bundle):
        value = point.execute()
    records = tracer.records if tracer is not None else None
    return point.point_id, value, registry, profiler, records


# --------------------------------------------------------------------------- #
# task-DAG backend: per-node task + the work-stealing worker loop
# --------------------------------------------------------------------------- #
def run_node_task(
    node, upstream: Dict[str, Any], want_metrics: bool, want_profile: bool,
    want_trace: bool = False, trace_kinds: Optional[frozenset] = None,
) -> Tuple[str, Any, Optional[obs_mod.MetricsRegistry],
           Optional[obs_mod.Profiler],
           Optional[List[obs_mod.TraceRecord]]]:
    """Execute one :class:`~repro.runner.graph.TaskNode` with its upstream
    values injected; same observability hygiene as :func:`run_point_task`."""
    if not (want_metrics or want_profile or want_trace):
        return node.node_id, node.execute(upstream), None, None, None
    registry = obs_mod.MetricsRegistry() if want_metrics else None
    profiler = obs_mod.Profiler() if want_profile else None
    tracer = obs_mod.Tracer(kinds=trace_kinds) if want_trace else None
    if want_trace:
        # traced ids must be a pure function of the node, not of which
        # worker ran it or how many nodes that worker saw before
        from repro.core.requests import reset_ids
        reset_ids()
    bundle = obs_mod.Observability(tracer=tracer, registry=registry,
                                   profiler=profiler)
    with obs_mod.obs_session(bundle):
        value = node.execute(upstream)
    records = tracer.records if tracer is not None else None
    return node.node_id, value, registry, profiler, records


def dag_worker_main(worker_id: int, task_q, result_q, heartbeats,
                    heartbeat_interval_s: float,
                    want_metrics: bool, want_profile: bool,
                    want_trace: bool, trace_kinds: Optional[frozenset]) -> None:
    """Main loop of one DAG worker process.

    Steals chunks from the shared ``task_q`` (any idle worker takes the next
    chunk — there is no per-worker assignment), acknowledges each chunk with
    a ``claim`` message *before* executing it (so the parent knows which
    nodes die with this process), emits ``start``/``done`` per node, and
    stamps ``heartbeats[worker_id]`` from a daemon thread every
    ``heartbeat_interval_s`` so the parent can tell a frozen process from a
    slow node.  A cell that raises is reported as an ``error`` message — the
    run is deterministic, so re-running it elsewhere would fail identically
    and the parent aborts instead of retrying.
    """
    init_worker()
    stop_beat = threading.Event()

    def _beat() -> None:
        while not stop_beat.is_set():
            heartbeats[worker_id] = time.time()
            stop_beat.wait(heartbeat_interval_s)

    beat = threading.Thread(target=_beat, name=f"dag-heartbeat-{worker_id}",
                            daemon=True)
    beat.start()
    try:
        while True:
            msg = task_q.get()
            if msg[0] == "stop":
                result_q.put(("bye", worker_id))
                return
            _, chunk_id, tasks = msg
            result_q.put(("claim", worker_id, chunk_id,
                          [node.node_id for node, _ in tasks]))
            for node, upstream in tasks:
                result_q.put(("start", worker_id, node.node_id))
                wall0 = time.perf_counter()
                try:
                    node_id, value, registry, profiler, records = run_node_task(
                        node, upstream, want_metrics, want_profile,
                        want_trace, trace_kinds)
                except BaseException as exc:  # deterministic failure: report
                    result_q.put(("error", worker_id, node.node_id,
                                  f"{type(exc).__name__}: {exc}",
                                  traceback.format_exc()))
                    continue
                # the measured wall_s rides the done message into the
                # parent's BackendStats timeline (never into the trace)
                result_q.put(("done", worker_id, node_id, value,
                              registry, profiler, records,
                              time.perf_counter() - wall0))
    finally:
        stop_beat.set()
