"""Task-DAG model for sweep execution: nodes, dependencies, ready-set order.

A sweep stops being a flat point list here.  A :class:`TaskGraph` holds
:class:`TaskNode` instances — each a ``module:function`` cell plus canonical
params, exactly like :class:`~repro.runner.spec.SweepPoint` — wired by
explicit dependencies: ``needs`` maps a *kwarg name* of the cell to the node
whose value feeds it.  Shared work (city construction, workload generation,
warm-up) becomes an upstream ``prefix`` node computed **once** and fanned out
to every downstream ``point`` node, instead of being silently recomputed
inside each point.

Scheduling is topological by construction: :meth:`TaskGraph.order` is a
deterministic Kahn sort (insertion order breaks ties, so prefixes declared
first run first), :meth:`TaskGraph.ready` yields the runnable frontier for
the backends' ready queues, and a cyclic graph raises :class:`GraphCycleError`
naming the cycle members rather than hanging a worker pool.

Caching is per **node**, not per point: :func:`node_key` folds the experiment
id, the node's own spec, the transitive *digests* of its upstream nodes and
the repo-wide code version into one SHA-256 — so editing a prefix invalidates
its consumers, two sweeps sharing a prefix share its cache entry, and a
point's key no longer buries the cost of work it did not do itself.
"""

from __future__ import annotations

import heapq
import importlib
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.runner.hashing import code_version, kernel_cache_tag, stable_hash
from repro.runner.spec import SweepSpec

__all__ = [
    "GraphCycleError",
    "TaskGraph",
    "TaskNode",
    "graph_of",
    "node_key",
]


class GraphCycleError(ValueError):
    """The task graph contains a dependency cycle (named in ``members``)."""

    def __init__(self, members: List[str]):
        self.members = members
        super().__init__(f"task graph has a dependency cycle among: {members}")


@dataclass(frozen=True)
class TaskNode:
    """One schedulable unit of a sweep's dataflow.

    ``cell`` is a ``"package.module:function"`` reference (pickles by name,
    hashes stably); ``params`` are the cell's own kwargs; ``needs`` maps
    *additional* kwarg names to upstream node ids whose computed values are
    injected at execution time.  ``kind`` is ``"prefix"`` for shared upstream
    stages and ``"point"`` for sweep points whose values reach ``reduce``.
    """

    experiment_id: str
    node_id: str
    cell: str
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    needs: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)
    kind: str = "point"

    def __post_init__(self) -> None:
        if ":" not in self.cell:
            raise ValueError(f"cell must be 'module:function', got {self.cell!r}")
        if self.kind not in ("prefix", "point"):
            raise ValueError(f"kind must be 'prefix' or 'point', got {self.kind!r}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))
        object.__setattr__(self, "needs", tuple(sorted(self.needs)))
        kwargs = [k for k, _ in self.params] + [k for k, _ in self.needs]
        if len(set(kwargs)) != len(kwargs):
            raise ValueError(
                f"node {self.node_id!r}: params and needs share kwarg names"
            )

    @property
    def upstream_ids(self) -> Tuple[str, ...]:
        """Ids of the nodes this node consumes, in canonical (kwarg) order."""
        return tuple(nid for _, nid in self.needs)

    def resolve(self) -> Callable[..., Any]:
        """Import and return the cell function this node references."""
        module_name, _, func_name = self.cell.partition(":")
        return getattr(importlib.import_module(module_name), func_name)

    def execute(self, upstream: Mapping[str, Any] | None = None) -> Any:
        """Run the cell with upstream values injected by kwarg name.

        ``upstream`` maps node ids to computed values; every id in ``needs``
        must be present (a missing upstream is a scheduling bug, not a user
        error, hence the hard ``KeyError``).
        """
        kwargs = dict(self.params)
        for kwarg, nid in self.needs:
            if upstream is None or nid not in upstream:
                raise KeyError(
                    f"node {self.node_id!r} needs upstream {nid!r} which was "
                    "not supplied — scheduled before its dependency?"
                )
            kwargs[kwarg] = upstream[nid]
        return self.resolve()(**kwargs)


class TaskGraph:
    """An explicit-dependency task DAG with deterministic scheduling views.

    Nodes may be added in any order; edges are validated lazily so a graph
    under construction can reference a node declared later.  All scheduling
    entry points (:meth:`order`, :meth:`ready`) first :meth:`validate`,
    which rejects dangling edges and raises :class:`GraphCycleError` on
    cycles.
    """

    def __init__(self, nodes: Iterable[TaskNode] = ()):
        self._nodes: Dict[str, TaskNode] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, node: TaskNode) -> TaskNode:
        """Insert one node; ids are unique across prefixes and points."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        return node

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[TaskNode]:
        return iter(self._nodes.values())

    def __getitem__(self, node_id: str) -> TaskNode:
        return self._nodes[node_id]

    @property
    def node_ids(self) -> List[str]:
        """All node ids in insertion order."""
        return list(self._nodes)

    def points(self) -> List[TaskNode]:
        """The ``kind="point"`` nodes in insertion order."""
        return [n for n in self._nodes.values() if n.kind == "point"]

    def prefixes(self) -> List[TaskNode]:
        """The ``kind="prefix"`` nodes in insertion order."""
        return [n for n in self._nodes.values() if n.kind == "prefix"]

    def consumers(self, node_id: str) -> List[str]:
        """Ids of nodes that consume ``node_id``, in insertion order."""
        return [n.node_id for n in self._nodes.values()
                if node_id in n.upstream_ids]

    def ancestors(self, node_ids: Iterable[str]) -> set:
        """Transitive upstream closure of ``node_ids`` (excluding them)."""
        seen: set = set()
        stack = [nid for nid in node_ids]
        while stack:
            for up in self._nodes[stack.pop()].upstream_ids:
                if up not in seen:
                    seen.add(up)
                    stack.append(up)
        return seen

    # ------------------------------------------------------------------ #
    # validation + scheduling
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Reject dangling edges; raise :class:`GraphCycleError` on cycles."""
        for node in self._nodes.values():
            for _, nid in node.needs:
                if nid not in self._nodes:
                    raise ValueError(
                        f"node {node.node_id!r} needs unknown node {nid!r}"
                    )
        self.order(_validated=True)

    def order(self, _validated: bool = False) -> List[str]:
        """Deterministic topological order (Kahn; insertion order on ties).

        Prefix nodes declared before their consumers therefore sort before
        them, and two runs of the same graph always schedule identically —
        the property the byte-identity contract leans on.
        """
        if not _validated:
            for node in self._nodes.values():
                for _, nid in node.needs:
                    if nid not in self._nodes:
                        raise ValueError(
                            f"node {node.node_id!r} needs unknown node {nid!r}"
                        )
        indegree = {nid: len(set(n.upstream_ids))
                    for nid, n in self._nodes.items()}
        downstream: Dict[str, List[str]] = {nid: [] for nid in self._nodes}
        for nid, node in self._nodes.items():
            for up in set(node.upstream_ids):
                downstream[up].append(nid)
        # min-heap over insertion index: among ready nodes, earliest declared
        # runs first — stable, deterministic, prefixes-before-consumers
        names = list(self._nodes)
        index = {nid: i for i, nid in enumerate(names)}
        frontier = [index[nid] for nid in names if indegree[nid] == 0]
        heapq.heapify(frontier)
        ordered: List[str] = []
        while frontier:
            nid = names[heapq.heappop(frontier)]
            ordered.append(nid)
            for down in downstream[nid]:
                indegree[down] -= 1
                if indegree[down] == 0:
                    heapq.heappush(frontier, index[down])
        if len(ordered) < len(self._nodes):
            done = set(ordered)
            raise GraphCycleError([nid for nid in names if nid not in done])
        return ordered

    def ready(self, done: AbstractSet[str],
              exclude: AbstractSet[str] = frozenset()) -> List[str]:
        """Runnable frontier: every upstream done, itself neither done nor
        excluded (running/dispatched).  Insertion order, so the backends'
        shared queues fill deterministically."""
        return [
            nid for nid, node in self._nodes.items()
            if nid not in done and nid not in exclude
            and all(up in done for up in node.upstream_ids)
        ]


# --------------------------------------------------------------------------- #
# content-addressed node keys
# --------------------------------------------------------------------------- #
def node_key(graph: TaskGraph, node_id: str,
             _memo: Optional[Dict[str, str]] = None) -> str:
    """Cache key of one graph node: spec + upstream digests + code version.

    Recursively content-addressed: a node's key folds in the *keys* of its
    upstream nodes (not their values, which may not exist yet), so editing a
    prefix's cell or params re-keys every transitive consumer while leaving
    unrelated nodes' entries valid.
    """
    memo = _memo if _memo is not None else {}
    cached = memo.get(node_id)
    if cached is not None:
        return cached
    node = graph[node_id]
    upstream_digests = tuple(
        (kwarg, node_key(graph, nid, memo)) for kwarg, nid in node.needs
    )
    key = stable_hash((
        "node", code_version(), kernel_cache_tag(), node.experiment_id,
        node.kind, node.cell, node.params, upstream_digests,
    ))
    memo[node_id] = key
    return key


def graph_of(spec: SweepSpec, **kwargs: Any) -> TaskGraph:
    """Build the task graph of one sweep run: prefixes first, then points.

    Points' ``needs`` reference prefix ids declared by the spec's
    ``prefixes`` factory; a point naming an undeclared prefix fails here,
    before any process is spawned.  Specs without a prefix stage yield a
    pure fan-out graph — one independent point node per sweep point.
    """
    graph = TaskGraph()
    for prefix in spec.make_prefixes(**kwargs):
        graph.add(TaskNode(
            experiment_id=prefix.experiment_id, node_id=prefix.prefix_id,
            cell=prefix.cell, params=prefix.params, kind="prefix",
        ))
    for point in spec.make_points(**kwargs):
        graph.add(TaskNode(
            experiment_id=point.experiment_id, node_id=point.point_id,
            cell=point.cell, params=point.params, needs=point.needs,
            kind="point",
        ))
    graph.validate()
    return graph
