"""Parallel sweep execution with content-addressed result caching.

The experiment layer (``repro.experiments``) is embarrassingly parallel at
the *sweep point* level: every cell of A6's policy × MTBF grid, every month
of E3's capacity sweep, every scale point of E14 builds its own city from a
seed and never talks to its neighbours.  This subpackage exploits that:

* :class:`~repro.runner.spec.SweepPoint` / :class:`~repro.runner.spec.SweepSpec`
  — the decomposition protocol an experiment module opts into by exporting a
  ``SWEEP`` object: a *points* function (kwargs → picklable point specs), a
  per-point *cell* function (referenced by ``module:name`` so it pickles by
  reference), and a *reduce* function that reassembles the cells — always in
  points order, never in completion order — into the experiment's
  :class:`~repro.experiments.common.ExperimentResult`;
* :class:`~repro.runner.cache.ResultCache` — a content-addressed store under
  ``.repro_cache/`` keyed by :func:`~repro.runner.hashing.stable_hash` of
  (experiment id, point spec, code version), so a warm re-run only recomputes
  points whose inputs — or whose code — changed;
* :class:`~repro.runner.runner.SweepRunner` — executes pending points either
  inline (``jobs=1``, byte-identical to the historical serial runner) or over
  a ``ProcessPoolExecutor`` (``--jobs N``), merging each worker's metrics
  registry and profiler back into the parent observability bundle.

Determinism contract: for a fixed seed, ``jobs=1``, ``jobs=N`` and a warm
cache hit all yield byte-identical ``ExperimentResult.text`` (locked in by
``tests/test_runner_equivalence.py`` and the golden harness).
"""

from __future__ import annotations

from repro.runner.backend import (
    BackendStats,
    InlineBackend,
    NodeExecutionError,
    ProcessBackend,
    WorkerCrashError,
)
from repro.runner.cache import ResultCache
from repro.runner.graph import (
    GraphCycleError,
    TaskGraph,
    TaskNode,
    graph_of,
    node_key,
)
from repro.runner.hashing import code_version, kernel_cache_tag, stable_hash
from repro.runner.runner import BACKENDS, RunReport, SweepRunner, run_sweep
from repro.runner.spec import SweepPoint, SweepPrefix, SweepSpec, sweep_of
from repro.runner.worker import init_worker

__all__ = [
    "BACKENDS",
    "BackendStats",
    "GraphCycleError",
    "InlineBackend",
    "NodeExecutionError",
    "ProcessBackend",
    "ResultCache",
    "RunReport",
    "SweepPoint",
    "SweepPrefix",
    "SweepRunner",
    "SweepSpec",
    "TaskGraph",
    "TaskNode",
    "WorkerCrashError",
    "code_version",
    "graph_of",
    "init_worker",
    "kernel_cache_tag",
    "node_key",
    "run_sweep",
    "stable_hash",
    "sweep_of",
]
