"""The sweep decomposition protocol experiment modules opt into.

An experiment becomes runnable in parallel (and cacheable per point) by
exporting a module-level ``SWEEP``::

    def sweep_points(seed: int = 101) -> List[SweepPoint]: ...
    def _cell(**params) -> Any: ...          # module-level → pickles by name
    def sweep_reduce(cells: Dict[str, Any], seed: int = 101) -> ExperimentResult: ...

    SWEEP = SweepSpec("A6", points=sweep_points, reduce=sweep_reduce)

    def run(seed: int = 101) -> ExperimentResult:
        return run_sweep(SWEEP, seed=seed)    # serial, uncached — the old path

Contract:

* every point is **independent**: its cell builds its own city from the spec
  and shares no state with other points (no module-level singletons — see
  ``tests/test_runner_worker.py``);
* ``params`` values must be picklable (they cross the process boundary) and
  canonically hashable (they become cache-key material) — plain scalars,
  tuples and frozen dataclasses all qualify;
* ``reduce`` receives cells keyed by ``point_id`` **in points order** no
  matter which worker finished first, and must be a pure function of them.

**Prefix stage** (the task-DAG extension).  A spec may additionally export a
``prefixes`` factory declaring shared upstream work — workload plans, city
blueprints, warm-up — as :class:`SweepPrefix` nodes::

    def sweep_prefixes(seed: int = 101) -> List[SweepPrefix]:
        return [SweepPrefix("A6", "workload-plan",
                            "repro.experiments.a6_churn:_workload_plan",
                            params=(("seed", seed),))]

    SWEEP = SweepSpec("A6", points=sweep_points, reduce=sweep_reduce,
                      prefixes=sweep_prefixes)

A point opts into a prefix via ``needs=(("plan", "workload-plan"),)``: under
the DAG backend the prefix cell runs **once**, its value is cached per node
and injected into each consuming point's cell as the named kwarg.  The cell
must accept that kwarg with a ``None`` default and recompute the prefix
itself when unset — that is what keeps the flat backend (and the historical
serial path) byte-identical: ``cell(p, plan=None)`` computes exactly
``prefix(...)`` inline, so both backends execute the same pure functions.

Prefix cells must be **pure and globally inert**: deterministic in their
params, touching no process-global state (in particular the request-id
counter — a prefix that constructed request objects would shift every
downstream id and break byte-identity between backends).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["SweepPoint", "SweepPrefix", "SweepSpec", "sweep_of"]


@dataclass(frozen=True)
class SweepPrefix:
    """A shared upstream stage of a sweep (city construction, workload plan).

    Computed once per distinct ``params`` under the DAG backend and fanned
    out to every point that ``needs`` it; never executed by the flat backend
    (whose point cells recompute it inline).  The cell must be pure: same
    params → same value, no process-global side effects.
    """

    experiment_id: str
    prefix_id: str
    cell: str
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if ":" not in self.cell:
            raise ValueError(f"cell must be 'module:function', got {self.cell!r}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def resolve(self) -> Callable[..., Any]:
        """Import and return the prefix cell function."""
        module_name, _, func_name = self.cell.partition(":")
        return getattr(importlib.import_module(module_name), func_name)

    def execute(self) -> Any:
        """Run the prefix cell in this process."""
        return self.resolve()(**dict(self.params))


@dataclass(frozen=True)
class SweepPoint:
    """One independent unit of an experiment sweep.

    ``cell`` is a ``"package.module:function"`` reference rather than a
    callable so the spec pickles by name and hashes stably; ``params`` is a
    sorted tuple of ``(name, value)`` kwargs for that function.  ``needs``
    optionally maps extra kwarg names to :class:`SweepPrefix` ids whose
    values the DAG backend injects (the flat backend leaves those kwargs at
    their ``None`` defaults and the cell recomputes them inline).
    """

    experiment_id: str
    point_id: str
    cell: str
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    needs: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if ":" not in self.cell:
            raise ValueError(f"cell must be 'module:function', got {self.cell!r}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))
        object.__setattr__(self, "needs", tuple(sorted(self.needs)))

    def resolve(self) -> Callable[..., Any]:
        """Import and return the cell function this point references."""
        module_name, _, func_name = self.cell.partition(":")
        return getattr(importlib.import_module(module_name), func_name)

    def execute(self) -> Any:
        """Run the cell in this process (the serial / in-worker path)."""
        return self.resolve()(**dict(self.params))


@dataclass(frozen=True)
class SweepSpec:
    """An experiment's decomposition: points factory + deterministic reduce.

    ``prefixes`` optionally declares the shared upstream stage (see the
    module docstring); specs without one decompose into a flat fan-out
    under either backend.
    """

    experiment_id: str
    points: Callable[..., List[SweepPoint]]
    reduce: Callable[..., Any]
    prefixes: Optional[Callable[..., List["SweepPrefix"]]] = None

    def make_points(self, **kwargs: Any) -> List[SweepPoint]:
        """Build the point list for one run, validating id uniqueness."""
        points = self.points(**kwargs)
        seen: Dict[str, SweepPoint] = {}
        for p in points:
            if p.experiment_id != self.experiment_id:
                raise ValueError(
                    f"point {p.point_id!r} belongs to {p.experiment_id!r}, "
                    f"not {self.experiment_id!r}"
                )
            if p.point_id in seen:
                raise ValueError(f"duplicate point id {p.point_id!r}")
            seen[p.point_id] = p
        return points

    def make_prefixes(self, **kwargs: Any) -> List["SweepPrefix"]:
        """Build the prefix list for one run (empty without a prefix stage)."""
        if self.prefixes is None:
            return []
        prefixes = self.prefixes(**kwargs)
        seen: Dict[str, SweepPrefix] = {}
        for p in prefixes:
            if p.experiment_id != self.experiment_id:
                raise ValueError(
                    f"prefix {p.prefix_id!r} belongs to {p.experiment_id!r}, "
                    f"not {self.experiment_id!r}"
                )
            if p.prefix_id in seen:
                raise ValueError(f"duplicate prefix id {p.prefix_id!r}")
            seen[p.prefix_id] = p
        return prefixes


def sweep_of(fn: Callable[..., Any]) -> SweepSpec | None:
    """The ``SWEEP`` spec of the module defining ``fn``, if it exports one."""
    module = importlib.import_module(fn.__module__)
    spec = getattr(module, "SWEEP", None)
    return spec if isinstance(spec, SweepSpec) else None
