"""Content-addressed result cache under ``.repro_cache/``.

Entries are pickled (experiment payloads carry numpy scalars and frozen
dataclasses that a JSON round-trip would mangle) and addressed by the hex
SHA-256 key the runner derives from (experiment id, point spec, code
version) — see :mod:`repro.runner.hashing`.  Files are sharded two hex
characters deep (``.repro_cache/ab/abcdef….pkl``) to keep directories small
on a city-scale sweep history.

The cache is *disposable by construction*: a corrupt, truncated or
unreadable entry is treated as a miss and recomputed, never an error, so
``rm -rf .repro_cache`` is always safe and never required.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Tuple

__all__ = ["CacheStats", "ResultCache"]

_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one runner session."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def __str__(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.writes} writes"


@dataclass
class ResultCache:
    """Pickle store keyed by stable content hashes."""

    root: Path = Path(".repro_cache")
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise."""
        try:
            with self._path(key).open("rb") as f:
                value = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value``; atomic enough for concurrent readers (tmp+rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as f:
            pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        """Number of stored entries (walks the shard directories)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        if self.root.exists():
            for p in self.root.glob("*/*.pkl"):
                p.unlink(missing_ok=True)
                n += 1
        return n
