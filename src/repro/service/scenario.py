"""Live-scenario construction: a served city with F3-style workloads.

The service drives the same city the F3 experiment runs — the defaults here
reproduce :func:`repro.experiments.f3_three_flows.build` exactly — but every
knob an operator would want to turn (city size, workload rates, duration) is
a :class:`ScenarioConfig` field, so ``repro serve`` can boot anything from a
smoke-test hamlet to a larger district grid.

Construction order is load-bearing: RNG streams are created and consumed in
the same sequence as the batch experiments, so a served run with default
parameters is byte-identical to ``repro run F3`` (the determinism tests
assert this through the pause/resume path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import mid_month_start, small_city
from repro.sim.calendar import DAY
from repro.sim.rng import RngRegistry
from repro.workloads.cloud import CloudJobConfig, CloudJobGenerator
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator
from repro.workloads.heating import HeatingBehavior, HeatingRequestGenerator

__all__ = ["LiveScenario", "ScenarioConfig", "build_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines a served run; defaults mirror experiment F3."""

    seed: int = 17
    month: int = 1                     # mid-month start (winter default)
    duration_days: float = 1.0
    tail_days: float = 0.2             # drain window after the last arrival
    n_districts: int = 2
    buildings_per_district: int = 2
    rooms_per_building: int = 3
    dc_nodes: int = 8
    edge_rate_per_hour: float = 60.0   # per building
    cloud_rate_per_hour: float = 15.0  # city-wide
    heating: bool = True

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError(f"duration_days must be > 0, got {self.duration_days}")
        if self.tail_days < 0:
            raise ValueError(f"tail_days must be >= 0, got {self.tail_days}")
        if not 1 <= self.month <= 12:
            raise ValueError(f"month must be in 1..12, got {self.month}")

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON view (the service's ``/api/state`` scenario block)."""
        return {
            "seed": self.seed,
            "month": self.month,
            "duration_days": self.duration_days,
            "tail_days": self.tail_days,
            "n_districts": self.n_districts,
            "buildings_per_district": self.buildings_per_district,
            "rooms_per_building": self.rooms_per_building,
            "dc_nodes": self.dc_nodes,
            "edge_rate_per_hour": self.edge_rate_per_hour,
            "cloud_rate_per_hour": self.cloud_rate_per_hour,
            "heating": self.heating,
        }


@dataclass
class LiveScenario:
    """A built, injected, ready-to-run city plus its run window."""

    config: ScenarioConfig
    mw: object                       # DF3Middleware
    t0: float
    t1: float                        # last scheduled arrival boundary
    t_end: float                     # t1 + tail (run horizon)
    workloads: Dict[str, List] = field(default_factory=dict)

    @property
    def submitted(self) -> Dict[str, int]:
        """Per-flow count of pre-injected requests."""
        return {flow: len(reqs) for flow, reqs in self.workloads.items()}


def build_scenario(config: Optional[ScenarioConfig] = None, obs=None) -> LiveScenario:
    """Build the city, generate all three flows, inject them.

    With a default ``config`` this is operation-for-operation the F3 build:
    same city, same RNG stream names, same generator order — which is what
    makes the served run comparable against the golden batch fixture.
    """
    cfg = config if config is not None else ScenarioConfig()
    t0 = mid_month_start(cfg.month)
    t1 = t0 + cfg.duration_days * DAY
    mw = small_city(
        seed=cfg.seed, start_time=t0,
        saturation_policy=SaturationPolicy.PREEMPT,
        n_districts=cfg.n_districts,
        buildings_per_district=cfg.buildings_per_district,
        rooms_per_building=cfg.rooms_per_building,
        dc_nodes=cfg.dc_nodes,
        obs=obs,
    )
    rngs = RngRegistry(cfg.seed)

    heating: List = []
    if cfg.heating:
        for bname, building in mw.buildings.items():
            gen = HeatingRequestGenerator(
                rngs.stream(f"heat-{bname}"),
                rooms=[r.name for r in building.rooms],
                behavior=HeatingBehavior.INCENTIVIZED,
            )
            heating.extend(gen.generate(t0, t1))
    edge: List = []
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(
            rngs.stream(f"edge-{bname}"), source=bname,
            config=EdgeWorkloadConfig(rate_per_hour=cfg.edge_rate_per_hour),
        )
        edge.extend(gen.generate(t0, t1))
    cloud = CloudJobGenerator(
        rngs.stream("cloud"), CloudJobConfig(rate_per_hour=cfg.cloud_rate_per_hour)
    ).generate(t0, t1)

    mw.inject(heating)
    mw.inject(edge)
    mw.inject(cloud)
    return LiveScenario(
        config=cfg, mw=mw, t0=t0, t1=t1, t_end=t1 + cfg.tail_days * DAY,
        workloads={"heating": heating, "edge": edge, "cloud": cloud},
    )
