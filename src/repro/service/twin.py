"""The digital twin: a background thread driving one city step-wise.

This is the engine/IO split the service mode is built on:

* **Engine thread** (one per twin) — owns the simulation.  It advances the
  city in bounded slices via ``Engine.run_until`` and is the *only* thread
  that mutates simulation state.  Between slices it drains a command queue
  (request injection, scenario mutation, pause requests) and publishes
  telemetry onto the :class:`~repro.service.events.EventBus`.
* **IO threads** (HTTP handlers, SSE writers) — read-only observers.  They
  consume copy-on-snapshot views (metrics registry, ring-tracer tails,
  GIL-atomic scalars) and enqueue commands; they never touch the heap.

Determinism contract (DESIGN.md §2.15): every command carries an explicit
simulated time ``at``.  The engine thread advances to exactly ``t = at``
(never past it), applies the command, and continues — so a served run that
injects request R at sim-time T is byte-identical to a scripted run that
calls ``mw.run_until(T); <apply>; mw.run_until(end)``.  Wall-clock slicing,
pause/resume and pacing only decide *when real time* the engine reaches a
boundary, never *which* boundaries it stops at in simulated time.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs import Observability
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOEngine
from repro.obs.span import SpanIndex
from repro.obs.trace import RingTracer
from repro.service.events import EventBus
from repro.service.scenario import LiveScenario, ScenarioConfig, build_scenario

__all__ = ["DigitalTwin", "TwinConfig", "TwinError", "build_twin"]


class TwinError(RuntimeError):
    """Raised for invalid twin control operations (past-time commands, …)."""


@dataclass(frozen=True)
class TwinConfig:
    """Runtime knobs of the engine thread (not of the simulated city)."""

    slice_s: float = 300.0          # max simulated seconds per engine slice
    telemetry_every_s: float = 900.0  # sim-seconds between telemetry publishes
    pace: float = 0.0               # real seconds per sim second (0 = free run)
    ring_capacity: int = 65536      # flight-recorder depth
    trace_tail_per_publish: int = 10  # max trace records per telemetry event
    start_paused: bool = False

    def __post_init__(self) -> None:
        if self.slice_s <= 0:
            raise ValueError(f"slice_s must be > 0, got {self.slice_s}")
        if self.telemetry_every_s <= 0:
            raise ValueError(
                f"telemetry_every_s must be > 0, got {self.telemetry_every_s}")
        if self.pace < 0:
            raise ValueError(f"pace must be >= 0, got {self.pace}")


@dataclass(order=True)
class _Command:
    """One operation to apply on the engine thread at sim-time ``at``."""

    at: float
    order: int
    label: str = field(compare=False)
    fn: Callable[[Any], Any] = field(compare=False)
    done: threading.Event = field(compare=False, default_factory=threading.Event)
    result: Any = field(compare=False, default=None)
    error: Optional[BaseException] = field(compare=False, default=None)


class DigitalTwin:
    """Drives one :class:`LiveScenario` step-wise on a background thread."""

    def __init__(self, scenario: LiveScenario, obs: Observability,
                 config: Optional[TwinConfig] = None,
                 bus: Optional[EventBus] = None,
                 slo_engine: Optional[SLOEngine] = None):
        self.scenario = scenario
        self.mw = scenario.mw
        self.obs = obs
        self.config = config if config is not None else TwinConfig()
        self.bus = bus if bus is not None else EventBus()
        self.slo_engine = slo_engine if slo_engine is not None else SLOEngine()

        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._wake = threading.Event()   # kicks a paused/pacing engine loop
        if self.config.start_paused:
            self._paused.set()
        self._finished = threading.Event()

        self._inbox: List[_Command] = []   # heap, guarded by _inbox_lock
        self._inbox_lock = threading.Lock()
        self._cmd_order = itertools.count()
        self._pause_at: Optional[float] = None

        self._started_wall: Optional[float] = None
        self._last_telemetry_at = float("-inf")
        self._published_windows: set = set()
        self._trace_published = 0
        self.commands_applied = 0
        self.injected: Dict[str, int] = {"heating": 0, "edge": 0, "cloud": 0}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time (GIL-atomic float read)."""
        return self.mw.engine.now

    @property
    def paused(self) -> bool:
        """True when the engine loop is holding at a boundary."""
        return self._paused.is_set()

    @property
    def finished(self) -> bool:
        """True once the run horizon has been reached."""
        return self._finished.is_set()

    @property
    def running(self) -> bool:
        """True while the engine thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Launch the engine thread (idempotent once)."""
        if self._thread is not None:
            raise TwinError("twin already started")
        self._started_wall = time.monotonic()
        self._thread = threading.Thread(
            target=self._loop, name="repro-twin", daemon=True)
        self._thread.start()
        self.bus.publish("run.started", {
            "now": self.now, "t_end": self.scenario.t_end,
            "scenario": self.scenario.config.to_dict(),
        })

    def stop(self, timeout: float = 10.0) -> None:
        """Ask the engine thread to exit and join it."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the run to reach its horizon; True when it did."""
        return self._finished.wait(timeout=timeout)

    # ------------------------------------------------------------------ #
    # control API (called from IO threads)
    # ------------------------------------------------------------------ #
    def pause(self) -> float:
        """Hold the engine at the next slice boundary; returns sim-now."""
        self._pause_at = None
        self._paused.set()
        return self.now

    def pause_at(self, t: float) -> None:
        """Hold the engine exactly at simulated time ``t`` (determinism
        anchor: the loop will advance to ``t`` and stop there)."""
        if t < self.now:
            raise TwinError(f"pause_at {t} is before now={self.now}")
        self._pause_at = float(t)
        self._wake.set()

    def resume(self) -> None:
        """Release a paused engine loop (a scheduled pause_at anchor that
        has not fired yet stays armed)."""
        self._paused.clear()
        self._wake.set()

    def submit(self, label: str, fn: Callable[[Any], Any],
               at: Optional[float] = None,
               wait: Optional[float] = None) -> _Command:
        """Enqueue ``fn(mw)`` to run on the engine thread at sim-time ``at``.

        ``at=None`` means "at the next boundary" (the engine stamps it with
        its current sim time when it picks the command up).  With ``wait``,
        blocks up to that many real seconds for the command to apply and
        re-raises any error it hit.
        """
        if at is not None and at < self.now:
            raise TwinError(f"command {label!r} at={at} is before now={self.now}")
        if self._finished.is_set():
            raise TwinError(f"command {label!r}: run already finished")
        cmd = _Command(at=float(at) if at is not None else float("-inf"),
                       order=next(self._cmd_order), label=label, fn=fn)
        with self._inbox_lock:
            heapq.heappush(self._inbox, cmd)
        self._wake.set()
        if wait is not None:
            if not cmd.done.wait(timeout=wait):
                raise TwinError(f"command {label!r} did not apply within {wait}s")
            if cmd.error is not None:
                raise cmd.error
        return cmd

    def step(self, dt: float, wait: float = 30.0) -> float:
        """While paused, advance exactly ``dt`` simulated seconds.

        Returns the new sim-now.  The advance happens on the engine thread
        (single-writer rule), the caller blocks until it lands.
        """
        if not self._paused.is_set():
            raise TwinError("step() requires a paused twin")
        if dt <= 0:
            raise TwinError(f"step dt must be > 0, got {dt}")
        target = self.now + dt
        cmd = self.submit(f"step:{dt}", lambda mw: mw.run_until(target),
                          wait=wait)
        return cmd.result if cmd.result is not None else self.now

    # ------------------------------------------------------------------ #
    # high-level commands (request injection, scenario mutation)
    # ------------------------------------------------------------------ #
    def inject_request(self, req, flow: str, at: Optional[float] = None,
                       wait: Optional[float] = None) -> _Command:
        """Inject one request at sim-time ``at``.

        ``req`` is either a built request object (its ``time`` must not be
        earlier than ``at``) or a callable ``sim_now -> request`` invoked on
        the engine thread at apply time — the path HTTP callers use when they
        do not pin ``at`` and just mean "as soon as possible".
        """

        def _apply(mw):
            r = req(mw.engine.now) if callable(req) else req
            mw.inject([r])
            self.injected[flow] = self.injected.get(flow, 0) + 1
            return r.request_id

        return self.submit(f"inject:{flow}", _apply, at=at, wait=wait)

    def set_weather_override(self, delta_c: float, at: Optional[float] = None,
                             wait: Optional[float] = None) -> _Command:
        """Apply an additive outdoor-temperature forcing (cold snap / heat
        wave) from sim-time ``at`` onward."""
        return self.submit(
            f"weather:{delta_c:+g}",
            lambda mw: mw.weather.set_override(delta_c), at=at, wait=wait)

    def set_grid_cap(self, cap_w: Optional[float], at: Optional[float] = None,
                     wait: Optional[float] = None) -> _Command:
        """Apply a demand-response price signal (grid power cap, W; None
        lifts it) from sim-time ``at`` onward."""
        return self.submit(
            f"grid_cap:{cap_w}",
            lambda mw: mw.smartgrid.set_grid_cap(cap_w), at=at, wait=wait)

    def kill_district(self, district: int, at: Optional[float] = None,
                      wait: Optional[float] = None) -> _Command:
        """Take a whole district down: master fails, every server hard-fails.

        Hard failures stay down (churn-model semantics) instead of being
        powered back up by the smart grid on the next thermal tick — a
        district kill should look like an outage, not a blink.
        """
        from repro.core.faults import FaultInjector

        def _apply(mw):
            if district not in mw.clusters:
                raise TwinError(f"no such district {district}")
            inj = FaultInjector(mw)
            inj.fail_master(district)
            killed = []
            for server in mw.clusters[district].workers:
                if not server.failed:
                    inj.crash_server(server.name, hard=True)
                    killed.append(server.name)
            return {"district": district, "servers_killed": killed}

        return self.submit(f"kill_district:{district}", _apply, at=at, wait=wait)

    # ------------------------------------------------------------------ #
    # engine loop (the only simulation writer)
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        try:
            while not self._stop.is_set():
                if self._paused.is_set():
                    self._apply_due_commands(self.now)
                    self._wake.wait(timeout=0.05)
                    self._wake.clear()
                    continue
                target = self._next_boundary()
                if self.config.pace > 0:
                    time.sleep(min(self.config.pace * (target - self.now), 1.0))
                self.mw.run_until(target)
                self._apply_due_commands(target)
                if self._pause_at is not None and self.now >= self._pause_at:
                    self._pause_at = None
                    self._paused.set()
                    self.bus.publish("run.paused", {"now": self.now})
                self._maybe_publish_telemetry()
                if self.now >= self.scenario.t_end:
                    self._publish_telemetry()
                    self._finished.set()
                    self.bus.publish("run.finished", {
                        "now": self.now,
                        "wall_s": time.monotonic() - self._started_wall,
                    })
                    break
        except Exception as exc:  # surface engine-thread death to clients
            self._finished.set()
            self.bus.publish("run.error", {"now": self.now, "error": repr(exc)})
            raise
        finally:
            # fail fast for anyone blocked on a command that can never apply
            self._reject_pending("engine loop exited")

    def _next_boundary(self) -> float:
        """Next simulated time to stop at: slice end, command, pause, end."""
        target = min(self.now + self.config.slice_s, self.scenario.t_end)
        with self._inbox_lock:
            if self._inbox:
                head = self._inbox[0].at
                if head > self.now:  # -inf / past-stamped run at this boundary
                    target = min(target, head)
        if self._pause_at is not None:
            target = min(target, self._pause_at)
        return target

    def _apply_due_commands(self, boundary: float) -> None:
        """Run every queued command with ``at <= boundary`` in (at, order)."""
        while True:
            with self._inbox_lock:
                if not self._inbox or self._inbox[0].at > boundary:
                    return
                cmd = heapq.heappop(self._inbox)
            try:
                cmd.result = cmd.fn(self.mw)
                self.commands_applied += 1
                self.bus.publish("command.applied", {
                    "now": self.now, "label": cmd.label,
                    "at": None if cmd.at == float("-inf") else cmd.at,
                })
            except BaseException as exc:
                cmd.error = exc
                self.bus.publish("command.failed", {
                    "now": self.now, "label": cmd.label, "error": repr(exc),
                })
            finally:
                cmd.done.set()

    def _reject_pending(self, reason: str) -> None:
        with self._inbox_lock:
            pending, self._inbox = self._inbox, []
        for cmd in pending:
            cmd.error = TwinError(f"command {cmd.label!r} dropped: {reason}")
            cmd.done.set()

    # ------------------------------------------------------------------ #
    # telemetry (engine thread)
    # ------------------------------------------------------------------ #
    def _maybe_publish_telemetry(self) -> None:
        if self.now - self._last_telemetry_at >= self.config.telemetry_every_s:
            self._publish_telemetry()

    def _publish_telemetry(self) -> None:
        self._last_telemetry_at = self.now
        self.bus.publish("state", self.state_dict())
        self.bus.publish("metrics", {
            "now": self.now, "series": self.obs.registry.snapshot(),
        })
        self._publish_slo_windows()
        self._publish_trace_tail()

    def _publish_slo_windows(self) -> None:
        records = self.obs.tracer.tail(len(self.obs.tracer))
        if not records:
            return
        report = self.slo_engine.evaluate(records, tracer=None)
        for result in report.results:
            for w in result.windows:
                key = (result.spec.name, w.start_ts)
                if key in self._published_windows:
                    continue
                self._published_windows.add(key)
                payload = {"now": self.now, "slo": result.spec.name,
                           "flow": result.spec.flow,
                           "target": result.spec.target, **w.to_dict()}
                self.bus.publish("slo.burn_rate", payload)
                if w.breached:
                    self.bus.publish("slo.breach", payload)

    def _publish_trace_tail(self) -> None:
        tracer = self.obs.tracer
        new = tracer.total_emitted - self._trace_published
        if new <= 0:
            return
        take = min(new, self.config.trace_tail_per_publish)
        tail = tracer.tail(take)
        self._trace_published = tracer.total_emitted
        self.bus.publish("trace", {
            "now": self.now,
            "emitted_total": tracer.total_emitted,
            "new": new,
            "shown": len(tail),
            "records": [r.to_dict() for r in tail],
        })

    # ------------------------------------------------------------------ #
    # read views (safe from IO threads: snapshots + GIL-atomic scalars)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        """Run-level status: clocks, progress, lifecycle, scenario.

        When the middleware runs a resilience runtime, the policy engine's
        decision counters (and the adaptive controller's current assignment)
        ride along under ``"resilience"`` — they reach SSE subscribers with
        every ``state`` telemetry event.
        """
        now = self.now
        t0, t_end = self.scenario.t0, self.scenario.t_end
        span = t_end - t0
        out = {
            "now": now,
            "t_start": t0,
            "t_end": t_end,
            "progress": min(1.0, (now - t0) / span) if span > 0 else 1.0,
            "paused": self.paused,
            "finished": self.finished,
            "events_executed": self.mw.engine.events_executed,
            "commands_applied": self.commands_applied,
            "injected": dict(self.injected),
            "submitted": self.scenario.submitted,
            "wall_uptime_s": (time.monotonic() - self._started_wall
                              if self._started_wall is not None else 0.0),
            "scenario": self.scenario.config.to_dict(),
        }
        if self.mw.resilience is not None:
            out["resilience"] = self.mw.resilience.status_dict()
        if getattr(self.mw, "surrogate", None) is not None:
            # the surrogate tier's error-budget monitor rides the same
            # telemetry: /api/state and every SSE "state" event carry it
            out["surrogate"] = self.mw.surrogate.budget_status()
        return out

    def fleet_dict(self) -> Dict[str, Any]:
        """City-level rollup: energy, flow outcomes, district health."""
        mw = self.mw
        districts = []
        for d in sorted(mw.clusters):
            workers = list(mw.clusters[d].workers)
            districts.append({
                "district": d,
                "servers": len(workers),
                "servers_up": sum(1 for s in workers
                                  if s.enabled and not s.failed),
                "free_cores": sum(s.free_cores for s in workers),
                "busy_cores": sum(s.busy_cores for s in workers),
                "master_up": mw.edge_gateways[d].master_up,
            })
        return {
            "now": self.now,
            "fleet_energy_kwh": mw.fleet_energy_j() / 3.6e6,
            "edge_completed": len(mw.completed_edge()),
            "edge_expired": len(mw.expired_edge()),
            "cloud_completed": len(mw.completed_cloud()),
            "grid_cap_w": mw.smartgrid.grid_cap_w,
            "weather_override_c": mw.weather.override_delta_c,
            "outdoor_temp_c": float(mw.weather.outdoor_temperature(
                min(self.now, mw.weather.horizon))),
            "districts": districts,
        }

    def servers_dict(self) -> List[Dict[str, Any]]:
        """Per-server rows (name, cores, load, power, health)."""
        rows = []
        for d in sorted(self.mw.clusters):
            for s in self.mw.clusters[d].workers:
                rows.append({
                    "district": d,
                    "name": s.name,
                    "cores": s.spec.n_cores,
                    "busy_cores": s.busy_cores,
                    "free_cores": s.free_cores,
                    "power_w": s.power_w(),
                    "enabled": s.enabled,
                    "failed": s.failed,
                })
        return rows

    def slo_dict(self) -> Dict[str, Any]:
        """Full SLO compliance tables over the flight recorder."""
        records = self.obs.tracer.tail(len(self.obs.tracer))
        report = self.slo_engine.evaluate(records, tracer=None)
        return report.to_dict()

    def spans_dict(self, prefix: str = "edge.", slowest_n: int = 5) -> Dict[str, Any]:
        """Span-tree summary over the flight recorder."""
        records = self.obs.tracer.tail(len(self.obs.tracer))
        return SpanIndex(records).to_dict(prefix=prefix, slowest_n=slowest_n)

    def metrics_dict(self) -> Dict[str, Any]:
        """Current metrics snapshot keyed by rendered series name."""
        return self.obs.registry.snapshot()

    def trace_tail_dict(self, n: int = 50) -> Dict[str, Any]:
        """The most recent ``n`` trace records (non-destructive read)."""
        tracer = self.obs.tracer
        tail = tracer.tail(n)
        return {
            "now": self.now,
            "emitted_total": tracer.total_emitted,
            "buffered": len(tracer),
            "records": [r.to_dict() for r in tail],
        }


def build_twin(scenario_config: Optional[ScenarioConfig] = None,
               twin_config: Optional[TwinConfig] = None) -> DigitalTwin:
    """One-call constructor: instrumented city + twin, not yet started."""
    cfg = twin_config if twin_config is not None else TwinConfig()
    obs = Observability(tracer=RingTracer(capacity=cfg.ring_capacity),
                        registry=MetricsRegistry())
    scenario = build_scenario(scenario_config, obs=obs)
    return DigitalTwin(scenario, obs, config=cfg)
