"""Service mode: the simulation as a live digital twin behind HTTP.

Everything the batch experiments compute, observable while it happens: one
:class:`~repro.service.twin.DigitalTwin` drives a city step-wise on a
background thread, a stdlib HTTP server exposes its state (REST), its
telemetry (SSE) and its controls (request injection, scenario mutation,
pause/resume/step) — with the hard guarantee that a served run is
byte-identical to the equivalent scripted batch run (DESIGN.md §2.15).
"""

from repro.service.events import BusEvent, EventBus, Subscription, drain
from repro.service.http import TwinServer, serve
from repro.service.scenario import LiveScenario, ScenarioConfig, build_scenario
from repro.service.twin import DigitalTwin, TwinConfig, TwinError, build_twin

__all__ = [
    "BusEvent",
    "DigitalTwin",
    "EventBus",
    "LiveScenario",
    "ScenarioConfig",
    "Subscription",
    "TwinConfig",
    "TwinError",
    "TwinServer",
    "build_scenario",
    "build_twin",
    "drain",
    "serve",
]
