"""Fan-out event bus between the twin's engine thread and SSE subscribers.

One :class:`EventBus` per served run.  The engine thread publishes telemetry
events (metrics snapshots, SLO windows, trace tails, lifecycle markers); each
connected SSE client owns a bounded :class:`queue.Queue` it drains at its own
pace.  Publishing never blocks the simulation: when a subscriber's queue is
full the oldest event is dropped and counted, so a stalled client can at
worst lose its own history — never slow the engine or its siblings.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["BusEvent", "EventBus", "Subscription", "drain"]


@dataclass(frozen=True)
class BusEvent:
    """One published telemetry event.

    ``kind`` becomes the SSE ``event:`` field; ``data`` must be
    JSON-serialisable (it becomes the SSE ``data:`` payload); ``seq`` is a
    bus-wide monotonically increasing id (the SSE ``id:`` field), so clients
    can detect gaps introduced by overflow drops.
    """

    kind: str
    data: dict
    seq: int


@dataclass
class Subscription:
    """One subscriber's view of the bus."""

    sub_id: int
    events: "queue.Queue[BusEvent]"
    dropped: int = field(default=0)


class EventBus:
    """Bounded-queue publish/subscribe with drop-oldest overflow."""

    def __init__(self, max_queue: int = 1024):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._subs: Dict[int, Subscription] = {}
        self._ids = itertools.count()
        self._seq = itertools.count()
        self.published = 0
        self.dropped = 0

    # ------------------------------------------------------------------ #
    def subscribe(self) -> Subscription:
        """Register a new subscriber; events published after this call flow
        into its queue."""
        sub = Subscription(next(self._ids), queue.Queue(maxsize=self.max_queue))
        with self._lock:
            self._subs[sub.sub_id] = sub
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach a subscriber; its queue stops receiving events."""
        with self._lock:
            self._subs.pop(sub.sub_id, None)

    @property
    def subscriber_count(self) -> int:
        """Number of currently attached subscribers."""
        with self._lock:
            return len(self._subs)

    # ------------------------------------------------------------------ #
    def publish(self, kind: str, data: dict) -> BusEvent:
        """Deliver one event to every subscriber without ever blocking.

        A full subscriber queue sheds its oldest event to make room (the
        drop is counted on both the subscription and the bus), so one slow
        SSE client cannot stall the engine thread.
        """
        event = BusEvent(kind=kind, data=data, seq=next(self._seq))
        with self._lock:
            subs = list(self._subs.values())
        for sub in subs:
            while True:
                try:
                    sub.events.put_nowait(event)
                    break
                except queue.Full:
                    try:
                        sub.events.get_nowait()
                        sub.dropped += 1
                        self.dropped += 1
                    except queue.Empty:  # racing consumer made room
                        continue
        self.published += 1
        return event


def drain(sub: Subscription, timeout: Optional[float] = None,
          max_events: int = 64) -> List[Tuple[str, dict, int]]:
    """Pop up to ``max_events`` pending events as ``(kind, data, seq)`` rows.

    Blocks up to ``timeout`` seconds for the first event only; the rest are
    taken non-blocking.  Convenience for tests and the SSE writer loop.
    """
    out: List[Tuple[str, dict, int]] = []
    try:
        ev = sub.events.get(timeout=timeout)
    except queue.Empty:
        return out
    out.append((ev.kind, ev.data, ev.seq))
    while len(out) < max_events:
        try:
            ev = sub.events.get_nowait()
        except queue.Empty:
            break
        out.append((ev.kind, ev.data, ev.seq))
    return out
