"""The ``repro serve`` HTTP layer: REST + SSE over one digital twin.

Stdlib only (``http.server`` + ``socketserver``): the service must boot in
the same dependency-light environment the experiments run in.  One
:class:`TwinServer` wraps one :class:`~repro.service.twin.DigitalTwin`;
handler threads are pure IO — they read the twin's snapshot views, enqueue
commands and stream bus events, but never touch simulation state directly
(the single-writer rule, DESIGN.md §2.15).

Endpoints
---------
``GET  /``                 live dashboard (SSE-backed HTML page)
``GET  /healthz``          liveness + sim clock
``GET  /api/state``        run status (clocks, progress, lifecycle; includes
                           recovery policy-engine counters when armed)
``GET  /api/fleet``        city rollup (energy, flows, district health)
``GET  /api/servers``      per-server rows
``GET  /api/slo``          SLO compliance tables (stable JSON)
``GET  /api/spans``        span-tree / critical-path summary
``GET  /api/metrics``      metrics snapshot
``GET  /api/trace/tail``   recent trace records (``?n=50``)
``GET  /events``           SSE telemetry stream (``?max_events=`` to bound)
``POST /api/inject``       inject a request (edge / cloud / heating)
``POST /api/scenario``     mutate the scenario (weather / grid cap / kill)
``POST /api/control``      pause / pause_at / resume / step
``POST /api/shutdown``     stop the twin and the server
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.requests import CloudRequest, EdgeRequest, HeatingRequest
from repro.obs.report import render_live_dashboard
from repro.service.twin import DigitalTwin, TwinError

__all__ = ["TwinServer", "serve"]

_SSE_HEARTBEAT_S = 5.0          # keep-alive comment cadence on idle streams
_COMMAND_WAIT_S = 30.0          # POST round-trip budget


class TwinServer(ThreadingHTTPServer):
    """One twin, one port; handler threads are spawned per connection."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], twin: DigitalTwin):
        super().__init__(address, _Handler)
        self.twin = twin
        self._shutdown_requested = threading.Event()

    def request_shutdown(self) -> None:
        """Flag a clean stop; ``serve`` unwinds on its next check."""
        self._shutdown_requested.set()

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown_requested.is_set()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: TwinServer

    # quiet by default: one access-log line per request is engine-thread
    # noise the CLI surfaces only with --verbose
    def log_message(self, fmt: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, html: str, status: int = 200) -> None:
        body = html.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------ #
    # GET
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        url = urlparse(self.path)
        q = parse_qs(url.query)
        twin = self.server.twin
        try:
            if url.path == "/healthz":
                self._send_json({"status": "ok", "now": twin.now,
                                 "paused": twin.paused,
                                 "finished": twin.finished})
            elif url.path == "/":
                self._send_html(render_live_dashboard())
            elif url.path == "/api/state":
                self._send_json(twin.state_dict())
            elif url.path == "/api/fleet":
                self._send_json(twin.fleet_dict())
            elif url.path == "/api/servers":
                self._send_json({"servers": twin.servers_dict()})
            elif url.path == "/api/slo":
                self._send_json(twin.slo_dict())
            elif url.path == "/api/spans":
                prefix = q.get("prefix", ["edge."])[0]
                n = int(q.get("slowest", ["5"])[0])
                self._send_json(twin.spans_dict(prefix=prefix, slowest_n=n))
            elif url.path == "/api/metrics":
                self._send_json({"now": twin.now,
                                 "series": twin.metrics_dict()})
            elif url.path == "/api/trace/tail":
                n = int(q.get("n", ["50"])[0])
                self._send_json(twin.trace_tail_dict(n=n))
            elif url.path == "/events":
                max_events = q.get("max_events")
                self._stream_events(
                    int(max_events[0]) if max_events else None)
            else:
                self._error(404, f"no such path: {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-write; nothing to clean up
        except Exception as exc:
            self._error(500, repr(exc))

    def _stream_events(self, max_events: Optional[int]) -> None:
        """The SSE writer loop: drain this subscriber until it disconnects.

        ``max_events`` bounds the stream then closes it — what the CI smoke
        test and curl-based probes use to consume a finite prefix.
        """
        twin = self.server.twin
        sub = twin.bus.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            sent = 0
            while max_events is None or sent < max_events:
                try:
                    ev = sub.events.get(timeout=_SSE_HEARTBEAT_S)
                except queue.Empty:
                    if twin.finished and sub.events.empty():
                        break
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                frame = (f"event: {ev.kind}\nid: {ev.seq}\n"
                         f"data: {json.dumps(ev.data, sort_keys=True)}\n\n")
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                sent += 1
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            twin.bus.unsubscribe(sub)
            self.close_connection = True

    # ------------------------------------------------------------------ #
    # POST
    # ------------------------------------------------------------------ #
    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        url = urlparse(self.path)
        try:
            body = self._read_body()
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"bad request body: {exc}")
            return
        try:
            if url.path == "/api/inject":
                self._send_json(self._handle_inject(body))
            elif url.path == "/api/scenario":
                self._send_json(self._handle_scenario(body))
            elif url.path == "/api/control":
                self._send_json(self._handle_control(body))
            elif url.path == "/api/shutdown":
                self.server.request_shutdown()
                self._send_json({"status": "shutting down",
                                 "now": self.server.twin.now})
            else:
                self._error(404, f"no such path: {url.path}")
        except (TwinError, ValueError, KeyError) as exc:
            self._error(400, repr(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:
            self._error(500, repr(exc))

    def _handle_inject(self, body: Dict[str, Any]) -> Dict[str, Any]:
        twin = self.server.twin
        flow = body.get("flow", "edge")
        at = body.get("at")

        def factory(sim_now: float):
            t = float(at) if at is not None else sim_now
            if flow == "edge":
                # validate the origin here, on the engine thread, so a bad
                # request fails the command (HTTP 400) instead of blowing up
                # a scheduled callback minutes of sim-time later
                buildings = twin.mw.buildings
                source = body.get("source") or next(iter(buildings))
                if source not in buildings:
                    raise ValueError(f"unknown source building {source!r}")
                return EdgeRequest(
                    cycles=float(body.get("cycles", 200e6)),
                    time=t,
                    cores=int(body.get("cores", 1)),
                    deadline_s=float(body.get("deadline_s", 5.0)),
                    source=source,
                )
            if flow == "cloud":
                return CloudRequest(
                    cycles=float(body.get("cycles", 3.6e12)),
                    time=t,
                    cores=int(body.get("cores", 4)),
                    user=body.get("user", "service"),
                    preemptible=bool(body.get("preemptible", True)),
                )
            if flow == "heating":
                return HeatingRequest(
                    target_temp_c=float(body.get("target_temp_c", 20.0)),
                    time=t,
                    rooms=tuple(body.get("rooms", ())),
                    collective=bool(body.get("collective", False)),
                )
            raise ValueError(f"unknown flow {flow!r}")

        cmd = twin.inject_request(
            factory, flow, at=float(at) if at is not None else None,
            wait=_COMMAND_WAIT_S)
        return {"status": "injected", "flow": flow,
                "request_id": cmd.result, "applied_at": twin.now}

    def _handle_scenario(self, body: Dict[str, Any]) -> Dict[str, Any]:
        twin = self.server.twin
        at = body.get("at")
        at = float(at) if at is not None else None
        applied = []
        if "weather_delta_c" in body:
            twin.set_weather_override(float(body["weather_delta_c"]),
                                      at=at, wait=_COMMAND_WAIT_S)
            applied.append("weather_delta_c")
        if "grid_cap_w" in body:
            cap = body["grid_cap_w"]
            twin.set_grid_cap(float(cap) if cap is not None else None,
                              at=at, wait=_COMMAND_WAIT_S)
            applied.append("grid_cap_w")
        if "kill_district" in body:
            cmd = twin.kill_district(int(body["kill_district"]),
                                     at=at, wait=_COMMAND_WAIT_S)
            applied.append("kill_district")
            return {"status": "applied", "applied": applied,
                    "detail": cmd.result, "now": twin.now}
        if not applied:
            raise ValueError(
                "scenario body needs weather_delta_c, grid_cap_w "
                "or kill_district")
        return {"status": "applied", "applied": applied, "now": twin.now}

    def _handle_control(self, body: Dict[str, Any]) -> Dict[str, Any]:
        twin = self.server.twin
        action = body.get("action")
        if action == "pause":
            return {"status": "paused", "now": twin.pause()}
        if action == "pause_at":
            twin.pause_at(float(body["at"]))
            return {"status": "pause scheduled", "at": float(body["at"])}
        if action == "resume":
            twin.resume()
            return {"status": "resumed", "now": twin.now}
        if action == "step":
            now = twin.step(float(body.get("dt", 60.0)))
            return {"status": "stepped", "now": now}
        raise ValueError(f"unknown action {action!r}")


def serve(twin: DigitalTwin, host: str = "127.0.0.1", port: int = 8008,
          verbose: bool = False,
          ready: Optional[threading.Event] = None) -> int:
    """Run the server until the twin finishes or a shutdown is requested.

    Returns the bound port (useful with ``port=0``).  ``ready`` is set once
    the socket is listening — test hooks wait on it instead of polling.
    """
    server = TwinServer((host, port), twin)
    server.verbose = verbose
    bound_port = server.server_address[1]
    serve_thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True,
        kwargs={"poll_interval": 0.1})
    serve_thread.start()
    if not twin.running:
        twin.start()
    if ready is not None:
        ready.set()
    try:
        while not server.shutdown_requested:
            if twin.join(timeout=0.2):
                # run done: keep serving reads until a shutdown arrives
                # (headless callers stop via POST /api/shutdown)
                server._shutdown_requested.wait()
                break
        return bound_port
    finally:
        twin.stop()
        server.shutdown()
        server.server_close()
