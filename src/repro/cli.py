"""Command-line experiment runner.

Usage::

    python -m repro list                 # show all experiments
    python -m repro run F4               # run one experiment, print its table
    python -m repro run all              # run every experiment
    python -m repro run E5 --seed 123    # override the seed
    python -m repro run E14 --kernel scalar   # reference (non-vectorised) kernel
    python -m repro run E3 --kernel surrogate # district-aggregate surrogate tier

Parallelism and caching (see DESIGN.md, "Sweep runner")::

    python -m repro run A6 --jobs 4          # sweep points over 4 processes
    python -m repro run all                  # warm runs reuse .repro_cache/
    python -m repro run all --no-cache       # force recomputation
    python -m repro run E3 --cache-dir /tmp/c
    python -m repro run A6 --backend flat    # historical flat point-pool

Sweep-shaped experiments (those exporting a ``SWEEP`` spec) decompose into
independent points executed by :class:`repro.runner.SweepRunner`; completed
points are stored content-addressed under ``--cache-dir`` (default
``.repro_cache/``), keyed by experiment id + point spec + code version, so a
re-run only recomputes what changed.  ``--backend dag`` (the default, or
``$REPRO_BACKEND``) additionally lifts each sweep's shared prefix stage —
workload plans, city blueprints — into upstream task-graph nodes computed
once, cached per node, and fanned out to the sweep points; ``--jobs N``
then executes the pending subgraph over a work-stealing worker pool.
``--jobs 1`` (the default) executes nodes inline in deterministic graph
order — byte-identical to the historical serial runner — and any
backend × jobs × cache combination produces byte-identical tables, because
results are always reassembled in points order.  Runs with observability
flags bypass the cache: an instrumented run must actually execute to have
something to observe.

Observability (see DESIGN.md, "Observability") — any combination of::

    python -m repro run F3 --trace t.jsonl         # structured JSONL trace
    python -m repro run F3 --chrome-trace t.json   # chrome://tracing format
    python -m repro run F3 --profile               # hottest-subsystem table
    python -m repro run F3 --metrics-out m.json    # metrics registry snapshot
    python -m repro run F3 --json result.json      # ExperimentResult as JSON

Observability v2 (DESIGN.md, "Observability v2")::

    python -m repro run F3 --trace t.jsonl --trace-kinds request,sample
    python -m repro run F3 --trace t.jsonl --trace-stream   # O(buffer) memory
    python -m repro run F3 --trace t.jsonl --flight-recorder 50000
    python -m repro run F3 --trace t.jsonl --slo   # SLO compliance table
    python -m repro report t.jsonl -o report.html  # self-contained HTML

``--trace-kinds`` keeps only the named record kinds; ``--trace-stream``
spills the trace to its JSONL file incrementally instead of holding it in
memory; ``--flight-recorder N`` keeps only the last N records (a ring
buffer); ``--slo`` evaluates the default service-level objectives over the
trace and prints the compliance table (breach/burn-rate records are
appended to the trace first, so reports see them).

Orchestration-plane observability (DESIGN.md §2.19)::

    python -m repro run A6 --jobs 4 --progress        # live frontier line
    python -m repro run A6 --report-json run.json     # RunReport as JSON
    python -m repro report t.jsonl --run-report run.json -o report.html
    python -m repro diff base.json candidate.json     # perf-regression radar

``--progress`` paints one live stderr line (computed/cached counts, in-flight
nodes, worker deaths and retries) fed by the backend; ``--report-json``
writes the full :class:`~repro.runner.RunReport` (node counts, backend stats,
worker timeline) for ``repro report --run-report`` and ``repro diff``, which
compares two run/report/bench artifacts with tolerance bands and exits 1 on
regressions.

With several experiments (``run all``), per-experiment output files get the
experiment id injected before the suffix (``t-F3.jsonl``).

Every experiment is a pure function of its seed; the printed tables are the
same artefacts the benchmark harness records in ``benchmarks/results/``.
Instrumentation never changes them: tracing and metrics only *observe*.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro import obs as obs_mod

__all__ = ["main", "EXPERIMENTS"]


def _registry() -> Dict[str, Tuple[str, Callable]]:
    from repro.experiments import (
        a1_cluster_formation,
        a2_resilience,
        a3_crypto_heater,
        a4_demand_response,
        a5_seasonal_sla,
        a6_churn,
        e1_pue,
        e2_edge_latency,
        e3_seasonal_capacity,
        e4_architectures,
        e5_peak_policies,
        e6_heat_regulator,
        e7_heat_island,
        e8_thermosensitivity,
        e9_baselines,
        e10_app_classes,
        e11_availability,
        e12_aging,
        e13_cold_start,
        e14_scale,
        f3_three_flows,
        fig4_temperature,
    )

    return {
        "F4": ("Paper Fig. 4: monthly room temperature", fig4_temperature.run),
        "F3": ("Paper Fig. 3: three flows on one fleet", f3_three_flows.run),
        "E1": ("PUE: data furnace vs datacenter", e1_pue.run),
        "E2": ("Edge latency per path/protocol", e2_edge_latency.run),
        "E3": ("Seasonal capacity and pricing", e3_seasonal_capacity.run),
        "E4": ("Shared vs dedicated architectures", e4_architectures.run),
        "E5": ("Peak policies: preempt/offload/delay", e5_peak_policies.run),
        "E6": ("DVFS heat regulator", e6_heat_regulator.run),
        "E7": ("Urban heat island waste heat", e7_heat_island.run),
        "E8": ("Thermosensitivity prediction", e8_thermosensitivity.run),
        "E9": ("Baseline comparison", e9_baselines.run),
        "E10": ("Application-class suitability", e10_app_classes.run),
        "E11": ("Availability vs host behaviour", e11_availability.run),
        "E12": ("Processor aging under free cooling", e12_aging.run),
        "E13": ("Service-stack container cold starts", e13_cold_start.run),
        "E14": ("Weak scaling: QoS vs city size", e14_scale.run),
        "A1": ("Ablation: cluster formation", a1_cluster_formation.run),
        "A2": ("Extension: fault resilience", a2_resilience.run),
        "A3": ("Extension: crypto-heater economics", a3_crypto_heater.run),
        "A4": ("Extension: demand response", a4_demand_response.run),
        "A5": ("Extension: seasonal SLAs + planning", a5_seasonal_sla.run),
        "A6": ("Extension: recovery policy Pareto frontier under churn",
               a6_churn.run),
    }


#: experiment id → (description, run callable); populated lazily in main()
EXPERIMENTS: Dict[str, Tuple[str, Callable]] = {}


def _out_path(base: str, eid: str, multi: bool) -> Path:
    """Output path for one experiment: inject the id when running several."""
    p = Path(base)
    if multi:
        p = p.with_name(f"{p.stem}-{eid}{p.suffix}")
    p.parent.mkdir(parents=True, exist_ok=True)
    return p


def _parse_kinds(spec: Optional[str]):
    """``--trace-kinds request,sample`` → frozenset, or None when unset."""
    if not spec:
        return None
    kinds = frozenset(k.strip() for k in spec.split(",") if k.strip())
    return kinds or None


def _progress_printer(eid: str):
    """Live one-line progress feed on stderr (``repro run --progress``)."""
    def emit(ev: Dict[str, object]) -> None:
        if ev.get("phase") == "plan":
            line = (f"{eid}: {ev.get('points', 0)} points — "
                    f"{ev.get('cached', 0)} cached, "
                    f"{ev.get('pending', 0)} pending")
        else:
            line = (f"{eid}: {ev.get('done', 0)}/{ev.get('total', 0)} "
                    f"computed · {ev.get('inflight', 0)} in flight · "
                    f"{ev.get('workers', 1)} worker(s)")
            if ev.get("deaths"):
                line += f" · {ev['deaths']} worker death(s)"
            if ev.get("retries"):
                line += f" · {ev['retries']} retried"
        print(f"\r\x1b[2K{line}", end="", file=sys.stderr, flush=True)
    return emit


def _build_obs(args, eid: str, multi: bool) -> Optional[obs_mod.Observability]:
    """Observability bundle for one experiment run, or None when all flags off."""
    want_trace = args.trace or args.chrome_trace or args.slo
    if not (want_trace or args.profile or args.metrics_out):
        return None
    tracer = None
    if want_trace:
        kinds = _parse_kinds(args.trace_kinds)
        if args.trace_stream:
            # stream straight into the final per-experiment path: bounded
            # memory, and write_jsonl() later is just a flush
            tracer = obs_mod.JsonlTracer(_out_path(args.trace, eid, multi),
                                         kinds=kinds)
        elif args.flight_recorder:
            tracer = obs_mod.RingTracer(capacity=args.flight_recorder,
                                        kinds=kinds)
        else:
            tracer = obs_mod.Tracer(kinds=kinds)
    return obs_mod.Observability(
        tracer=tracer,
        registry=obs_mod.MetricsRegistry() if args.metrics_out else None,
        profiler=obs_mod.Profiler() if args.profile else None,
    )


def _write_artefacts(args, obs: Optional[obs_mod.Observability],
                     result, eid: str, multi: bool) -> None:
    """Export the per-experiment artefacts requested on the command line."""
    from repro.metrics.export import metrics_to_json, to_json

    if args.json is not None and hasattr(result, "experiment_id"):
        p = to_json(result, _out_path(args.json, eid, multi))
        print(f"  result json → {p}")
    if obs is None:
        return
    if args.slo:
        from repro.obs.slo import SLOEngine

        # evaluate BEFORE exporting so slo.breach / slo.burn_rate records
        # land in the written trace
        slo_report = SLOEngine().evaluate(obs.tracer.iter_records(),
                                          tracer=obs.tracer)
        print(slo_report.render())
        print(f"  slo: {'all objectives met' if slo_report.ok else 'FAIL'}")
    if args.trace is not None:
        p = obs.tracer.write_jsonl(_out_path(args.trace, eid, multi))
        print(f"  trace → {p} ({len(obs.tracer)} records)")
    if args.chrome_trace is not None:
        p = obs.tracer.write_chrome_trace(_out_path(args.chrome_trace, eid, multi))
        print(f"  chrome trace → {p}")
    if args.metrics_out is not None:
        p = metrics_to_json(obs.registry, _out_path(args.metrics_out, eid, multi))
        print(f"  metrics → {p} ({len(obs.registry)} series)")
    if args.profile and obs.profiler is not None:
        print(obs.profiler.report())


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    EXPERIMENTS.update(_registry())
    parser = argparse.ArgumentParser(
        prog="repro", description="DF3 reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="experiment id (e.g. F4, E5, A2) or 'all'")
    runp.add_argument("--seed", type=int, default=None, help="override the seed")
    runp.add_argument("--json", metavar="PATH", default=None,
                      help="write the ExperimentResult as JSON")
    runp.add_argument("--trace", metavar="PATH", default=None,
                      help="capture a structured trace as JSONL")
    runp.add_argument("--trace-kinds", metavar="K1,K2", default=None,
                      help="keep only these record kinds (comma-separated, "
                           "e.g. request,sample,slo; default all)")
    runp.add_argument("--trace-stream", action="store_true",
                      help="stream the trace to --trace incrementally "
                           "(bounded memory; requires --trace)")
    runp.add_argument("--flight-recorder", type=int, metavar="N", default=None,
                      help="keep only the last N trace records (ring buffer)")
    runp.add_argument("--slo", action="store_true",
                      help="evaluate default SLOs over the trace and print "
                           "the compliance table")
    runp.add_argument("--chrome-trace", metavar="PATH", default=None,
                      help="capture a trace in Chrome trace-event format")
    runp.add_argument("--profile", action="store_true",
                      help="print per-subsystem wall-clock profile")
    runp.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="write the metrics registry snapshot as JSON")
    runp.add_argument("--kernel", choices=("scalar", "vector", "surrogate"),
                      default=None,
                      help="simulation kernel (default: $REPRO_KERNEL or "
                           "'vector'; scalar/vector are byte-identical, "
                           "surrogate is tolerance-budgeted — see "
                           "repro.thermal.budget)")
    runp.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes for sweep experiments (default 1)")
    runp.add_argument("--backend", choices=("flat", "dag"), default=None,
                      help="sweep execution backend (default: $REPRO_BACKEND "
                           "or 'dag'; outputs are byte-identical either way)")
    runp.add_argument("--progress", action="store_true",
                      help="live progress line on stderr (frontier / computed"
                           " / cached, worker deaths and retries)")
    runp.add_argument("--report-json", metavar="PATH", default=None,
                      help="write the RunReport (points, nodes, backend "
                           "stats, timings) as JSON")
    runp.add_argument("--no-cache", action="store_true",
                      help="neither read nor write the result cache")
    runp.add_argument("--cache-dir", metavar="PATH",
                      default=os.environ.get("REPRO_CACHE_DIR", ".repro_cache"),
                      help="result cache directory (default .repro_cache, "
                           "or $REPRO_CACHE_DIR when set)")
    srvp = sub.add_parser("serve",
                          help="serve a live digital twin over HTTP (REST + SSE)")
    srvp.add_argument("--host", default="127.0.0.1",
                      help="bind address (default 127.0.0.1)")
    srvp.add_argument("--port", type=int, default=8008,
                      help="bind port (default 8008; 0 picks a free port)")
    srvp.add_argument("--seed", type=int, default=17,
                      help="scenario seed (default 17 — the F3 reference run)")
    srvp.add_argument("--days", type=float, default=1.0,
                      help="simulated days of workload (default 1.0)")
    srvp.add_argument("--month", type=int, default=1,
                      help="start month, 1-12 (default 1: winter)")
    srvp.add_argument("--districts", type=int, default=2,
                      help="city size: number of districts (default 2)")
    srvp.add_argument("--buildings", type=int, default=2,
                      help="buildings per district (default 2)")
    srvp.add_argument("--dc-nodes", type=int, default=8,
                      help="datacenter nodes (default 8)")
    srvp.add_argument("--pace", type=float, default=0.0, metavar="X",
                      help="real seconds per simulated second (default 0: "
                           "free-run as fast as the engine goes)")
    srvp.add_argument("--slice-s", type=float, default=300.0,
                      help="max simulated seconds per engine slice "
                           "(command/pause granularity; default 300)")
    srvp.add_argument("--telemetry-every-s", type=float, default=900.0,
                      help="simulated seconds between SSE telemetry "
                           "publishes (default 900)")
    srvp.add_argument("--flight-recorder", type=int, default=65536, metavar="N",
                      help="trace ring-buffer capacity (default 65536)")
    srvp.add_argument("--start-paused", action="store_true",
                      help="boot holding at t0; resume via POST /api/control")
    srvp.add_argument("--kernel", choices=("scalar", "vector", "surrogate"),
                      default=None,
                      help="simulation kernel (default: $REPRO_KERNEL or "
                           "'vector')")
    srvp.add_argument("--verbose", action="store_true",
                      help="log one line per HTTP request")
    repp = sub.add_parser("report",
                          help="render a trace into a self-contained HTML report")
    repp.add_argument("trace", help="JSONL trace file (from run --trace)")
    repp.add_argument("-o", "--out", metavar="PATH", default="report.html",
                      help="output HTML file (default report.html)")
    repp.add_argument("--title", default=None,
                      help="report title (default: derived from the trace name)")
    repp.add_argument("--slowest", type=int, default=5, metavar="N",
                      help="span waterfalls for the N slowest requests")
    repp.add_argument("--run-report", metavar="PATH", default=None,
                      help="RunReport JSON (from run --report-json) to render "
                           "as the orchestration Gantt/counters panel")
    difp = sub.add_parser(
        "diff", help="perf-regression radar: structurally compare two "
                     "run/report/bench JSON artifacts with tolerance bands")
    difp.add_argument("base", help="baseline artifact (JSON or JSONL)")
    difp.add_argument("candidate", help="candidate artifact to compare")
    difp.add_argument("--rel-tol", type=float, default=0.2, metavar="F",
                      help="relative tolerance band for timing/speedup keys "
                           "(default 0.2 = ±20%%)")
    difp.add_argument("--abs-floor", type=float, default=0.25, metavar="F",
                      help="ignore timing deltas smaller than this absolute "
                           "amount (default 0.25)")
    difp.add_argument("--json", metavar="PATH", default=None,
                      help="also write the diff report as JSON")
    args = parser.parse_args(argv)

    if args.command == "serve":
        if args.kernel is not None:
            os.environ["REPRO_KERNEL"] = args.kernel
        from repro.service import ScenarioConfig, TwinConfig, build_twin, serve

        try:
            twin = build_twin(
                ScenarioConfig(seed=args.seed, month=args.month,
                               duration_days=args.days,
                               n_districts=args.districts,
                               buildings_per_district=args.buildings,
                               dc_nodes=args.dc_nodes),
                TwinConfig(slice_s=args.slice_s,
                           telemetry_every_s=args.telemetry_every_s,
                           pace=args.pace,
                           ring_capacity=args.flight_recorder,
                           start_paused=args.start_paused),
            )
        except ValueError as exc:
            print(f"bad scenario: {exc}", file=sys.stderr)
            return 2
        scen = twin.scenario
        print(f"serving DF3 twin on http://{args.host}:{args.port or '?'} — "
              f"{scen.config.n_districts} districts, "
              f"{sum(scen.submitted.values())} requests over "
              f"{args.days:g} sim-days")
        print("  dashboard: /   health: /healthz   stream: /events   "
              "state: /api/state")
        try:
            serve(twin, host=args.host, port=args.port, verbose=args.verbose)
        except KeyboardInterrupt:
            print("\nshutting down")
        except OSError as exc:
            print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "report":
        from repro.obs.report import report_from_jsonl

        trace = Path(args.trace)
        if not trace.exists():
            print(f"no such trace file: {trace}", file=sys.stderr)
            return 2
        run_report = None
        if args.run_report is not None:
            rr = Path(args.run_report)
            if not rr.exists():
                print(f"no such run report: {rr}", file=sys.stderr)
                return 2
            run_report = json.loads(rr.read_text(encoding="utf-8"))
        title = args.title or f"DF3 run report — {trace.stem}"
        p = report_from_jsonl(trace, args.out, title=title,
                              slowest_n=args.slowest, run_report=run_report)
        print(f"report → {p} ({p.stat().st_size / 1024:.0f} KiB)")
        return 0

    if args.command == "diff":
        from repro.obs.diff import diff_files

        try:
            diff = diff_files(args.base, args.candidate,
                              rel_tol=args.rel_tol, abs_floor=args.abs_floor)
        except (OSError, ValueError) as exc:
            print(f"cannot diff: {exc}", file=sys.stderr)
            return 2
        if args.json is not None:
            out = Path(args.json)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(diff.to_dict(), indent=2,
                                      sort_keys=True) + "\n",
                           encoding="utf-8")
        print(diff.render())
        return 0 if diff.ok else 1

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (desc, _) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {desc}")
        return 0

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.trace_stream and not args.trace:
        print("--trace-stream needs --trace PATH", file=sys.stderr)
        return 2
    if args.trace_stream and args.flight_recorder:
        print("--trace-stream and --flight-recorder are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.flight_recorder is not None and args.flight_recorder < 1:
        print(f"--flight-recorder must be >= 1, got {args.flight_recorder}",
              file=sys.stderr)
        return 2
    if args.kernel is not None:
        # via the environment so sweep worker processes inherit the choice
        os.environ["REPRO_KERNEL"] = args.kernel
    ids = list(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment.upper()]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; try 'repro list'",
              file=sys.stderr)
        return 2
    multi = len(ids) > 1
    from repro.runner import ResultCache, SweepRunner

    cache = None if args.no_cache else ResultCache(Path(args.cache_dir))
    for eid in ids:
        _, fn = EXPERIMENTS[eid]
        kwargs = {}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        obs = _build_obs(args, eid, multi)  # fresh bundle per experiment
        # an instrumented run must execute to have something to observe
        runner = SweepRunner(jobs=args.jobs,
                             cache=None if obs is not None else cache,
                             backend=args.backend,
                             progress=(_progress_printer(eid)
                                       if args.progress else None))
        t0 = time.time()
        with obs_mod.obs_session(obs) if obs is not None else nullcontext():
            try:
                report = runner.run_experiment(fn, **kwargs)
            except TypeError:
                report = runner.run_experiment(fn)  # no seed parameter
        if args.progress:
            print(file=sys.stderr)      # finish the live progress line
        result = report.result
        print(result)
        if report.points:
            detail = (f"; {report.points} points: "
                      f"{report.computed} computed, {report.cached} cached")
        else:
            detail = "; result cached" if report.cached else ""
        print(f"({eid} completed in {time.time() - t0:.1f}s{detail})")
        if args.report_json is not None:
            if not report.experiment:       # non-sweep runs don't know it
                report.experiment = eid
            rp = _out_path(args.report_json, eid, multi)
            rp.write_text(json.dumps(report.to_dict(), indent=2,
                                     sort_keys=True) + "\n", encoding="utf-8")
            print(f"  run report → {rp}")
        _write_artefacts(args, obs, result, eid, multi)
        print()
    if cache is not None and cache.stats.hits + cache.stats.misses:
        print(f"cache {args.cache_dir}: {cache.stats}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
