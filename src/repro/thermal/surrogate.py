"""Reduced-order surrogate kernel: district-aggregate thermal state.

The third kernel tier (``--kernel surrogate``, DESIGN.md §2.18).  The exact
kernels integrate every room's 2R2C state each tick — O(rooms) work that
dominates simulation time at 100×–1000× city scale even after the vector
kernel removed the interpreter overhead.  The surrogate collapses each
*aggregate* district to one 2R2C node plus one PI controller and advances
the whole city in a handful of fused numpy operations per tick:

* **warm-up** — for the first ``warmup_ticks`` ticks the city runs the
  unmodified vector kernel while the controller passively records each
  district's mean power fraction and mean heater power;
* **switch** — a least-squares map ``p̄_heat ≈ a·p̄f + b`` is fitted per
  district from the warm-up window (the response of the DVFS ladder +
  filler occupancy to the PI command), per-room offsets from the district
  mean are frozen, and every aggregate district's servers are quiesced
  (filler preempted, boards powered off, smart-grid actuation masked);
* **aggregate tick** — one clipped PI step on the district-mean error, the
  fitted power map, and the exact mean 2R2C update (identical rooms make
  the mean dynamics exact — the model error is confined to the clipped-PI
  mean and the power map).  Reconstructed per-room temperatures
  (``mean + frozen offset``) are written back into the fused flat arrays,
  so every consumer — regulators, comfort tracking, the twin's views —
  keeps reading live state through unchanged APIs.

A deterministic **sample** of districts (drawn from the dedicated
``surrogate-calibration`` RNG stream, so enabling the surrogate never
perturbs any other stream's draw order) never aggregates: those districts
run the exact vector path end to end and are asserted byte-identical to a
pure vector run.  Aggregate districts **materialise** back to the exact
path on demand — an edge/cloud request targeting them, a churn fault, or
the district-mean error exceeding ``slo_zoom_threshold_c`` — and *lazy
zoom-in* re-integrates any aggregate district's trajectory exactly from
the last checkpointed aggregate state without touching live state.

Error discipline: the declared tolerance budget lives in
:mod:`repro.thermal.budget` and is enforced by the differential fuzz
harness in ``tests/test_kernel_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.thermal import budget

__all__ = ["SurrogateConfig", "DistrictAggregateModel", "SurrogateController",
           "DistrictZoom"]


@dataclass(frozen=True)
class SurrogateConfig:
    """Knobs of the surrogate tier.

    ``warmup_ticks`` exact ticks feed the calibration fit; ``sample_districts``
    districts (drawn deterministically from the ``surrogate-calibration``
    stream) stay on the exact path forever; aggregate state is checkpointed
    every ``checkpoint_every`` ticks for lazy zoom-in; a district whose mean
    setpoint error exceeds ``slo_zoom_threshold_c`` is materialised (the
    SLO-flagged case).
    """

    warmup_ticks: int = 12
    sample_districts: int = 1
    checkpoint_every: int = 16
    slo_zoom_threshold_c: float = 3.0

    def __post_init__(self) -> None:
        if self.warmup_ticks < 2:
            raise ValueError("warmup_ticks must be >= 2 (the fit needs a window)")
        if self.sample_districts < 0:
            raise ValueError("sample_districts must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.slo_zoom_threshold_c <= 0:
            raise ValueError("slo_zoom_threshold_c must be > 0")


class DistrictAggregateModel:
    """The aggregate 2R2C node: exact mean dynamics of identical rooms.

    All rooms of a middleware-built city share one
    :class:`~repro.thermal.rc_model.RoomThermalParams`, so the mean of the
    per-room forward-Euler updates equals the update of the means for every
    linear term — the only approximation upstream is the mean heater power.
    ``step`` is vectorised over districts; replay calls it on length-1
    arrays, and elementwise IEEE-754 arithmetic makes the replayed floats
    bit-identical to the live ones.
    """

    def __init__(self, c_air: float, c_env: float, g_ie: float, g_ea: float,
                 g_inf: float, dt_max: float):
        if min(c_air, c_env) <= 0 or min(g_ie, g_ea, g_inf) < 0 or dt_max <= 0:
            raise ValueError("invalid aggregate thermal parameters")
        self.c_air = float(c_air)
        self.c_env = float(c_env)
        self.g_ie = float(g_ie)
        self.g_ea = float(g_ea)
        self.g_inf = float(g_inf)
        self.dt_max = float(dt_max)

    def step(self, t_air, t_env, dt: float, t_out: float, p_heat,
             p_gain: float, p_solar: float):
        """One tick: returns the new ``(t_air, t_env)`` arrays."""
        ta, te, _ = self.step_with_flux(t_air, t_env, dt, t_out, p_heat,
                                        p_gain, p_solar)
        return ta, te

    def step_with_flux(self, t_air, t_env, dt: float, t_out: float, p_heat,
                       p_gain: float, p_solar: float):
        """Tick + the external heat (J) that entered each district node.

        The flux fold mirrors the update's own sub-step terms, so
        ``c_air·Δt_air + c_env·Δt_env − flux`` is pure float round-off —
        the energy-balance property the test suite pins against
        :data:`repro.thermal.budget.AGGREGATE_ENERGY_RESIDUAL_REL`.
        """
        nsub = max(1, int(np.ceil(dt / self.dt_max)))
        h = dt / nsub
        ta, te = t_air, t_env
        flux = np.zeros_like(np.asarray(ta, dtype=np.float64))
        for _ in range(nsub):
            q_ie = self.g_ie * (te - ta)
            q_inf = self.g_inf * (t_out - ta)
            q_ea = self.g_ea * (t_out - te)
            flux = flux + h * (q_inf + q_ea + p_heat + p_gain + p_solar)
            ta = ta + h * (q_ie + q_inf + p_heat + p_gain) / self.c_air
            te = te + h * (-q_ie + q_ea + p_solar) / self.c_env
        return ta, te, flux


def fit_power_map(pf_samples, heat_samples) -> Tuple[float, float]:
    """Least-squares ``p̄_heat ≈ a·p̄f + b`` from one district's warm-up.

    Degenerate windows fall back gracefully: a constant power fraction gets
    a proportional map (so the prediction still responds to PI commands),
    and an all-zero window predicts zero.
    """
    x = np.asarray(pf_samples, dtype=np.float64)
    y = np.asarray(heat_samples, dtype=np.float64)
    var = float(x.var())
    if var > 1e-12:
        a = float(((x - x.mean()) * (y - y.mean())).mean() / var)
        b = float(y.mean() - a * x.mean())
    elif float(x.mean()) > 1e-9:
        a = float(y.mean() / x.mean())
        b = 0.0
    else:
        a = 0.0
        b = float(y.mean())
    return a, b


class DistrictZoom:
    """Read-only lazy zoom-in on one (current or former) aggregate district.

    Materialises the district's full per-room trajectory by re-integrating
    the aggregate model exactly from the last checkpoint and adding the
    frozen per-room offsets.  Never mutates controller state — zoom-in
    followed by zoom-out (dropping this object) leaves the aggregate state
    bit-identical, by construction.
    """

    def __init__(self, controller: "SurrogateController", district: int):
        self._ctl = controller
        self.district = district

    def aggregate_trajectory(self) -> List[Tuple[float, float]]:
        """Replayed ``(t̄_air, t̄_env)`` per tick since the last checkpoint."""
        return self._ctl.replay(self.district)

    def room_trajectory(self) -> np.ndarray:
        """Per-room air temperatures, shape ``(ticks, rooms)``."""
        bars = self.aggregate_trajectory()
        delta = self._ctl.delta_air(self.district)
        if not bars:
            return np.empty((0, delta.size))
        return np.asarray([t for t, _ in bars])[:, None] + delta[None, :]


class SurrogateController:
    """Owns the surrogate life cycle for one :class:`DF3Middleware`.

    The middleware delegates its three vector tick stages here once
    :meth:`begin_tick` reports the warm-up window is over; before that the
    controller only records calibration samples off the unmodified vector
    path.  See the module docstring for the phase diagram.
    """

    def __init__(self, mw, config: Optional[SurrogateConfig] = None):
        self.mw = mw
        self.config = config or SurrogateConfig()
        cfg = mw.config
        bank = mw._bank
        fused = mw._fused_thermal
        if bank is None or fused is None:
            raise ValueError("surrogate kernel requires the fused vector substrate")
        self.n_districts = cfg.n_districts
        self.rooms_per_district = (
            cfg.buildings_per_district * cfg.rooms_per_building)
        # the aggregate model is only exact-mean when every room (and every
        # regulator, and every heater spec) in the city is identical — true
        # for every city the middleware builds from one MiddlewareConfig
        for name, arr in (("c_air", fused.c_air), ("c_env", fused.c_env),
                          ("g_ie", fused.g_ie), ("g_ea", fused.g_ea),
                          ("g_inf", fused.g_inf), ("gain_w", fused.gain_w),
                          ("occ_lo", fused.occ_lo), ("occ_hi", fused.occ_hi),
                          ("aperture", fused.aperture),
                          ("kp", bank._kp), ("ki", bank._ki),
                          ("int_limit", bank._int_limit),
                          ("off_threshold", bank._off_threshold)):
            if np.unique(np.asarray(arr)).size != 1:
                raise ValueError(
                    f"surrogate kernel requires a homogeneous fleet ({name} varies)")
        specs = {(e[0].spec.p_max_w, e[0].spec.heat_fraction)
                 for e in mw._bank_entries}
        if len(specs) != 1:
            raise ValueError("surrogate kernel requires one heater spec fleet-wide")
        p_max_w, heat_fraction = specs.pop()
        self._heat_fraction = float(heat_fraction)
        self._p_heat_max = float(p_max_w) * self._heat_fraction
        self.model = DistrictAggregateModel(
            float(fused.c_air[0]), float(fused.c_env[0]), float(fused.g_ie[0]),
            float(fused.g_ea[0]), float(fused.g_inf[0]), float(fused._dt_max))
        self._gain_w = float(fused.gain_w[0])
        self._occ_lo = float(fused.occ_lo[0])
        self._occ_hi = float(fused.occ_hi[0])
        self._aperture = float(fused.aperture[0])
        self._kp = float(bank._kp[0])
        self._ki = float(bank._ki[0])
        self._int_limit = float(bank._int_limit[0])
        self._off_threshold = float(bank._off_threshold[0])

        # deterministic sample selection from the DEDICATED stream: deriving
        # it from (seed, "surrogate-calibration") means enabling the
        # surrogate never advances any other stream's state
        rng = mw.rngs.stream("surrogate-calibration")
        k = min(self.config.sample_districts, self.n_districts)
        perm = rng.permutation(self.n_districts)
        self.sample_districts: List[int] = sorted(int(d) for d in perm[:k])
        self.live = set(self.sample_districts)

        self.switched = False
        self._tick_index = 0
        self._warm_pf: List[np.ndarray] = []
        self._warm_heat: List[np.ndarray] = []
        #: (sim time, district, reason) for every on-demand materialisation
        self.materialised: List[Tuple[float, int, str]] = []
        self.modeled_energy_j = 0.0
        # budget-monitor state (observability only; never feeds back into
        # the simulation): rolling sample-vs-aggregate drift and zoom count
        self.last_drift_c = 0.0
        self.max_drift_c = 0.0
        self.zooms = 0
        # filled at the switch
        self.agg_ids: List[int] = []
        self.fit_a: Dict[int, float] = {}
        self.fit_b: Dict[int, float] = {}
        self._t_air_bar = np.empty(0)
        self._t_env_bar = np.empty(0)
        self._int_bar = np.empty(0)
        self._u_bar = np.empty(0)
        self._sbar = np.empty(0)
        self._delta_air: Dict[int, np.ndarray] = {}
        self._delta_env: Dict[int, np.ndarray] = {}
        self._delta_int: Dict[int, np.ndarray] = {}
        # row-stacked copies of the offsets and fit coefficients, aligned
        # with agg_ids, so each tick is pure broadcasts — no district loops
        self._delta_air_stack = np.empty((0, self.rooms_per_district))
        self._delta_env_stack = np.empty((0, self.rooms_per_district))
        self._fit_a_stack = np.empty(0)
        self._fit_b_stack = np.empty(0)
        self._agg_idx = np.empty(0, dtype=np.intp)
        self._live_room_idx = np.arange(len(bank), dtype=np.intp)
        self._live_buildings = set(mw.buildings)
        self._mask: Optional[np.ndarray] = None
        self._quiesce_pending: List = []
        self._times: List[float] = []
        self._dts: List[float] = []
        self._heat_hist: Dict[int, List[float]] = {}
        self._tbar_hist: Dict[int, List[Tuple[float, float]]] = {}
        self._checkpoints: Dict[int, List[Tuple[int, float, float]]] = {}

    # ------------------------------------------------------------------ #
    # phase machinery
    # ------------------------------------------------------------------ #
    def begin_tick(self, now: float) -> bool:
        """Advance the tick counter; switch when warm-up ends.

        Returns True once the surrogate owns the tick stages (the middleware
        then routes regulation/thermal through this controller).
        """
        self._tick_index += 1
        if not self.switched and self._tick_index > self.config.warmup_ticks:
            self._switch(now)
        return self.switched

    def record_warmup(self, p_heat_list) -> None:
        """One calibration sample per district off the exact thermal stage."""
        if self.switched:
            return
        rpd = self.rooms_per_district
        pf = np.asarray(self.mw._bank.power_fraction, dtype=np.float64)
        heat = np.asarray(p_heat_list, dtype=np.float64)
        self._warm_pf.append(pf.reshape(self.n_districts, rpd).mean(axis=1))
        self._warm_heat.append(heat.reshape(self.n_districts, rpd).mean(axis=1))

    def _d_slice(self, district: int) -> slice:
        rpd = self.rooms_per_district
        return slice(district * rpd, (district + 1) * rpd)

    def _rebuild_live_index(self) -> None:
        rpd = self.rooms_per_district
        live = sorted(self.live)
        if live:
            self._live_room_idx = np.concatenate(
                [np.arange(d * rpd, (d + 1) * rpd, dtype=np.intp) for d in live])
        else:
            self._live_room_idx = np.empty(0, dtype=np.intp)
        bpd = self.mw.config.buildings_per_district
        self._live_buildings = {
            f"district-{d}/building-{b}" for d in live for b in range(bpd)}

    def _switch(self, now: float) -> None:
        mw = self.mw
        bank = mw._bank
        fused = mw._fused_thermal
        rpd = self.rooms_per_district
        self.agg_ids = [d for d in range(self.n_districts) if d not in self.live]
        pf = np.stack(self._warm_pf)        # (warmup_ticks, n_districts)
        heat = np.stack(self._warm_heat)
        for d in range(self.n_districts):
            self.fit_a[d], self.fit_b[d] = fit_power_map(pf[:, d], heat[:, d])
        t_air = np.asarray(fused.t_air).reshape(self.n_districts, rpd)
        t_env = np.asarray(fused.t_env).reshape(self.n_districts, rpd)
        integral = np.asarray(bank._integral).reshape(self.n_districts, rpd)
        agg = np.asarray(self.agg_ids, dtype=np.intp)
        self._t_air_bar = t_air[agg].mean(axis=1) if agg.size else np.empty(0)
        self._t_env_bar = t_env[agg].mean(axis=1) if agg.size else np.empty(0)
        self._int_bar = integral[agg].mean(axis=1) if agg.size else np.empty(0)
        self._u_bar = np.zeros(agg.size)
        self._sbar = np.zeros(agg.size)
        for pos, d in enumerate(self.agg_ids):
            self._delta_air[d] = t_air[d] - self._t_air_bar[pos]
            self._delta_env[d] = t_env[d] - self._t_env_bar[pos]
            self._delta_int[d] = integral[d] - self._int_bar[pos]
            self._heat_hist[d] = []
            self._tbar_hist[d] = []
            self._checkpoints[d] = [
                (0, float(self._t_air_bar[pos]), float(self._t_env_bar[pos]))]
        if self.agg_ids:
            self._delta_air_stack = np.stack(
                [self._delta_air[d] for d in self.agg_ids])
            self._delta_env_stack = np.stack(
                [self._delta_env[d] for d in self.agg_ids])
            self._fit_a_stack = np.asarray(
                [self.fit_a[d] for d in self.agg_ids])
            self._fit_b_stack = np.asarray(
                [self.fit_b[d] for d in self.agg_ids])
            self._agg_idx = agg
        self._rebuild_live_index()
        # quiesce: masked out of smart-grid actuation, filler preempted and
        # boards powered off as they drain (§III-A off-when-no-heat, en masse)
        self._mask = np.ones(len(bank), dtype=bool)
        for d in self.agg_ids:
            self._mask[self._d_slice(d)] = False
        mw.smartgrid.set_actuation_mask(self._mask)
        self._quiesce_pending = [
            mw._bank_entries[i][0]
            for d in self.agg_ids
            for i in range(self._d_slice(d).start, self._d_slice(d).stop)]
        self.switched = True
        self._warm_pf = []
        self._warm_heat = []
        if mw.obs.active:
            mw.obs.emit("surrogate", "surrogate.switch", now,
                        aggregate_districts=len(self.agg_ids),
                        sample_districts=list(self.sample_districts))

    # ------------------------------------------------------------------ #
    # the three delegated tick stages
    # ------------------------------------------------------------------ #
    def tick_regulation(self, now: float, dt: float) -> None:
        """Exact PI for live rooms, one clipped PI per aggregate district."""
        mw = self.mw
        bank = mw._bank
        temps_parts = []
        for bname, building in mw.buildings.items():
            if bname not in self._live_buildings:
                continue
            temps = building.temperatures
            ctrl = mw.collectives.get(bname)
            if ctrl is not None and ctrl.active:
                ctrl.update(temps)
            temps_parts.append(temps)
        if temps_parts:
            bank.update_subset(dt, np.concatenate(temps_parts),
                               self._live_room_idx)
        if self.agg_ids:
            rpd = self.rooms_per_district
            agg = self._agg_idx
            sp = np.asarray(bank.setpoints).reshape(self.n_districts, rpd)
            sbar = sp[agg].mean(axis=1)
            err = sbar - self._t_air_bar
            self._sbar = sbar
            self._int_bar = np.clip(self._int_bar + err * dt / 3600.0,
                                    -self._int_limit, self._int_limit)
            u = np.clip(self._kp * err + self._ki * self._int_bar, 0.0, 1.0)
            self._u_bar = u
            # broadcast the aggregate command into the bank rows so every
            # consumer (heat-wanted masks, authorised power, capacity logs,
            # cloud routing, twin views) keeps working off aggregate views
            pf = bank._power_fraction.reshape(self.n_districts, rpd)
            pf[agg] = u[:, None]
            le = bank._last_error.reshape(self.n_districts, rpd)
            le[agg] = err[:, None]
            bank.version += 1

    def quiesce_pending(self) -> None:
        """Drain the aggregate fleet: preempt filler, power off idle boards."""
        if not self._quiesce_pending:
            return
        still = []
        for server in self._quiesce_pending:
            server.preempt_kind("filler")
            if server.enabled:
                if server.idle:
                    server.power_off()
                else:
                    still.append(server)    # real work drains first
        self._quiesce_pending = still

    def tick_thermal(self, now: float, dt: float) -> None:
        """Exact subset step for live rooms + one aggregate step, then the
        comfort/ledger/energy bookkeeping off the reconstructed arrays."""
        mw = self.mw
        bank = mw._bank
        fused = mw._fused_thermal
        t_out = fused.weather.outdoor_temperature(now)
        hod = fused._cal.hour_of_day(now)
        irr = fused.weather.solar_irradiance(now)
        month = mw.cal.month(now)
        rpd = self.rooms_per_district

        # --- live rooms: the vector kernel's elementwise update, gathered --
        idx = self._live_room_idx
        live_p_heat: List[float] = []
        if idx.size:
            rooms = fused.rooms
            live_p_heat = [rooms[i].heater_power_w() for i in idx.tolist()]
            p_heat = np.array(live_p_heat)
            p_gain = np.where(
                (fused.occ_lo[idx] <= hod) & (hod < fused.occ_hi[idx]),
                fused.gain_w[idx], 0.0)
            p_solar = fused.aperture[idx] * irr * 0.6
            nsub = max(1, int(np.ceil(dt / fused._dt_max)))
            h = dt / nsub
            g_ie, g_ea, g_inf = fused.g_ie[idx], fused.g_ea[idx], fused.g_inf[idx]
            c_air, c_env = fused.c_air[idx], fused.c_env[idx]
            ta, te = fused.t_air[idx], fused.t_env[idx]
            q_adj = np.zeros(idx.size)
            for _ in range(nsub):
                q_ie = g_ie * (te - ta)
                q_inf = g_inf * (t_out - ta)
                q_ea = g_ea * (t_out - te)
                ta = ta + h * (q_ie + q_inf + q_adj + p_heat + p_gain) / c_air
                te = te + h * (-q_ie + q_ea + p_solar) / c_env
            fused.t_air[idx] = ta
            fused.t_env[idx] = te

        # --- aggregate districts: one fused step, then reconstruction ------
        heat = np.empty(0)
        wanted_agg = np.empty(0, dtype=bool)
        if self.agg_ids:
            agg = self._agg_idx
            a = self._fit_a_stack
            b = self._fit_b_stack
            wanted_agg = self._u_bar > self._off_threshold
            heat = np.clip(a * self._u_bar + b, 0.0, self._p_heat_max)
            heat = np.where(wanted_agg, heat, 0.0)
            p_gain_bar = (self._gain_w
                          if self._occ_lo <= hod < self._occ_hi else 0.0)
            p_solar_bar = self._aperture * irr * 0.6
            self._t_air_bar, self._t_env_bar = self.model.step(
                self._t_air_bar, self._t_env_bar, dt, t_out, heat,
                p_gain_bar, p_solar_bar)
            t_air_grid = fused.t_air.reshape(self.n_districts, rpd)
            t_env_grid = fused.t_env.reshape(self.n_districts, rpd)
            # scalar-per-district + offset row ≡ column broadcast + stacked
            # offsets, elementwise — bit-identical reconstruction in one op
            t_air_grid[agg] = self._t_air_bar[:, None] + self._delta_air_stack
            t_env_grid[agg] = self._t_env_bar[:, None] + self._delta_env_stack
            self._times.append(now)
            self._dts.append(dt)
            n_ticks = len(self._times)
            heat_l = heat.tolist()
            ta_l = self._t_air_bar.tolist()
            te_l = self._t_env_bar.tolist()
            hh, th = self._heat_hist, self._tbar_hist
            for pos, d in enumerate(self.agg_ids):
                hh[d].append(heat_l[pos])
                th[d].append((ta_l[pos], te_l[pos]))
            if n_ticks % self.config.checkpoint_every == 0:
                cps = self._checkpoints
                for pos, d in enumerate(self.agg_ids):
                    cps[d].append((n_ticks, ta_l[pos], te_l[pos]))

        # --- comfort: same batched entry point as the vector kernel --------
        nb = len(fused.buildings)
        mw.comfort.add_rows(dt, fused.t_air.reshape(nb, -1),
                            np.asarray(bank.setpoints).reshape(nb, -1),
                            month=month)

        # --- useful-heat ledger + modelled energy --------------------------
        add_useful = mw.ledger.add_useful_heat
        if idx.size:
            wanted_live = bank.heat_wanted_mask()[idx].tolist()
            for p, w in zip(live_p_heat, wanted_live):
                if p > 0 and w:
                    add_useful(p * dt)
        if self.agg_ids:
            heat_l = heat.tolist()
            for h, w in zip(heat_l, wanted_agg.tolist()):
                if w and h > 0:
                    add_useful(h * rpd * dt)
            # quiesced boards consume no metered power; the district's
            # electrical draw is modelled from the same fitted map
            p_elec = sum((heat / self._heat_fraction).tolist())
            self.modeled_energy_j += p_elec * rpd * dt

        # --- SLO flagging: a drifting district zooms back in ---------------
        if self.agg_ids:
            dev = np.abs(self._sbar - self._t_air_bar)
            drift = float(dev.max()) if dev.size else 0.0
            self.last_drift_c = drift
            if drift > self.max_drift_c:
                self.max_drift_c = drift
            if mw.obs.active:
                # budget-monitor telemetry at checkpoint cadence: where the
                # worst aggregate district sits inside the declared budget
                if len(self._times) % self.config.checkpoint_every == 0:
                    mw.obs.emit(
                        "surrogate", "surrogate.drift", now,
                        max_drift_c=round(drift, 6),
                        budget_c=budget.DISTRICT_MEAN_TEMP_TOL_C,
                        aggregated=len(self.agg_ids), live=len(self.live))
                mw.obs.gauge("surrogate_drift_c").set(round(drift, 6))
                mw.obs.gauge("surrogate_aggregated_districts").set(
                    len(self.agg_ids))
            over = np.flatnonzero(dev > self.config.slo_zoom_threshold_c)
            for d in [self.agg_ids[i] for i in over.tolist()]:
                self.ensure_live(d, reason="slo")

    # ------------------------------------------------------------------ #
    # materialise-on-demand (live zoom-in)
    # ------------------------------------------------------------------ #
    def ensure_live(self, district: int, reason: str) -> None:
        """Return ``district`` to the exact per-room path, immediately.

        The reconstructed per-room temperatures already *are* the live state
        (they sit in the fused flat arrays); this restores the per-room PI
        integrals from the aggregate + frozen offsets, unmasks smart-grid
        actuation and re-actuates the boards, so the next event sees a fully
        materialised district.
        """
        if not self.switched or district in self.live:
            return
        mw = self.mw
        bank = mw._bank
        pos = self.agg_ids.index(district)
        sl = self._d_slice(district)
        integ = np.clip(self._int_bar[pos] + self._delta_int[district],
                        -self._int_limit, self._int_limit)
        bank._integral[sl] = integ
        bank.version += 1
        self.agg_ids.pop(pos)
        for name in ("_t_air_bar", "_t_env_bar", "_int_bar", "_u_bar", "_sbar",
                     "_fit_a_stack", "_fit_b_stack"):
            arr = getattr(self, name)
            if arr.size > pos:
                setattr(self, name, np.delete(arr, pos))
        for name in ("_delta_air_stack", "_delta_env_stack"):
            setattr(self, name, np.delete(getattr(self, name), pos, axis=0))
        self._agg_idx = np.asarray(self.agg_ids, dtype=np.intp)
        self.live.add(district)
        self._rebuild_live_index()
        self._mask[sl] = True
        for i in range(sl.start, sl.stop):
            server, _d = mw._bank_entries[i]
            bank.regulators[i].apply_to_server(server)
        self.materialised.append((mw.engine.now, district, reason))
        if mw.obs.active:
            mw.obs.emit("surrogate", "surrogate.materialize", mw.engine.now,
                        district=district, reason=reason,
                        live=len(self.live), aggregated=len(self.agg_ids))
            mw.obs.counter("surrogate_materializations").inc()

    # ------------------------------------------------------------------ #
    # lazy zoom-in: exact replay from the last checkpoint
    # ------------------------------------------------------------------ #
    def delta_air(self, district: int) -> np.ndarray:
        """Frozen per-room offsets from the district mean (read-only copy)."""
        return self._delta_air[district].copy()

    def replay(self, district: int) -> List[Tuple[float, float]]:
        """Re-integrate ``district`` from its last checkpoint.

        Weather inputs are recomputed from the recorded tick times (the
        weather series is precomputed and time-indexed, hence exact) and the
        heater power from the recorded per-tick history; the model step is
        the same elementwise code path, so every replayed float is
        bit-identical to the recorded live trajectory.
        """
        if district not in self._tbar_hist:
            raise ValueError(f"district {district} was never aggregated")
        hist = self._heat_hist[district]
        i0, ta0, te0 = self._checkpoints[district][-1]
        fused = self.mw._fused_thermal
        ta = np.array([ta0])
        te = np.array([te0])
        out: List[Tuple[float, float]] = []
        for i in range(i0, len(hist)):
            now = self._times[i]
            t_out = fused.weather.outdoor_temperature(now)
            hod = fused._cal.hour_of_day(now)
            irr = fused.weather.solar_irradiance(now)
            p_gain = self._gain_w if self._occ_lo <= hod < self._occ_hi else 0.0
            p_solar = self._aperture * irr * 0.6
            ta, te = self.model.step(ta, te, self._dts[i], t_out,
                                     np.array([hist[i]]), p_gain, p_solar)
            out.append((float(ta[0]), float(te[0])))
        return out

    def recorded_trajectory(self, district: int) -> List[Tuple[float, float]]:
        """The live ``(t̄_air, t̄_env)`` history replay must reproduce."""
        if district not in self._tbar_hist:
            raise ValueError(f"district {district} was never aggregated")
        i0 = self._checkpoints[district][-1][0]
        return list(self._tbar_hist[district][i0:])

    def zoom_in(self, district: int) -> DistrictZoom:
        """Lazy per-building materialisation; see :class:`DistrictZoom`."""
        if district not in self._tbar_hist:
            raise ValueError(f"district {district} was never aggregated")
        self.zooms += 1
        mw = self.mw
        if mw.obs.active:
            mw.obs.emit("surrogate", "surrogate.zoom", mw.engine.now,
                        district=district, zooms=self.zooms)
            mw.obs.counter("surrogate_zooms").inc()
        return DistrictZoom(self, district)

    # ------------------------------------------------------------------ #
    def aggregate_view(self) -> Dict[int, Dict[str, float]]:
        """Per-district aggregate state for twins/SLO consumers."""
        view: Dict[int, Dict[str, float]] = {}
        rpd = self.rooms_per_district
        bank = self.mw._bank
        fused = self.mw._fused_thermal
        t_air = np.asarray(fused.t_air).reshape(self.n_districts, rpd)
        pf = np.asarray(bank.power_fraction).reshape(self.n_districts, rpd)
        for d in range(self.n_districts):
            view[d] = {
                "mean_temp_c": float(t_air[d].mean()),
                "mean_power_fraction": float(pf[d].mean()),
                "live": d in self.live or not self.switched,
            }
        return view

    def budget_status(self) -> Dict[str, object]:
        """Where the surrogate sits inside its declared error budget.

        JSON-ready: surfaced on the twin's ``/api/state`` (and hence the SSE
        ``state`` feed) and rendered as the budget panel in HTML reports.
        ``drift_budget_share`` is the worst observed sample-vs-aggregate
        drift as a fraction of the declared district-mean tolerance — the
        single number that says how much headroom the tier has left.
        """
        tol = budget.DISTRICT_MEAN_TEMP_TOL_C
        return {
            "switched": self.switched,
            "live_districts": len(self.live),
            "aggregated_districts": len(self.agg_ids),
            "sample_districts": list(self.sample_districts),
            "materializations": len(self.materialised),
            "zooms": self.zooms,
            "last_drift_c": round(self.last_drift_c, 6),
            "max_drift_c": round(self.max_drift_c, 6),
            "drift_budget_share": round(self.max_drift_c / tol, 4),
            "modeled_energy_j": round(self.modeled_energy_j, 3),
            "budget": {
                "district_mean_temp_tol_c": tol,
                "comfort_violation_rate_tol":
                    budget.COMFORT_VIOLATION_RATE_TOL,
                "fleet_energy_rel_tol": budget.FLEET_ENERGY_REL_TOL,
            },
        }
