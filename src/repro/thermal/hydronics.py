"""Hot-water hydronics for digital boilers.

Digital boilers (paper §II-B2: Asperitas AIC24, Stimergy) heat **water**, not
air: server heat goes into a storage tank from which the building draws
domestic hot water and/or feeds a heating loop.  Two properties matter to the
paper's arguments:

* a boiler "can continue to produce hot water independently of heating
  requests" (§III-C) — i.e. the tank absorbs compute heat year-round;
* but once the tank is at its ceiling, further compute heat is **waste heat**
  rejected outdoors, feeding the urban-heat-island discussion (§III-A/C).

The model is a single well-mixed tank with standing losses, a draw profile,
and an overflow (heat-dump) path whose energy is reported to the
:class:`~repro.thermal.heat_island.HeatIslandLedger` by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["DrawProfile", "WaterLoopConfig", "WaterLoop"]

WATER_CP = 4186.0  # J/(kg·K)


@dataclass(frozen=True)
class DrawProfile:
    """Diurnal domestic-hot-water draw profile.

    Residential draw concentrates in a morning and an evening peak.  The
    profile integrates to ``daily_litres`` over 24 h.
    """

    daily_litres: float = 600.0  # a small apartment building
    morning_hour: float = 7.5
    evening_hour: float = 19.5
    peak_width_hours: float = 1.5

    def draw_rate_lps(self, hour_of_day: float) -> float:
        """Draw rate (litres/s) at a local hour."""
        def bump(center: float) -> float:
            d = min(abs(hour_of_day - center), 24.0 - abs(hour_of_day - center))
            return float(np.exp(-0.5 * (d / self.peak_width_hours) ** 2))

        base = 0.15  # fraction of volume drawn uniformly
        w_m, w_e = bump(self.morning_hour), bump(self.evening_hour)
        norm = self.peak_width_hours * np.sqrt(2 * np.pi) * 3600.0 * 2  # two peaks
        peak_lps = (1 - base) * self.daily_litres / norm
        base_lps = base * self.daily_litres / 86400.0
        return base_lps + peak_lps * (w_m + w_e)


@dataclass(frozen=True)
class WaterLoopConfig:
    """Tank and loop parameters.

    Attributes
    ----------
    tank_litres: storage volume.
    t_cold_c: mains water inlet temperature.
    t_target_c: delivery setpoint — tank should sit at or above it.
    t_max_c: hard ceiling; compute heat beyond it is dumped outdoors.
    loss_coeff_w_per_k: standing-loss UA of the tank to its room/plant space.
    t_ambient_c: temperature around the tank for standing losses.
    """

    tank_litres: float = 1000.0
    t_cold_c: float = 12.0
    t_target_c: float = 55.0
    t_max_c: float = 75.0
    loss_coeff_w_per_k: float = 3.0
    t_ambient_c: float = 18.0


class WaterLoop:
    """Well-mixed storage tank fed by boiler (server) heat.

    Call :meth:`step` each tick with the thermal power the boiler produced;
    it returns how much of that power was usefully absorbed and how much had
    to be dumped outdoors (tank at ceiling).
    """

    def __init__(self, config: WaterLoopConfig = WaterLoopConfig(), t_init_c: float | None = None):
        if config.tank_litres <= 0:
            raise ValueError("tank volume must be positive")
        if not (config.t_cold_c < config.t_target_c <= config.t_max_c):
            raise ValueError("need t_cold < t_target <= t_max")
        self.config = config
        self.mass_kg = config.tank_litres  # 1 L ≈ 1 kg
        self.t_tank = float(t_init_c if t_init_c is not None else config.t_target_c)
        self.useful_heat_j = 0.0
        self.dumped_heat_j = 0.0
        self.drawn_litres = 0.0
        self.unmet_draw_degree_litres = 0.0

    # ------------------------------------------------------------------ #
    @property
    def headroom_w(self) -> float:
        """Indicative power the tank can absorb this instant without dumping.

        Uses a one-hour lookahead: energy to ceiling divided by 3600 s, plus
        standing losses.  The smart-grid manager uses this as the boiler's
        heat-demand signal.
        """
        cfg = self.config
        e_to_ceiling = self.mass_kg * WATER_CP * max(cfg.t_max_c - self.t_tank, 0.0)
        losses = cfg.loss_coeff_w_per_k * max(self.t_tank - cfg.t_ambient_c, 0.0)
        return e_to_ceiling / 3600.0 + losses

    def step(self, dt: float, p_in_w: float, hour_of_day: float, profile: DrawProfile) -> Tuple[float, float]:
        """Advance by ``dt`` seconds with ``p_in_w`` of boiler heat.

        Returns ``(useful_w, dumped_w)`` — the split of ``p_in_w`` into heat
        absorbed by the tank/draw and heat rejected outdoors.
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if p_in_w < 0:
            raise ValueError(f"boiler power must be >= 0, got {p_in_w}")
        cfg = self.config
        # 1) draw replaces hot water with cold mains water
        draw_lps = profile.draw_rate_lps(hour_of_day)
        drawn = min(draw_lps * dt, self.mass_kg)  # litres≈kg drawn this tick
        if drawn > 0:
            frac = drawn / self.mass_kg
            if self.t_tank < cfg.t_target_c:
                self.unmet_draw_degree_litres += drawn * (cfg.t_target_c - self.t_tank)
            self.t_tank = (1 - frac) * self.t_tank + frac * cfg.t_cold_c
            self.drawn_litres += drawn
        # 2) standing losses
        loss_w = cfg.loss_coeff_w_per_k * max(self.t_tank - cfg.t_ambient_c, 0.0)
        # 3) heat input, clipped at ceiling
        cap = self.mass_kg * WATER_CP
        e_in = p_in_w * dt
        e_loss = loss_w * dt
        t_next = self.t_tank + (e_in - e_loss) / cap
        if t_next > cfg.t_max_c:
            e_excess = (t_next - cfg.t_max_c) * cap
            t_next = cfg.t_max_c
        else:
            e_excess = 0.0
        self.t_tank = t_next
        useful = e_in - e_excess
        self.useful_heat_j += useful
        self.dumped_heat_j += e_excess
        return useful / dt, e_excess / dt

    # ------------------------------------------------------------------ #
    @property
    def waste_fraction(self) -> float:
        """Fraction of all boiler heat so far that was dumped outdoors."""
        total = self.useful_heat_j + self.dumped_heat_j
        return self.dumped_heat_j / total if total > 0 else 0.0
