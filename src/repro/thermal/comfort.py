"""Comfort metrics for heated rooms.

The paper's Fig. 4 claim is that data-furnace heating achieves "the same level
of comfort than with other heating systems".  We quantify comfort three ways:

* **time-in-band** — fraction of occupied time with ``|T - setpoint| <= band``;
* **RMSE** to setpoint;
* **discomfort degree-hours** — integral of temperature deficit below the
  setpoint (overshoot above setpoint is tracked separately as overheat).

A :class:`ComfortTracker` is fed samples on the building tick and reduces to a
:class:`ComfortStats` at the end of a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["ComfortStats", "ComfortTracker"]


@dataclass(frozen=True)
class ComfortStats:
    """Aggregated comfort results over a tracked interval."""

    hours_tracked: float
    time_in_band: float
    rmse_c: float
    mean_temp_c: float
    cold_degree_hours: float
    overheat_degree_hours: float

    def __str__(self) -> str:
        return (
            f"ComfortStats(in_band={self.time_in_band:.1%}, rmse={self.rmse_c:.2f}°C, "
            f"mean={self.mean_temp_c:.1f}°C, cold_dh={self.cold_degree_hours:.1f}, "
            f"hot_dh={self.overheat_degree_hours:.1f})"
        )


class ComfortTracker:
    """Accumulates per-sample comfort measurements.

    Parameters
    ----------
    band_c:
        Half-width of the comfort band around the setpoint (°C).

    Notes
    -----
    ``add(dt, temps, setpoints)`` accepts vectors — one entry per room — so a
    whole building is tracked with one tracker; statistics pool rooms and time.
    """

    def __init__(self, band_c: float = 1.0):
        if band_c <= 0:
            raise ValueError(f"band must be > 0, got {band_c}")
        self.band_c = float(band_c)
        self._seconds = 0.0
        self._n_samples = 0
        self._in_band_weight = 0.0
        self._sq_err_weight = 0.0
        self._temp_weight = 0.0
        self._cold_dh = 0.0
        self._hot_dh = 0.0
        self._monthly_temp: dict[int, List[float]] = {}

    def add(self, dt: float, temps, setpoints, month: int | None = None) -> None:
        """Record one sample covering ``dt`` seconds.

        Parameters
        ----------
        dt: seconds this sample represents.
        temps: room temperature(s), scalar or array (°C).
        setpoints: thermostat setpoint(s), same shape.
        month: optional 1-based month, enabling :meth:`monthly_mean_temps`.
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        temps = np.atleast_1d(np.asarray(temps, dtype=float))
        setpoints = np.broadcast_to(np.asarray(setpoints, dtype=float), temps.shape)
        err = temps - setpoints
        hours = dt / 3600.0
        n = temps.size
        self._seconds += dt
        self._n_samples += 1
        self._in_band_weight += dt * float(np.mean(np.abs(err) <= self.band_c))
        self._sq_err_weight += dt * float(np.mean(err**2))
        self._temp_weight += dt * float(np.mean(temps))
        self._cold_dh += hours * float(np.mean(np.maximum(-err, 0.0)))
        self._hot_dh += hours * float(np.mean(np.maximum(err - self.band_c, 0.0)))
        if month is not None:
            self._monthly_temp.setdefault(month, []).append(float(np.mean(temps)))

    def add_rows(self, dt: float, temps, setpoints, month: int | None = None) -> None:
        """Record one sample *per row*, exactly as sequential :meth:`add` calls.

        ``temps``/``setpoints`` are 2-D (rows × rooms).  The per-row means are
        computed in one vectorised pass — an axis reduction over a row is the
        same pairwise summation :meth:`add` performs on that row alone, so
        every accumulator receives bit-identical increments — and then folded
        into the accumulators row by row in order.  This is the vectorised
        kernel's batched entry point (one call per tick for a whole city
        instead of one per building); the scalar per-building path remains
        the reference.
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        temps = np.atleast_2d(np.asarray(temps, dtype=float))
        setpoints = np.broadcast_to(np.asarray(setpoints, dtype=float), temps.shape)
        err = temps - setpoints
        hours = dt / 3600.0
        in_band = (np.abs(err) <= self.band_c).mean(axis=1)
        sq_err = (err**2).mean(axis=1)
        mean_t = temps.mean(axis=1)
        cold = np.maximum(-err, 0.0).mean(axis=1)
        hot = np.maximum(err - self.band_c, 0.0).mean(axis=1)
        monthly = self._monthly_temp.setdefault(month, []) if month is not None else None
        # the fold stays sequential row by row (rounding order is part of the
        # contract); tolist() yields the same doubles as per-element float()
        mean_t_l = mean_t.tolist()
        for ib, sq, mt, cd, ht in zip(in_band.tolist(), sq_err.tolist(),
                                      mean_t_l, cold.tolist(), hot.tolist()):
            self._seconds += dt
            self._n_samples += 1
            self._in_band_weight += dt * ib
            self._sq_err_weight += dt * sq
            self._temp_weight += dt * mt
            self._cold_dh += hours * cd
            self._hot_dh += hours * ht
        if monthly is not None:
            monthly.extend(mean_t_l)

    def result(self) -> ComfortStats:
        """Reduce to :class:`ComfortStats`; raises if nothing was recorded."""
        if self._seconds == 0:
            raise ValueError("no samples recorded")
        return ComfortStats(
            hours_tracked=self._seconds / 3600.0,
            time_in_band=self._in_band_weight / self._seconds,
            rmse_c=float(np.sqrt(self._sq_err_weight / self._seconds)),
            mean_temp_c=self._temp_weight / self._seconds,
            cold_degree_hours=self._cold_dh,
            overheat_degree_hours=self._hot_dh,
        )

    def monthly_mean_temps(self) -> dict[int, float]:
        """Mean recorded temperature per month — the Fig. 4 series."""
        return {m: float(np.mean(v)) for m, v in sorted(self._monthly_temp.items())}
