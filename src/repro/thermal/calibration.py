"""Grey-box identification of room thermal models (§III-C).

The predictive platform the paper proposes needs a thermal model *per house*
— and nobody knows a house's R and C a priori.  Operators learn them from the
data the fleet already produces: room temperature (Q.rad sensors), heater
power (known exactly — it is the server's power draw) and outdoor temperature.

:func:`fit_first_order` identifies the standard 1R1C reduction

.. math:: C\\,\\dot T = (T_{out} - T)/R + P

by least squares on the discrete update
``T[k+1] − T[k] = a·(T_out[k] − T[k]) + b·P[k]`` with ``a = dt/(RC)`` and
``b = dt/C``.  The fitted model predicts heating demand and response — the
inputs of :class:`~repro.core.prediction.ThermosensitivityModel` at the
single-home scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FirstOrderRC", "fit_first_order"]


@dataclass(frozen=True)
class FirstOrderRC:
    """An identified 1R1C room model."""

    r_k_per_w: float
    c_j_per_k: float
    dt_s: float
    r2: float

    @property
    def time_constant_h(self) -> float:
        """RC time constant in hours."""
        return self.r_k_per_w * self.c_j_per_k / 3600.0

    def predict_next(self, t_air, t_out, p_heat):
        """One-step-ahead temperature prediction (vectorised)."""
        t_air = np.asarray(t_air, dtype=float)
        a = self.dt_s / (self.r_k_per_w * self.c_j_per_k)
        b = self.dt_s / self.c_j_per_k
        out = t_air + a * (np.asarray(t_out, dtype=float) - t_air) + b * np.asarray(
            p_heat, dtype=float
        )
        return float(out) if out.ndim == 0 else out

    def required_power(self, t_out: float, t_target: float) -> float:
        """Steady-state heater power to hold ``t_target`` (W, clipped ≥ 0)."""
        return max((t_target - t_out) / self.r_k_per_w, 0.0)

    def simulate(self, t_init: float, t_out, p_heat) -> np.ndarray:
        """Free-run simulation over aligned input arrays; returns T per step."""
        t_out = np.asarray(t_out, dtype=float)
        p_heat = np.broadcast_to(np.asarray(p_heat, dtype=float), t_out.shape)
        out = np.empty(t_out.size + 1)
        out[0] = t_init
        for k in range(t_out.size):
            out[k + 1] = self.predict_next(out[k], t_out[k], p_heat[k])
        return out


def fit_first_order(t_air, t_out, p_heat, dt_s: float) -> FirstOrderRC:
    """Identify a :class:`FirstOrderRC` from aligned measurement arrays.

    Parameters
    ----------
    t_air: room air temperature samples (length N ≥ 10).
    t_out: outdoor temperature samples (length N).
    p_heat: heater power samples (length N, W).
    dt_s: sampling interval (s); must be well below the room time constant.

    Raises
    ------
    ValueError: on malformed input or a degenerate (non-exciting) trace.
    """
    t_air = np.asarray(t_air, dtype=float)
    t_out = np.asarray(t_out, dtype=float)
    p_heat = np.asarray(p_heat, dtype=float)
    if not (t_air.shape == t_out.shape == p_heat.shape):
        raise ValueError("t_air, t_out and p_heat must have identical shapes")
    if t_air.size < 10:
        raise ValueError("need at least 10 samples")
    if dt_s <= 0:
        raise ValueError("dt must be > 0")

    dtemp = np.diff(t_air)
    X = np.column_stack([(t_out - t_air)[:-1], p_heat[:-1]])
    if np.linalg.matrix_rank(X) < 2:
        raise ValueError("trace is not exciting enough to identify R and C "
                         "(vary the heater power)")
    coef, *_ = np.linalg.lstsq(X, dtemp, rcond=None)
    a, b = float(coef[0]), float(coef[1])
    if a <= 0 or b <= 0:
        raise ValueError(f"non-physical fit (a={a:.3g}, b={b:.3g}); check the trace")
    c = dt_s / b
    r = b / a
    resid = dtemp - X @ coef
    ss_tot = float(np.sum((dtemp - dtemp.mean()) ** 2))
    r2 = 1.0 - float(resid @ resid) / ss_tot if ss_tot > 0 else 0.0
    return FirstOrderRC(r_k_per_w=r, c_j_per_k=c, dt_s=float(dt_s), r2=r2)
