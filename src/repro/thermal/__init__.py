"""Building thermal fabric: weather, lumped-RC rooms, hydronics, comfort.

This package is the physical substrate under the paper's claims: data-furnace
servers only make sense because the heat they dissipate lands in a *room* whose
temperature people care about.  Paper Figure 4 (monthly mean room temperature
over a heating season) is regenerated entirely from these models plus the heat
regulator of :mod:`repro.core.regulation`.
"""

from repro.thermal.budget import (
    AGGREGATE_ENERGY_RESIDUAL_REL,
    COMFORT_VIOLATION_RATE_TOL,
    DISTRICT_MEAN_TEMP_TOL_C,
    FLEET_ENERGY_REL_TOL,
)
from repro.thermal.building import Building, Room, RoomConfig, ThermostatSchedule
from repro.thermal.calibration import FirstOrderRC, fit_first_order
from repro.thermal.comfort import ComfortStats, ComfortTracker
from repro.thermal.heat_island import HeatIslandLedger, OutdoorHeatSource
from repro.thermal.hydronics import DrawProfile, WaterLoop, WaterLoopConfig
from repro.thermal.rc_model import RCNetwork, RoomThermalParams
from repro.thermal.surrogate import (
    DistrictAggregateModel,
    DistrictZoom,
    SurrogateConfig,
    SurrogateController,
)
from repro.thermal.weather import Weather, WeatherConfig

__all__ = [
    "AGGREGATE_ENERGY_RESIDUAL_REL",
    "Building",
    "COMFORT_VIOLATION_RATE_TOL",
    "ComfortStats",
    "ComfortTracker",
    "DISTRICT_MEAN_TEMP_TOL_C",
    "DistrictAggregateModel",
    "DistrictZoom",
    "DrawProfile",
    "FirstOrderRC",
    "FLEET_ENERGY_REL_TOL",
    "fit_first_order",
    "HeatIslandLedger",
    "OutdoorHeatSource",
    "RCNetwork",
    "Room",
    "RoomConfig",
    "RoomThermalParams",
    "SurrogateConfig",
    "SurrogateController",
    "ThermostatSchedule",
    "WaterLoop",
    "WaterLoopConfig",
    "Weather",
    "WeatherConfig",
]
