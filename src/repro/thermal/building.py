"""Rooms, thermostats and buildings.

A :class:`Building` bundles N rooms sharing one outdoor climate, an
:class:`RCNetwork` integrator, per-room thermostat schedules and occupancy
gains.  Heaters (Q.rads, e-radiators — see :mod:`repro.hardware.qrad`) are
*attached* to rooms: the building asks each attached heat source for its
current thermal output when stepping, keeping the thermal and compute layers
decoupled (the compute layer just has to expose ``heat_output_w()``).

The thermostat setpoints drive the **heating-request flow** of the DF3 model
(paper §II-C): every room with ``t_air < setpoint`` is demanding heat, and the
middleware's job is to generate that heat with useful computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.sim.calendar import SimCalendar
from repro.thermal.rc_model import RCNetwork, RoomThermalParams

__all__ = ["HeatSource", "Room", "RoomConfig", "ThermostatSchedule", "Building"]


class HeatSource(Protocol):
    """Anything that dumps heat into a room (a Q.rad, a plain heater...)."""

    def heat_output_w(self) -> float:
        """Current thermal power delivered to the room (W)."""
        ...


@dataclass(frozen=True)
class ThermostatSchedule:
    """Day/night setpoint schedule.

    The paper's hosts "can also control the internal temperature" (§II-B1);
    this is the standard residential pattern: comfort setpoint while awake,
    setback at night.
    """

    day_setpoint_c: float = 20.0
    night_setpoint_c: float = 17.0
    day_start_hour: float = 6.5
    day_end_hour: float = 22.5

    def setpoint(self, hour_of_day: float) -> float:
        """Setpoint (°C) at a given local hour."""
        if self.day_start_hour <= hour_of_day < self.day_end_hour:
            return self.day_setpoint_c
        return self.night_setpoint_c


@dataclass
class RoomConfig:
    """Static description of one room."""

    name: str
    thermal: RoomThermalParams = field(default_factory=RoomThermalParams)
    schedule: ThermostatSchedule = field(default_factory=ThermostatSchedule)
    occupant_gain_w: float = 80.0  # one person + standby appliances
    solar_aperture_m2: float = 1.5  # effective glazing collecting solar gains
    occupied_hours: tuple = (0.0, 24.0)  # occupancy window for gains


class Room:
    """Runtime state of a room inside a :class:`Building`."""

    def __init__(self, index: int, config: RoomConfig):
        self.index = index
        self.config = config
        self.heat_sources: List[HeatSource] = []
        self.aux_heat_w: float = 0.0  # backup/plain electric heat, if any

    @property
    def name(self) -> str:
        """Room name from its configuration."""
        return self.config.name

    def attach(self, source: HeatSource) -> None:
        """Attach a heat source (e.g. a Q.rad) to this room."""
        self.heat_sources.append(source)

    def heater_power_w(self) -> float:
        """Total thermal power currently delivered by attached sources (W)."""
        return sum(s.heat_output_w() for s in self.heat_sources) + self.aux_heat_w

    def occupancy_gain_w(self, hour_of_day: float) -> float:
        """Internal gains (W) at the given local hour."""
        lo, hi = self.config.occupied_hours
        return self.config.occupant_gain_w if lo <= hour_of_day < hi else 0.0


class Building:
    """A set of rooms sharing weather, stepped as one vectorised RC network.

    Parameters
    ----------
    configs:
        Room descriptions.
    weather:
        Object exposing ``outdoor_temperature(t)`` and ``solar_irradiance(t)``
        (see :class:`repro.thermal.weather.Weather`).
    t_init_c:
        Initial room temperature.

    Notes
    -----
    Call :meth:`step` on a fixed tick (typically 60–300 s, registered as an
    engine :class:`~repro.sim.engine.Process`).  Between ticks, heater powers
    are treated as constant — consistent with how the heat regulator of
    :mod:`repro.core.regulation` updates DVFS caps on the same tick.
    """

    def __init__(self, configs: Sequence[RoomConfig], weather, t_init_c: float = 18.0,
                 party_wall_g_w_per_k: float = 0.0):
        if not configs:
            raise ValueError("building needs at least one room")
        names = [c.name for c in configs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate room names: {names}")
        self.rooms: List[Room] = [Room(i, c) for i, c in enumerate(configs)]
        self.weather = weather
        self.network = RCNetwork([c.thermal for c in configs], t_init_c=t_init_c)
        if party_wall_g_w_per_k > 0:
            # consecutive rooms share a party wall (a corridor-plan flat)
            for i in range(len(configs) - 1):
                self.network.couple(i, i + 1, party_wall_g_w_per_k)
        self._cal = SimCalendar()
        self._by_name: Dict[str, Room] = {r.name: r for r in self.rooms}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rooms)

    def room(self, name: str) -> Room:
        """Look up a room by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no room named {name!r} in building") from None

    @property
    def temperatures(self) -> np.ndarray:
        """Current per-room air temperatures (°C)."""
        return self.network.t_air

    def temperature_of(self, name: str) -> float:
        """Air temperature (°C) of one room."""
        return float(self.network.t_air[self.room(name).index])

    def setpoints(self, t: float) -> np.ndarray:
        """Per-room thermostat setpoints (°C) at simulated time ``t``."""
        hod = self._cal.hour_of_day(t)
        return np.array([r.config.schedule.setpoint(hod) for r in self.rooms])

    def heat_demand_w(self, t: float) -> np.ndarray:
        """Per-room equilibrium power (W) needed to hold the current setpoint.

        This is the **heating-request flow** signal consumed by the DF3
        middleware: the power each room is implicitly requesting right now.
        """
        t_out = self.weather.outdoor_temperature(t)
        return self.network.required_power(t_out, self.setpoints(t))

    # ------------------------------------------------------------------ #
    def step(self, now: float, dt: float) -> np.ndarray:
        """Advance the thermal state by ``dt`` ending at time ``now``."""
        t_out = self.weather.outdoor_temperature(now)
        hod = self._cal.hour_of_day(now)
        p_heat = np.array([r.heater_power_w() for r in self.rooms])
        p_gain = np.array([r.occupancy_gain_w(hod) for r in self.rooms])
        irr = self.weather.solar_irradiance(now)
        p_solar = np.array([r.config.solar_aperture_m2 for r in self.rooms]) * irr * 0.6
        return self.network.step(dt, t_out, p_heat, p_gain, p_solar)
