r"""Lumped-parameter (2R2C) room thermal model, vectorised over rooms.

Each room is modelled with two thermal nodes — indoor **air** and building
**envelope** (walls/floor mass) — connected by conductances:

.. code-block:: text

            R_inf                    R_ie                R_ea
   T_out ─/\/\/\/── T_air ───/\/\/\/─── T_env ───/\/\/\/─── T_out
                     │ C_air            │ C_env
             P_heat+P_gain           P_solar

State equations (forward-Euler with automatic sub-stepping for stability):

.. math::

   C_a \\dot T_a = (T_e - T_a)/R_{ie} + (T_o - T_a)/R_{inf} + P_h + P_g

   C_e \\dot T_e = (T_a - T_e)/R_{ie} + (T_o - T_e)/R_{ea} + P_s

This is the standard grey-box model used in building-control literature; it is
sufficient to capture what the paper needs from rooms: hours-scale thermal
inertia ("the inertia of the heater produces enough heat", §III-A) and the
coupling between server power and comfort (Fig. 4).

All rooms in a network are stepped together with ``numpy`` array arithmetic —
the hot loop of year-long district simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RoomThermalParams", "RCNetwork"]

#: volumetric heat capacity of air, J/(m³·K)
AIR_RHO_CP = 1.2 * 1005.0


@dataclass(frozen=True)
class RoomThermalParams:
    """Thermal parameters of one room.

    Defaults describe a moderately insulated ~20 m² French apartment room,
    chosen so that a 500 W Q.rad can hold ~20 °C against a Paris winter —
    the sizing implied by the paper (one Q.rad heats one room).

    Attributes
    ----------
    c_air:
        Effective air-node capacitance (J/K).  Includes furniture — the usual
        grey-box fit multiplies the pure-air value by ~5.
    c_env:
        Envelope capacitance (J/K).
    r_ie:
        Air↔envelope resistance (K/W).
    r_ea:
        Envelope↔outdoor resistance (K/W).
    r_inf:
        Direct air↔outdoor (infiltration/ventilation) resistance (K/W).
    """

    c_air: float = 5.0 * AIR_RHO_CP * 50.0  # ~50 m³ room, ×5 furniture factor
    c_env: float = 4.0e6
    r_ie: float = 2.0e-2
    r_ea: float = 4.0e-2
    r_inf: float = 1.5e-1

    @staticmethod
    def from_geometry(
        floor_area_m2: float,
        height_m: float = 2.5,
        u_value: float = 0.9,
        envelope_area_m2: float | None = None,
        ach: float = 0.5,
        furniture_factor: float = 5.0,
    ) -> "RoomThermalParams":
        """Derive parameters from room geometry and insulation quality.

        Parameters
        ----------
        floor_area_m2: floor area.
        height_m: ceiling height.
        u_value: envelope U-value, W/(m²·K) (0.4 = new build, 1.5 = old stock).
        envelope_area_m2: exposed envelope area; default 1.2 × floor area.
        ach: air changes per hour (infiltration).
        furniture_factor: multiplier on the pure-air capacitance.
        """
        if floor_area_m2 <= 0 or height_m <= 0:
            raise ValueError("room geometry must be positive")
        volume = floor_area_m2 * height_m
        env_area = envelope_area_m2 if envelope_area_m2 is not None else 1.2 * floor_area_m2
        c_air = furniture_factor * AIR_RHO_CP * volume
        c_env = 1.6e5 * env_area  # ~concrete/plaster areal capacitance
        ua_env = u_value * env_area
        # split envelope conductance: air→env is much larger than env→out
        r_ie = 1.0 / (6.0 * ua_env)
        r_ea = 1.0 / ua_env - r_ie if 1.0 / ua_env > r_ie else 0.5 / ua_env
        q_inf = ach * volume / 3600.0  # m³/s
        if q_inf <= 0:
            raise ValueError("ach must be > 0")
        r_inf = 1.0 / (1.2 * 1005.0 * q_inf)
        return RoomThermalParams(c_air=c_air, c_env=c_env, r_ie=r_ie, r_ea=r_ea, r_inf=r_inf)


class RCNetwork:
    """Vectorised 2R2C integrator for N rooms.

    Parameters
    ----------
    params:
        Per-room thermal parameters (length-N sequence).
    t_init_c:
        Initial temperature (°C) applied to both nodes, scalar or length N.
    """

    def __init__(self, params, t_init_c: float | np.ndarray = 18.0):
        params = list(params)
        if not params:
            raise ValueError("RCNetwork needs at least one room")
        self.n = len(params)
        self.c_air = np.array([p.c_air for p in params], dtype=float)
        self.c_env = np.array([p.c_env for p in params], dtype=float)
        self.g_ie = 1.0 / np.array([p.r_ie for p in params], dtype=float)
        self.g_ea = 1.0 / np.array([p.r_ea for p in params], dtype=float)
        self.g_inf = 1.0 / np.array([p.r_inf for p in params], dtype=float)
        bad = (self.c_air <= 0) | (self.c_env <= 0)
        if np.any(bad):
            raise ValueError("thermal capacitances must be positive")
        self.t_air = np.full(self.n, 0.0) + np.asarray(t_init_c, dtype=float)
        self.t_env = self.t_air.copy()
        # inter-room (party wall) couplings: parallel (i, j, g) arrays
        self._adj_i = np.empty(0, dtype=int)
        self._adj_j = np.empty(0, dtype=int)
        self._adj_g = np.empty(0, dtype=float)
        self._update_dt_max()

    def _update_dt_max(self) -> None:
        # stability bound for forward Euler: dt < 2*min(C / sum-of-G)
        g_air = self.g_ie + self.g_inf
        for i, j, g in zip(self._adj_i, self._adj_j, self._adj_g):
            g_air = g_air.copy() if g_air.base is None else g_air
            g_air[i] += g
            g_air[j] += g
        tau_air = self.c_air / g_air
        tau_env = self.c_env / (self.g_ie + self.g_ea)
        self._dt_max = 0.5 * float(np.min(np.minimum(tau_air, tau_env)))

    def couple(self, i: int, j: int, g_w_per_k: float) -> None:
        """Add a party-wall conductance between the air nodes of rooms i, j.

        Adjacent rooms exchange heat: a heated living room warms the bedroom
        next door.  Collective heating requests (paper §II-C) only make sense
        with this coupling in place.
        """
        if not (0 <= i < self.n and 0 <= j < self.n) or i == j:
            raise ValueError(f"invalid room pair ({i}, {j})")
        if g_w_per_k <= 0:
            raise ValueError("coupling conductance must be > 0")
        self._adj_i = np.append(self._adj_i, i)
        self._adj_j = np.append(self._adj_j, j)
        self._adj_g = np.append(self._adj_g, float(g_w_per_k))
        self._update_dt_max()

    @property
    def coupled(self) -> bool:
        """Whether any inter-room couplings exist."""
        return self._adj_i.size > 0

    @property
    def dt_max(self) -> float:
        """Largest stable integration step (s); ``step`` sub-steps beyond it."""
        return self._dt_max

    def step(self, dt: float, t_out, p_heat=0.0, p_gain=0.0, p_solar=0.0) -> np.ndarray:
        """Advance all rooms by ``dt`` seconds and return the new air temps.

        Parameters
        ----------
        dt: interval to integrate (s); internally sub-stepped for stability.
        t_out: outdoor temperature (°C), scalar or per-room array.
        p_heat: heater power deposited in the air node (W), scalar or array.
        p_gain: occupancy/appliance gains into the air node (W).
        p_solar: solar gains into the envelope node (W).
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if dt == 0:
            return self.t_air
        t_out = np.broadcast_to(np.asarray(t_out, dtype=float), (self.n,))
        p_heat = np.broadcast_to(np.asarray(p_heat, dtype=float), (self.n,))
        p_gain = np.broadcast_to(np.asarray(p_gain, dtype=float), (self.n,))
        p_solar = np.broadcast_to(np.asarray(p_solar, dtype=float), (self.n,))

        nsub = max(1, int(np.ceil(dt / self._dt_max)))
        h = dt / nsub
        ta, te = self.t_air, self.t_env
        for _ in range(nsub):
            q_ie = self.g_ie * (te - ta)
            q_inf = self.g_inf * (t_out - ta)
            q_ea = self.g_ea * (t_out - te)
            q_adj = np.zeros(self.n)
            if self._adj_i.size:
                flow = self._adj_g * (ta[self._adj_j] - ta[self._adj_i])
                np.add.at(q_adj, self._adj_i, flow)
                np.add.at(q_adj, self._adj_j, -flow)
            ta = ta + h * (q_ie + q_inf + q_adj + p_heat + p_gain) / self.c_air
            te = te + h * (-q_ie + q_ea + p_solar) / self.c_env
        self.t_air, self.t_env = ta, te
        return self.t_air

    def steady_state(self, t_out, p_heat=0.0, p_gain=0.0, p_solar=0.0) -> np.ndarray:
        """Closed-form equilibrium air temperature for constant inputs.

        Useful in tests: solves the 2×2 linear system per room.  Only valid
        for uncoupled rooms (raises otherwise).
        """
        if self.coupled:
            raise NotImplementedError(
                "closed-form steady state is per-room; not defined with "
                "inter-room couplings"
            )
        t_out = np.broadcast_to(np.asarray(t_out, dtype=float), (self.n,))
        p_a = np.broadcast_to(np.asarray(p_heat, dtype=float), (self.n,)) + np.broadcast_to(
            np.asarray(p_gain, dtype=float), (self.n,)
        )
        p_e = np.broadcast_to(np.asarray(p_solar, dtype=float), (self.n,))
        # 0 = g_ie(te-ta) + g_inf(to-ta) + p_a ; 0 = g_ie(ta-te) + g_ea(to-te) + p_e
        a11 = self.g_ie + self.g_inf
        a12 = -self.g_ie
        a21 = -self.g_ie
        a22 = self.g_ie + self.g_ea
        b1 = self.g_inf * t_out + p_a
        b2 = self.g_ea * t_out + p_e
        det = a11 * a22 - a12 * a21
        return (b1 * a22 - a12 * b2) / det

    def required_power(self, t_out, t_target) -> np.ndarray:
        """Heater power (W) that holds ``t_target`` at equilibrium for ``t_out``.

        With inter-room couplings this is the no-exchange approximation
        (exact when all rooms share the target, which collective heating
        requests do).
        """
        t_out = np.broadcast_to(np.asarray(t_out, dtype=float), (self.n,))
        t_target = np.broadcast_to(np.asarray(t_target, dtype=float), (self.n,))
        # effective conductance from air to outdoor through both paths
        g_series = 1.0 / (1.0 / self.g_ie + 1.0 / self.g_ea)
        g_total = g_series + self.g_inf
        return np.maximum(g_total * (t_target - t_out), 0.0)
