"""City-fused thermal stepping: every building in one elementwise pass.

The scalar tick advances buildings one at a time —
:meth:`repro.thermal.building.Building.step` builds three small per-room
arrays and runs the 2R2C forward-Euler update on them.  For a city of B
buildings that is B numpy-call cascades per tick on arrays of a handful of
elements each, which is pure interpreter overhead: the buildings share one
weather, are thermally independent of each other, and (in every city the
middleware builds) integrate with the same sub-step count.

:class:`FusedCityThermal` therefore concatenates the room state of all
buildings into flat city-wide arrays and performs the *same* elementwise
update once per tick.  Because every operation is elementwise — the RC model
never reduces across rooms, and uncoupled networks have no cross-room terms —
each room's new temperature is bit-for-bit the float the per-building step
would have produced (IEEE-754 arithmetic is deterministic per element; only
re-association changes bits).  After each step the per-building
``RCNetwork.t_air`` / ``t_env`` are rebound to slice views of the flat
arrays, so every existing consumer (regulators, comfort, heat-demand
queries) keeps reading live state through the unchanged ``Building`` API.

The fusion declares itself :attr:`compatible` only when its preconditions
hold — no inter-room couplings, one shared weather, a single sub-step count
— and the middleware falls back to per-building stepping otherwise.  This is
part of the vectorised kernel (DESIGN.md §2.13); the scalar kernel never
constructs one.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sim.calendar import SimCalendar
from repro.thermal.building import Building

__all__ = ["FusedCityThermal"]


class FusedCityThermal:
    """Steps many :class:`Building` instances as one flat RC network.

    Parameters
    ----------
    buildings:
        The city's buildings in a fixed order; that order defines the flat
        room layout (building-major, rooms in index order) and must match
        the order of any per-room arrays callers hand back to it.
    """

    def __init__(self, buildings: Sequence[Building]):
        self.buildings: List[Building] = list(buildings)
        nets = [b.network for b in self.buildings]
        self.compatible = bool(
            self.buildings
            and all(not n.coupled for n in nets)
            and len({n._dt_max for n in nets}) == 1
            and all(b.weather is self.buildings[0].weather for b in self.buildings)
        )
        if not self.compatible:
            return
        self.weather = self.buildings[0].weather
        self._cal = SimCalendar()
        self._dt_max = nets[0]._dt_max
        self.slices: List[slice] = []
        rooms = []
        offset = 0
        for b in self.buildings:
            self.slices.append(slice(offset, offset + len(b.rooms)))
            rooms.extend(b.rooms)
            offset += len(b.rooms)
        self.rooms = rooms
        self.n = offset
        #: True when every building has the same room count — the layout is
        #: then a dense (buildings, rooms) grid and per-building statistics
        #: can reshape instead of slicing
        self.uniform = len({len(b.rooms) for b in self.buildings}) == 1
        cat = np.concatenate
        self.c_air = cat([n.c_air for n in nets])
        self.c_env = cat([n.c_env for n in nets])
        self.g_ie = cat([n.g_ie for n in nets])
        self.g_ea = cat([n.g_ea for n in nets])
        self.g_inf = cat([n.g_inf for n in nets])
        self.t_air = cat([n.t_air for n in nets])
        self.t_env = cat([n.t_env for n in nets])
        self._rebind()
        self.gain_w = np.array([r.config.occupant_gain_w for r in rooms])
        self.occ_lo = np.array([r.config.occupied_hours[0] for r in rooms])
        self.occ_hi = np.array([r.config.occupied_hours[1] for r in rooms])
        self.aperture = np.array([r.config.solar_aperture_m2 for r in rooms])

    def _rebind(self) -> None:
        """Point each building's network at its slice of the flat state."""
        for b, sl in zip(self.buildings, self.slices):
            b.network.t_air = self.t_air[sl]
            b.network.t_env = self.t_env[sl]

    def step(self, now: float, dt: float) -> List[float]:
        """Advance every room by ``dt`` ending at ``now``.

        Returns the per-room heater powers (W, flat order, builtin floats)
        that drove the step, so the caller can reuse them for the
        useful-heat ledger without polling the servers again — the scalar
        tick's second ``heater_power_w()`` poll reads the same unchanged
        values.
        """
        p_heat_list = [r.heater_power_w() for r in self.rooms]
        t_out = self.weather.outdoor_temperature(now)
        hod = self._cal.hour_of_day(now)
        irr = self.weather.solar_irradiance(now)
        p_heat = np.array(p_heat_list)
        p_gain = np.where(
            (self.occ_lo <= hod) & (hod < self.occ_hi), self.gain_w, 0.0
        )
        p_solar = self.aperture * irr * 0.6
        nsub = max(1, int(np.ceil(dt / self._dt_max)))
        h = dt / nsub
        ta, te = self.t_air, self.t_env
        # identical expressions (including the zero adjacency term) and
        # association order as RCNetwork.step — elementwise, hence bitwise
        q_adj = np.zeros(self.n)
        for _ in range(nsub):
            q_ie = self.g_ie * (te - ta)
            q_inf = self.g_inf * (t_out - ta)
            q_ea = self.g_ea * (t_out - te)
            ta = ta + h * (q_ie + q_inf + q_adj + p_heat + p_gain) / self.c_air
            te = te + h * (-q_ie + q_ea + p_solar) / self.c_env
        self.t_air, self.t_env = ta, te
        self._rebind()
        return p_heat_list
