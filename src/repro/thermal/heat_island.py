"""Urban-heat-island accounting: who rejects heat outdoors, and how much.

Paper §III-A worries that "a broad deployment of DF servers could create or
increase the intensity of urban heat island", and argues on-demand heat
delivery minimises waste.  This module is the ledger those experiments (E7)
are built on: every subsystem that rejects heat *outdoors* (rather than into a
room or a water tank) reports it here, tagged with a source category.

Categories used across the framework:

* ``eradiator_summer`` — Nerdalize dual-pipe heaters dumping outside in summer;
* ``boiler_overflow``  — digital boilers whose tank hit its ceiling;
* ``dc_cooling``       — classical datacenter cooling rejecting IT+cooling heat;
* ``aircon``           — building air conditioning (the Tremeac et al. [10]
  mechanism the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

__all__ = ["OutdoorHeatSource", "HeatIslandLedger"]


class OutdoorHeatSource(str, Enum):
    """Categories of outdoor heat rejection tracked by the ledger."""

    ERADIATOR_SUMMER = "eradiator_summer"
    BOILER_OVERFLOW = "boiler_overflow"
    DC_COOLING = "dc_cooling"
    AIRCON = "aircon"
    OTHER = "other"


@dataclass
class HeatIslandLedger:
    """Accumulates outdoor-rejected energy by source category (J)."""

    def __post_init__(self) -> None:
        self._by_source: Dict[OutdoorHeatSource, float] = {s: 0.0 for s in OutdoorHeatSource}
        self._useful_heat_j = 0.0
        self._useful_compute_j = 0.0

    def add_outdoor(self, source: OutdoorHeatSource, energy_j: float) -> None:
        """Record ``energy_j`` joules rejected outdoors by ``source``."""
        if energy_j < 0:
            raise ValueError(f"energy must be >= 0, got {energy_j}")
        self._by_source[source] += energy_j

    def add_useful_heat(self, energy_j: float) -> None:
        """Record heat delivered *usefully* (into rooms/tanks on demand)."""
        if energy_j < 0:
            raise ValueError(f"energy must be >= 0, got {energy_j}")
        self._useful_heat_j += energy_j

    def add_useful_compute(self, energy_j: float) -> None:
        """Record IT energy that performed requested computation."""
        if energy_j < 0:
            raise ValueError(f"energy must be >= 0, got {energy_j}")
        self._useful_compute_j += energy_j

    # ------------------------------------------------------------------ #
    @property
    def total_outdoor_j(self) -> float:
        """Total outdoor-rejected energy across all categories (J)."""
        return sum(self._by_source.values())

    def outdoor_j(self, source: OutdoorHeatSource) -> float:
        """Outdoor-rejected energy of one category (J)."""
        return self._by_source[source]

    @property
    def useful_heat_j(self) -> float:
        """Total heat delivered on demand (J)."""
        return self._useful_heat_j

    def waste_heat_index(self) -> float:
        """Outdoor heat per joule of useful compute.

        The experiment E7 comparator: lower is better.  Returns ``inf`` when
        no useful compute was recorded but outdoor heat exists, 0 when neither.
        """
        if self._useful_compute_j > 0:
            return self.total_outdoor_j / self._useful_compute_j
        return float("inf") if self.total_outdoor_j > 0 else 0.0

    def breakdown_kwh(self) -> Dict[str, float]:
        """Per-category outdoor heat in kWh, for reports."""
        return {s.value: v / 3.6e6 for s, v in self._by_source.items() if v > 0}
