"""Synthetic weather for a Paris-like climate.

The paper's deployments (Qarnot sites, Fig. 4) are in and around Paris, so the
default parameters approximate Paris-Montsouris normals: annual mean ≈ 12 °C,
January mean ≈ 5 °C, July mean ≈ 20 °C, diurnal swing ≈ 4 °C, with AR(1)
synoptic noise (multi-day weather systems).

Outdoor temperature is the sum of

* an annual harmonic (coldest near mid-January),
* a diurnal harmonic (warmest mid-afternoon),
* an AR(1) noise series sampled hourly and linearly interpolated,

plus a simple clear-sky solar irradiance model used for passive gains.

The generator pre-computes the noise series over a fixed horizon at
construction so that lookups are pure reads — vectorised ``numpy.interp`` over
arrays of times — and so that the series is independent of query order
(reproducibility).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.calendar import DAY, HOUR, YEAR, SimCalendar

__all__ = ["Weather", "WeatherConfig"]


@dataclass(frozen=True)
class WeatherConfig:
    """Climate parameters; defaults approximate Paris.

    Attributes
    ----------
    annual_mean_c:
        Mean outdoor temperature over the year (°C).
    annual_amplitude_c:
        Half peak-to-peak of the seasonal harmonic (°C).
    coldest_day:
        0-based day-of-year of the seasonal minimum (mid-January ≈ 15).
    diurnal_amplitude_c:
        Half peak-to-peak of the day/night swing (°C).
    warmest_hour:
        Local hour of the diurnal maximum (mid-afternoon ≈ 15).
    noise_std_c:
        Stationary standard deviation of the AR(1) synoptic noise (°C).
    noise_corr_hours:
        e-folding correlation time of the noise, in hours (≈ 36 h: weather
        systems last a few days).
    solar_peak_wm2:
        Clear-sky noon irradiance at midsummer (W/m²).
    """

    annual_mean_c: float = 12.3
    annual_amplitude_c: float = 7.8
    coldest_day: int = 15
    diurnal_amplitude_c: float = 3.8
    warmest_hour: float = 15.0
    noise_std_c: float = 3.2
    noise_corr_hours: float = 36.0
    solar_peak_wm2: float = 850.0


class Weather:
    """Deterministic-plus-noise weather signal over a bounded horizon.

    Parameters
    ----------
    rng:
        A ``numpy.random.Generator`` (use ``RngRegistry.stream("weather")``).
    config:
        Climate parameters.
    horizon:
        Latest simulated time (s) that will ever be queried.  Queries beyond
        it raise ``ValueError`` — extend the horizon rather than silently
        extrapolating.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        config: WeatherConfig = WeatherConfig(),
        horizon: float = 2 * YEAR,
        noise_dt: float = HOUR,
    ):
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        self.config = config
        self.horizon = float(horizon)
        self._noise_dt = float(noise_dt)
        self._cal = SimCalendar()

        n = int(np.ceil(self.horizon / self._noise_dt)) + 2
        phi = float(np.exp(-self._noise_dt / (config.noise_corr_hours * HOUR)))
        innovation_std = config.noise_std_c * np.sqrt(1.0 - phi * phi)
        eps = rng.normal(0.0, innovation_std, size=n)
        noise = np.empty(n)
        noise[0] = rng.normal(0.0, config.noise_std_c)
        for i in range(1, n):  # AR(1) recursion; run once at construction
            noise[i] = phi * noise[i - 1] + eps[i]
        self._noise = noise
        self._noise_times = np.arange(n) * self._noise_dt
        # live-scenario forcing (cold snap / heat wave); 0.0 = untouched signal
        self._override_delta_c = 0.0

    # ------------------------------------------------------------------ #
    def _check(self, t: np.ndarray) -> None:
        if np.any(t < 0) or np.any(t > self.horizon):
            raise ValueError(
                f"weather query outside [0, {self.horizon}]: "
                f"range [{np.min(t)}, {np.max(t)}]"
            )

    def seasonal_component(self, t):
        """Deterministic annual + diurnal harmonics at time(s) ``t`` (°C)."""
        t = np.asarray(t, dtype=float)
        cfg = self.config
        doy = (t / DAY) % 365.0
        hod = (t / HOUR) % 24.0
        # annual term: cos peaks at coldest_day, sign flip makes it the minimum
        annual = -cfg.annual_amplitude_c * np.cos(2 * np.pi * (doy - cfg.coldest_day) / 365.0)
        diurnal = cfg.diurnal_amplitude_c * np.cos(2 * np.pi * (hod - cfg.warmest_hour) / 24.0)
        return cfg.annual_mean_c + annual + diurnal

    def set_override(self, delta_c: float) -> None:
        """Additive forcing on :meth:`outdoor_temperature` (live scenarios).

        A positive delta is a heat wave, a negative one a cold snap.  When the
        override is 0.0 (the default) the addition is skipped entirely, so
        batch runs that never touch it stay byte-identical.
        """
        self._override_delta_c = float(delta_c)

    @property
    def override_delta_c(self) -> float:
        """Current additive forcing (°C); 0.0 when unset."""
        return self._override_delta_c

    def outdoor_temperature(self, t):
        """Outdoor temperature (°C) at time(s) ``t`` (scalar or array)."""
        arr = np.asarray(t, dtype=float)
        self._check(arr)
        noise = np.interp(arr, self._noise_times, self._noise)
        out = self.seasonal_component(arr) + noise
        if self._override_delta_c != 0.0:
            out = out + self._override_delta_c
        return float(out) if np.isscalar(t) or arr.ndim == 0 else out

    def solar_irradiance(self, t):
        """Clear-sky-ish horizontal irradiance (W/m²) at time(s) ``t``.

        A half-sine over daylight hours, scaled by season (day length and sun
        height folded into one seasonal factor).  Zero at night.
        """
        arr = np.asarray(t, dtype=float)
        self._check(arr)
        cfg = self.config
        doy = (arr / DAY) % 365.0
        hod = (arr / HOUR) % 24.0
        # season factor in [0.25, 1]: midsummer (day ~172) = 1
        season = 0.625 + 0.375 * np.cos(2 * np.pi * (doy - 172.0) / 365.0)
        half_day = 6.0 + 2.5 * np.cos(2 * np.pi * (doy - 172.0) / 365.0)  # hours
        x = (hod - 12.0) / half_day  # -1..1 over daylight
        sun = np.where(np.abs(x) < 1.0, np.cos(0.5 * np.pi * x), 0.0)
        out = cfg.solar_peak_wm2 * season * sun
        return float(out) if np.isscalar(t) or arr.ndim == 0 else out

    # ------------------------------------------------------------------ #
    def monthly_mean_temperature(self, month: int, year_offset: int = 0) -> float:
        """Mean outdoor temperature of a month (1-based), sampled hourly."""
        start = self._cal.month_start(month) + year_offset * YEAR
        end = start + self._cal.month_length(month)
        ts = np.arange(start, end, HOUR)
        return float(np.mean(self.outdoor_temperature(ts)))

    def heating_degree_hours(self, t0: float, t1: float, base_c: float = 18.0) -> float:
        """Degree-hours below ``base_c`` over [t0, t1] — heating demand proxy."""
        ts = np.arange(t0, t1, HOUR)
        temps = self.outdoor_temperature(ts)
        return float(np.sum(np.maximum(base_c - temps, 0.0)))
