"""The surrogate kernel's error budget — one module, one set of numbers.

The ``surrogate`` kernel tier (DESIGN.md §2.18) is *not* byte-identical to
the exact kernels: it advances district-aggregate thermal state through a
reduced-order model and accepts a bounded, declared error in exchange for
O(districts) instead of O(rooms) per-tick work.  This module declares that
budget.  Every tolerance assertion in the test suite imports these constants
— the differential fuzz harness in ``tests/test_kernel_equivalence.py``
asserts each metric against *these names* — so tightening the budget is a
one-line diff here, and a silently drifting surrogate fails CI rather than
shipping a wider error bar.

The budget is stated against the ``vector`` kernel (itself byte-identical to
the scalar reference) over the seeded random cities of the fuzz suite, under
the surrogate-eligibility conditions documented in EXPERIMENTS.md.  Sampled
and zoomed districts are exempt from the budget entirely: they must match
the vector kernel **exactly** (byte-identical trajectories), which the fuzz
suite asserts separately.
"""

from __future__ import annotations

__all__ = [
    "DISTRICT_MEAN_TEMP_TOL_C",
    "COMFORT_VIOLATION_RATE_TOL",
    "FLEET_ENERGY_REL_TOL",
    "AGGREGATE_ENERGY_RESIDUAL_REL",
]

#: |surrogate − vector| per-district time-mean air temperature (°C).  The
#: aggregate 2R2C carries the exact mean dynamics of identical rooms; the
#: error comes from the clipped-PI mean and the fitted power map.
DISTRICT_MEAN_TEMP_TOL_C = 0.35

#: |surrogate − vector| comfort-violation rate (absolute fraction of tracked
#: time outside the ±1 °C band, i.e. ``1 − time_in_band``).
COMFORT_VIOLATION_RATE_TOL = 0.06

#: |surrogate − vector| / vector total fleet electrical energy.  The
#: surrogate's modelled energy replaces the quiesced districts' metered
#: energy through the calibrated power map.
FLEET_ENERGY_REL_TOL = 0.10

#: Per-tick energy-balance residual of the aggregate model, relative to the
#: heat flux through the district that tick (float round-off only — the
#: update is exact forward Euler, so this is machine-epsilon territory).
AGGREGATE_ENERGY_RESIDUAL_REL = 1e-9
