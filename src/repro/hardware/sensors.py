"""The Q.rad sensor suite.

Paper §II-B1: "Q.rads also include several sensors, interfaces and actuators
for humidity, temperature, noises, wireless charge, light etc."  These sensors
are the data sources of the **sense-compute-actuate** loops (§III-B) that the
edge flow serves: a sensor samples its environment, the reading rides the
low-power network to an edge gateway, and a worker computes a response.

Sensors sample an underlying truth callable with additive Gaussian noise plus
optional quantisation, so fidelity experiments can separate physical dynamics
from measurement error.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["SensorKind", "Sensor", "SensorSuite", "Reading"]


class SensorKind(str, Enum):
    """Sensor types on a Q.rad front panel."""

    TEMPERATURE = "temperature"  # °C
    HUMIDITY = "humidity"        # %RH
    NOISE = "noise"              # dBA
    LIGHT = "light"              # lux
    PRESENCE = "presence"        # 0/1
    CO2 = "co2"                  # ppm


@dataclass(frozen=True)
class Reading:
    """One timestamped sensor sample."""

    sensor: str
    kind: SensorKind
    time: float
    value: float


class Sensor:
    """A noisy sampler of an environmental truth signal.

    Parameters
    ----------
    name: instance name (unique within a suite).
    kind: sensor type.
    truth: callable ``truth(t) -> float`` giving the physical value.
    rng: noise stream.
    noise_std: additive Gaussian noise standard deviation.
    resolution: quantisation step (0 disables quantisation).
    """

    def __init__(
        self,
        name: str,
        kind: SensorKind,
        truth: Callable[[float], float],
        rng: np.random.Generator,
        noise_std: float = 0.0,
        resolution: float = 0.0,
    ):
        if noise_std < 0 or resolution < 0:
            raise ValueError("noise_std and resolution must be >= 0")
        self.name = name
        self.kind = kind
        self.truth = truth
        self.rng = rng
        self.noise_std = noise_std
        self.resolution = resolution
        self.samples_taken = 0

    def sample(self, t: float) -> Reading:
        """Take one reading at simulated time ``t``."""
        v = float(self.truth(t))
        if self.noise_std > 0:
            v += float(self.rng.normal(0.0, self.noise_std))
        if self.resolution > 0:
            v = round(v / self.resolution) * self.resolution
        self.samples_taken += 1
        return Reading(sensor=self.name, kind=self.kind, time=t, value=v)


class SensorSuite:
    """The set of sensors on one Q.rad.

    Build with :meth:`standard` to get the published panel wired to a room's
    temperature plus synthetic truths for the rest.
    """

    def __init__(self, sensors: List[Sensor]):
        names = [s.name for s in sensors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate sensor names: {names}")
        self._sensors: Dict[str, Sensor] = {s.name: s for s in sensors}

    def __len__(self) -> int:
        return len(self._sensors)

    def __contains__(self, name: str) -> bool:
        return name in self._sensors

    def sensor(self, name: str) -> Sensor:
        """Look up a sensor by name."""
        try:
            return self._sensors[name]
        except KeyError:
            raise KeyError(f"no sensor named {name!r}") from None

    def sample_all(self, t: float) -> List[Reading]:
        """Sample every sensor at time ``t`` (stable name order)."""
        return [self._sensors[n].sample(t) for n in sorted(self._sensors)]

    @staticmethod
    def standard(
        rng: np.random.Generator,
        room_temperature: Callable[[float], float],
        occupancy: Optional[Callable[[float], float]] = None,
    ) -> "SensorSuite":
        """The published Q.rad panel.

        Parameters
        ----------
        rng: noise stream shared by the suite.
        room_temperature: truth signal for the temperature sensor, typically
            a closure over the room's RC state.
        occupancy: optional 0/1 truth for the presence sensor; defaults to a
            simple day-presence pattern.
        """
        if occupancy is None:
            def occupancy(t: float) -> float:
                hod = (t / 3600.0) % 24.0
                return 1.0 if (7.0 <= hod < 9.0 or 18.0 <= hod < 23.0) else 0.0

        def humidity(t: float) -> float:
            return 45.0 + 10.0 * np.sin(2 * np.pi * t / 86400.0)

        def noise_dba(t: float) -> float:
            return 35.0 + 10.0 * occupancy(t)

        def light_lux(t: float) -> float:
            hod = (t / 3600.0) % 24.0
            return 300.0 if 8.0 <= hod < 22.0 else 5.0

        def co2_ppm(t: float) -> float:
            return 420.0 + 300.0 * occupancy(t)

        return SensorSuite(
            [
                Sensor("temp", SensorKind.TEMPERATURE, room_temperature, rng, 0.2, 0.1),
                Sensor("hum", SensorKind.HUMIDITY, humidity, rng, 2.0, 1.0),
                Sensor("noise", SensorKind.NOISE, noise_dba, rng, 1.5, 0.5),
                Sensor("light", SensorKind.LIGHT, light_lux, rng, 10.0, 1.0),
                Sensor("presence", SensorKind.PRESENCE, occupancy, rng, 0.0, 1.0),
                Sensor("co2", SensorKind.CO2, co2_ppm, rng, 15.0, 1.0),
            ]
        )
