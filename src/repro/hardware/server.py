"""The generic DVFS-capable compute server.

Every machine in the framework — Q.rad, e-radiator, boiler blade, datacenter
node — is a :class:`ComputeServer`: ``n_cores`` cores stepping a DVFS ladder,
running :class:`Task` objects measured in **cycles**.  The server integrates
its own electrical energy, exposes its heat output, and schedules its own
task-completion events on the simulation engine, so higher layers (gateways,
schedulers) only deal in ``submit`` / ``preempt`` / ``on_complete``.

Model choices (kept deliberately simple and documented):

* a task occupies a fixed number of cores and progresses at
  ``cores × freq × 10⁹`` cycles/s — perfect intra-task parallelism;
* electrical power is ``P_idle + (P_max − P_idle) · util · powerscale(f)``
  with the classic ``f·V²`` DVFS power scale (paper ref [17]);
* a powered-off server (motherboards off — the Qarnot hybrid infrastructure,
  §III-A) draws nothing and refuses work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.hardware.cpu import DVFSLadder

__all__ = ["Task", "TaskState", "ServerSpec", "ComputeServer"]

_GHZ = 1e9
#: tasks complete when fewer cycles than this remain (float-tolerance)
_CYCLE_EPS = 1.0
#: minimum schedulable completion horizon (s).  A horizon below the float ulp
#: of the current simulation time would fire "now" with dt == 0 and never make
#: progress; 1 µs is far below any latency this framework resolves and far
#: above the ulp of a multi-year time axis (~7.5e-9 s at t = 2 years).
_TIME_EPS = 1e-6


class TaskState(Enum):
    """Lifecycle of a task on a server."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    PREEMPTED = "preempted"
    KILLED = "killed"


@dataclass(slots=True)
class Task:
    """A unit of compute work.

    Attributes
    ----------
    task_id: unique identifier (any string).
    work_cycles: total CPU cycles the task needs (across all its cores).
    cores: cores occupied while running.
    on_complete: callback ``(task, now)`` invoked at completion.
    metadata: free-form tags used by schedulers (flow kind, deadline, ...).
    """

    task_id: str
    work_cycles: float
    cores: int = 1
    on_complete: Optional[Callable[["Task", float], None]] = None
    metadata: dict = field(default_factory=dict)

    state: TaskState = TaskState.PENDING
    remaining_cycles: float = field(default=-1.0)
    submitted_at: float = -1.0
    completed_at: float = -1.0
    server_name: str = ""

    def __post_init__(self) -> None:
        if self.work_cycles <= 0:
            raise ValueError(f"work_cycles must be > 0, got {self.work_cycles}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.remaining_cycles < 0:
            self.remaining_cycles = float(self.work_cycles)

    @classmethod
    def prevalidated(cls, task_id: str, work_cycles: float, cores: int,
                     on_complete, metadata: dict) -> "Task":
        """Fast constructor for hot loops that build tasks in bulk.

        Produces the same object state as ``Task(...)`` but skips the
        dataclass argument plumbing and ``__post_init__`` validation — the
        caller guarantees ``work_cycles > 0`` and ``cores >= 1``.
        """
        t = object.__new__(cls)
        t.task_id = task_id
        t.work_cycles = work_cycles
        t.cores = cores
        t.on_complete = on_complete
        t.metadata = metadata
        t.state = TaskState.PENDING
        t.remaining_cycles = float(work_cycles)
        t.submitted_at = -1.0
        t.completed_at = -1.0
        t.server_name = ""
        return t


@dataclass(frozen=True)
class ServerSpec:
    """Static electrical/compute envelope of a server model."""

    model: str
    n_cores: int
    ladder: DVFSLadder
    p_idle_w: float
    p_max_w: float
    heat_fraction: float = 1.0  # fraction of electrical power emitted as heat

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if not 0 <= self.p_idle_w <= self.p_max_w:
            raise ValueError("need 0 <= p_idle <= p_max")
        if not 0.0 <= self.heat_fraction <= 1.0:
            raise ValueError("heat_fraction must be in [0, 1]")


class ComputeServer:
    """A running server instance bound to a simulation engine.

    Parameters
    ----------
    name: unique instance name.
    spec: electrical/compute envelope.
    engine: the simulation engine used for time and completion events.
    """

    _ids = itertools.count()

    def __init__(self, name: str, spec: ServerSpec, engine):
        self.name = name
        self.spec = spec
        self.engine = engine
        self._freq_cap = len(spec.ladder) - 1
        self._enabled = True
        self._failed = False
        self._running: Dict[str, Task] = {}
        # cached Σ task.cores, maintained on every change.  The cache is only
        # *read* when the engine runs with incremental accounting (the vector
        # kernel); the scalar reference recomputes from the running-task map.
        self._busy_cores = 0
        self._incremental = bool(getattr(engine, "incremental_accounting", False))
        # memoised power_w()/core_rate values, read only under incremental
        # accounting; invalidated whenever busy cores, the frequency cap or
        # the power state change, so the cached value is always bitwise equal
        # to a recomputation
        self._power_cache: Optional[float] = None
        self._rate_cache: Optional[float] = None
        self._last_sync = engine.now
        self._completion_event = None
        # accounting
        self.energy_j = 0.0
        self.busy_core_seconds = 0.0
        self.completed_count = 0
        self.cycles_executed = 0.0

    # ------------------------------------------------------------------ #
    # state inspection
    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """False when motherboards are powered off."""
        return self._enabled

    @property
    def failed(self) -> bool:
        """True while the server is hard-failed (crashed, awaiting repair).

        A failed server stays off even if the heat regulator asks for power:
        a crashed board cannot be resurrected by flipping the relay — only
        :meth:`repair` clears the state.
        """
        return self._failed

    @property
    def n_cores(self) -> int:
        """Total cores of the server."""
        return self.spec.n_cores

    @property
    def busy_cores(self) -> int:
        """Cores currently occupied by running tasks.

        Scalar reference: recomputed from the running-task map on every read.
        Vector kernel (``engine.incremental_accounting``): the incrementally
        maintained counter — always equal, O(1) instead of O(tasks).
        """
        if self._incremental:
            return self._busy_cores
        return sum(t.cores for t in self._running.values())

    @property
    def idle(self) -> bool:
        """True when no task is running (cheaper than ``running_tasks``)."""
        return not self._running

    @property
    def free_cores(self) -> int:
        """Cores available for new tasks (0 when powered off)."""
        return self.spec.n_cores - self.busy_cores if self._enabled else 0

    @property
    def utilization(self) -> float:
        """Instantaneous core utilisation in [0, 1]."""
        return self.busy_cores / self.spec.n_cores

    @property
    def freq_index(self) -> int:
        """Current operating P-state index (the cap; idle cores gate off)."""
        return self._freq_cap

    @property
    def running_tasks(self) -> List[Task]:
        """Snapshot of running tasks."""
        return list(self._running.values())

    def core_rate_cycles_per_s(self) -> float:
        """Per-core execution rate at the current P-state."""
        if self._rate_cache is not None:
            return self._rate_cache
        rate = (
            self.spec.ladder[self._freq_cap].freq_ghz * _GHZ if self._enabled else 0.0
        )
        if self._incremental:
            self._rate_cache = rate
        return rate

    def power_w(self) -> float:
        """Instantaneous electrical draw (W)."""
        if self._power_cache is not None:
            return self._power_cache
        if not self._enabled:
            p = 0.0
        else:
            util = self.utilization
            scale = self.spec.ladder.power_scale(self._freq_cap)
            p = self.spec.p_idle_w + (self.spec.p_max_w - self.spec.p_idle_w) * util * scale
        if self._incremental:
            self._power_cache = p
        return p

    def heat_output_w(self) -> float:
        """Thermal power currently delivered to the environment (W)."""
        return self.power_w() * self.spec.heat_fraction

    # ------------------------------------------------------------------ #
    # time integration
    # ------------------------------------------------------------------ #
    def sync(self) -> None:
        """Advance task progress and energy accounting to ``engine.now``."""
        now = self.engine.now
        dt = now - self._last_sync
        if dt < 0:
            raise RuntimeError(f"server {self.name}: engine time went backwards")
        if dt == 0:
            return
        self.energy_j += self.power_w() * dt
        self.busy_core_seconds += self.busy_cores * dt
        rate = self.core_rate_cycles_per_s()
        if rate > 0:
            # same fold order as `self.cycles_executed += executed` per task;
            # rem - rem == +0.0 exactly, so the branch matches min()+subtract
            acc = self.cycles_executed
            for t in self._running.values():
                step = rate * t.cores * dt
                rem = t.remaining_cycles
                if step < rem:
                    t.remaining_cycles = rem - step
                    acc += step
                else:
                    t.remaining_cycles = 0.0
                    acc += rem
            self.cycles_executed = acc
        self._last_sync = now

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        rate = self.core_rate_cycles_per_s()
        if rate <= 0 or not self._running:
            return
        horizon = float("inf")
        for t in self._running.values():
            h = t.remaining_cycles / (rate * t.cores)
            if h < horizon:
                horizon = h
        self._completion_event = self.engine.schedule(
            max(horizon, _TIME_EPS), self._on_completion_event
        )

    def _on_completion_event(self) -> None:
        self._completion_event = None
        self.sync()
        now = self.engine.now
        rate = self.core_rate_cycles_per_s()
        # threshold = max(_CYCLE_EPS, rate * t.cores * _TIME_EPS), branch form
        finished = []
        for t in self._running.values():
            thr = rate * t.cores * _TIME_EPS
            if thr < _CYCLE_EPS:
                thr = _CYCLE_EPS
            if t.remaining_cycles <= thr:
                finished.append(t)
        for t in finished:
            del self._running[t.task_id]
            self._busy_cores -= t.cores
            t.state = TaskState.COMPLETED
            t.remaining_cycles = 0.0
            t.completed_at = now
            self.completed_count += 1
        if finished:
            self._power_cache = None
        self._reschedule_completion()
        for t in finished:  # callbacks last: they may submit new work
            if t.on_complete is not None:
                t.on_complete(t, now)

    # ------------------------------------------------------------------ #
    # task control
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> bool:
        """Start ``task`` now.  Returns False if it does not fit (or off)."""
        if task.task_id in self._running:
            raise ValueError(f"task {task.task_id!r} already running on {self.name}")
        if task.cores > self.spec.n_cores:
            raise ValueError(
                f"task {task.task_id!r} needs {task.cores} cores; "
                f"{self.name} has {self.spec.n_cores}"
            )
        self.sync()
        if not self._enabled or task.cores > self.free_cores:
            return False
        task.state = TaskState.RUNNING
        task.submitted_at = self.engine.now if task.submitted_at < 0 else task.submitted_at
        task.server_name = self.name
        self._running[task.task_id] = task
        self._busy_cores += task.cores
        self._power_cache = None
        self._reschedule_completion()
        return True

    def submit_batch(self, tasks: List[Task]) -> int:
        """Start as many of ``tasks`` as fit, as one batch; returns the count.

        Byte-equivalent to calling :meth:`submit` sequentially — the same
        prefix of ``tasks`` is accepted, the running-task order is the same,
        and the engine sees the same live completion event with the same
        ``(time, priority, seq)`` — but with one sync and one completion
        reschedule instead of one per task.  The k−1 intermediate sequence
        numbers the sequential path would have burned on immediately
        re-cancelled completion events are reserved explicitly, which is what
        keeps the two paths' event streams identical (and spares the heap
        k−1 dead entries).
        """
        self.sync()
        accepted = 0
        free = self.free_cores  # tracked locally; enabled can't change mid-loop
        now = self.engine.now
        name = self.name
        running = self._running
        n_cores = self.spec.n_cores
        enabled = self._enabled
        for task in tasks:
            if task.task_id in running:
                raise ValueError(f"task {task.task_id!r} already running on {self.name}")
            if task.cores > n_cores:
                raise ValueError(
                    f"task {task.task_id!r} needs {task.cores} cores; "
                    f"{self.name} has {self.spec.n_cores}"
                )
            if not enabled or task.cores > free:
                break
            task.state = TaskState.RUNNING
            task.submitted_at = now if task.submitted_at < 0 else task.submitted_at
            task.server_name = name
            self._running[task.task_id] = task
            self._busy_cores += task.cores
            free -= task.cores
            accepted += 1
        if accepted:
            self._power_cache = None
            self.engine.reserve_seq(accepted - 1)
            self._reschedule_completion()
        return accepted

    def preempt(self, task_id: str) -> Task:
        """Stop a running task, preserving its remaining work for resubmission."""
        self.sync()
        try:
            task = self._running.pop(task_id)
        except KeyError:
            raise KeyError(f"task {task_id!r} not running on {self.name}") from None
        task.state = TaskState.PREEMPTED
        self._busy_cores -= task.cores
        self._power_cache = None
        self._reschedule_completion()
        return task

    def preempt_kind(self, kind: str) -> List[Task]:
        """Preempt every running task whose ``metadata["kind"]`` matches.

        One sync and one completion reschedule for the whole batch — the
        per-task :meth:`preempt` loop is quadratic in reschedules, which the
        surrogate tier's switch-time quiesce of a full fleet cannot afford.
        """
        self.sync()
        tasks = [t for t in self._running.values()
                 if t.metadata.get("kind") == kind]
        for t in tasks:
            del self._running[t.task_id]
            t.state = TaskState.PREEMPTED
            self._busy_cores -= t.cores
        if tasks:
            self._power_cache = None
            self._reschedule_completion()
        return tasks

    def kill_all(self) -> List[Task]:
        """Kill every running task (e.g. crash injection); returns them."""
        self.sync()
        tasks = list(self._running.values())
        self._running.clear()
        self._busy_cores = 0
        self._power_cache = None
        for t in tasks:
            t.state = TaskState.KILLED
        self._reschedule_completion()
        return tasks

    # ------------------------------------------------------------------ #
    # power / DVFS control
    # ------------------------------------------------------------------ #
    def set_freq_cap(self, index: int) -> None:
        """Clamp the P-state (the heat regulator's actuator)."""
        if not 0 <= index < len(self.spec.ladder):
            raise ValueError(f"freq index {index} out of range 0..{len(self.spec.ladder)-1}")
        self.sync()
        self._freq_cap = index
        self._power_cache = None
        self._rate_cache = None
        self._reschedule_completion()

    def power_off(self) -> None:
        """Turn the motherboards off.  Requires the server to be idle."""
        self.sync()
        if self._running:
            raise RuntimeError(
                f"cannot power off {self.name}: {len(self._running)} tasks running "
                "(preempt or drain first)"
            )
        self._enabled = False
        self._power_cache = None
        self._rate_cache = None

    def power_on(self) -> None:
        """Turn the motherboards back on (refused while hard-failed)."""
        self.sync()
        if self._failed:
            return
        self._enabled = True
        self._power_cache = None
        self._rate_cache = None

    def fail(self) -> None:
        """Hard-fail the server: off, and immune to :meth:`power_on`.

        Running tasks must already be killed (see :meth:`kill_all`).
        """
        self.sync()
        if self._running:
            raise RuntimeError(
                f"cannot fail {self.name}: {len(self._running)} tasks running "
                "(kill_all first)"
            )
        self._enabled = False
        self._failed = True
        self._power_cache = None
        self._rate_cache = None

    def repair(self) -> None:
        """Clear the hard-failure state and power the board back on."""
        self._failed = False
        self.power_on()

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} cores={self.busy_cores}/{self.spec.n_cores} "
            f"f={self.spec.ladder[self._freq_cap].freq_ghz:.1f}GHz "
            f"{'on' if self._enabled else 'off'}>"
        )
