"""DVFS frequency/voltage ladders.

The paper's heat regulator (§III-B) "implements a DVFS based technique
(voltage and frequency regulation) to guarantee that the energy consumed
corresponds to the heat demand".  This module provides the ladder the
regulator climbs: a sorted list of P-states ``(frequency GHz, voltage V)``.

The dynamic-power scaling factor of a state follows the classic
:math:`P \\propto f \\cdot V^2` law (Le Sueur & Heiser, the paper's ref [17]),
normalised so the top state has factor 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["PState", "DVFSLadder"]


@dataclass(frozen=True)
class PState:
    """One DVFS operating point."""

    freq_ghz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0 or self.voltage_v <= 0:
            raise ValueError(f"P-state must have positive freq/voltage: {self}")


class DVFSLadder:
    """An ordered set of P-states, lowest frequency first.

    Parameters
    ----------
    states:
        P-states in strictly increasing frequency order.  Voltages must be
        non-decreasing with frequency (physical DVFS curves are).
    """

    def __init__(self, states: Sequence[PState]):
        states = list(states)
        if not states:
            raise ValueError("ladder needs at least one P-state")
        for a, b in zip(states, states[1:]):
            if b.freq_ghz <= a.freq_ghz:
                raise ValueError("P-states must be in strictly increasing frequency order")
            if b.voltage_v < a.voltage_v:
                raise ValueError("voltage must be non-decreasing with frequency")
        self.states: Tuple[PState, ...] = tuple(states)
        # f·V² factors are pure functions of the (immutable) states; they sit
        # on the per-sync hot path, so compute them once
        t = self.states[-1]
        self._power_scales: Tuple[float, ...] = tuple(
            (s.freq_ghz * s.voltage_v**2) / (t.freq_ghz * t.voltage_v**2)
            for s in self.states
        )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.states)

    def __getitem__(self, i: int) -> PState:
        return self.states[i]

    @property
    def top(self) -> PState:
        """Highest-frequency state."""
        return self.states[-1]

    @property
    def bottom(self) -> PState:
        """Lowest-frequency state."""
        return self.states[0]

    def power_scale(self, index: int) -> float:
        """Dynamic-power factor of state ``index`` relative to the top state.

        ``f·V²`` normalised to the top state: in (0, 1].
        """
        return self._power_scales[index]

    def speed_scale(self, index: int) -> float:
        """Throughput factor of state ``index`` relative to the top state."""
        return self.states[index].freq_ghz / self.top.freq_ghz

    def index_for_power_budget(self, budget_fraction: float) -> int:
        """Highest state whose power factor is within ``budget_fraction``.

        This is the regulator's primitive: given "you may dissipate at most
        x·P_max", pick the fastest allowed P-state.  Always returns at least
        the bottom state (a server that is on cannot go below its floor).
        """
        best = 0
        for i, scale in enumerate(self._power_scales):
            if scale <= budget_fraction + 1e-12:
                best = i
        return best

    # ------------------------------------------------------------------ #
    @staticmethod
    def intel_like(n_states: int = 6, f_min: float = 1.2, f_max: float = 3.5,
                   v_min: float = 0.8, v_max: float = 1.25) -> "DVFSLadder":
        """A ladder shaped like a mobile Intel i7 (the CPUs Qarnot shipped)."""
        if n_states < 1:
            raise ValueError("need at least one state")
        if n_states == 1:
            return DVFSLadder([PState(f_max, v_max)])
        states: List[PState] = []
        for i in range(n_states):
            a = i / (n_states - 1)
            states.append(PState(f_min + a * (f_max - f_min), v_min + a * (v_max - v_min)))
        return DVFSLadder(states)
