"""Digital heaters: Q.rad, Nerdalize e-radiator, crypto-heater.

Published envelopes reproduced from the paper (§II-B1):

* **Q.rad** — 500 W, 110–230 V, 3–4 CPUs on Ethernet, sensor suite, free
  cooling (all heat goes to the room), totally silent, fiber uplink;
* **Nerdalize e-radiator** — 1000 W, dual pipeline: winter → heat into the
  home, summer → heat expelled outside (the wall-hole install);
* **Qarnot crypto-heater QC-1** — 650 W, 2 GPUs.

These classes bind a :class:`~repro.hardware.server.ComputeServer` to a room:
``heat_output_w()`` is what :class:`repro.thermal.building.Room` pulls on the
thermal tick, and the dump mode routes the same watts outdoors instead (the
urban-heat-island mechanism of §III-A).
"""

from __future__ import annotations

from enum import Enum

from repro.hardware.cpu import DVFSLadder
from repro.hardware.server import ComputeServer, ServerSpec

__all__ = ["QRad", "ERadiator", "CryptoHeater", "HeatDumpMode", "QRAD_SPEC", "ERADIATOR_SPEC", "CRYPTO_SPEC"]


class HeatDumpMode(Enum):
    """Where a dual-pipe heater's heat currently goes."""

    INDOOR = "indoor"
    OUTDOOR = "outdoor"


#: Q.rad: 4 mobile-i7-class CPUs (4 cores each), 500 W envelope, ~25 W idle.
QRAD_SPEC = ServerSpec(
    model="qrad",
    n_cores=16,
    ladder=DVFSLadder.intel_like(),
    p_idle_w=25.0,
    p_max_w=500.0,
    heat_fraction=1.0,
)

#: Nerdalize e-radiator: 1000 W envelope, larger node count.
ERADIATOR_SPEC = ServerSpec(
    model="eradiator",
    n_cores=32,
    ladder=DVFSLadder.intel_like(),
    p_idle_w=40.0,
    p_max_w=1000.0,
    heat_fraction=1.0,
)

#: Crypto-heater QC-1: 2 GPUs modelled as 2 wide "cores", 650 W.
CRYPTO_SPEC = ServerSpec(
    model="crypto-heater",
    n_cores=2,
    ladder=DVFSLadder.intel_like(n_states=3, f_min=1.0, f_max=1.8, v_min=0.85, v_max=1.05),
    p_idle_w=30.0,
    p_max_w=650.0,
    heat_fraction=1.0,
)


class QRad(ComputeServer):
    """The Qarnot digital heater.

    Free-cooled: every electrical watt is delivered to the room, there is no
    fan (silent) and no chiller.  The sensor suite is attached separately via
    :class:`repro.hardware.sensors.SensorSuite` by callers that need it.
    """

    def __init__(self, name: str, engine, spec: ServerSpec = QRAD_SPEC):
        super().__init__(name, spec, engine)


class ERadiator(ComputeServer):
    """Nerdalize-style dual-pipe heater.

    In :attr:`HeatDumpMode.OUTDOOR` (summer), ``heat_output_w()`` — the heat a
    *room* receives — is zero, and :meth:`outdoor_heat_w` carries the full
    dissipation instead.  Callers feed the latter into the
    :class:`~repro.thermal.heat_island.HeatIslandLedger`.
    """

    def __init__(self, name: str, engine, spec: ServerSpec = ERADIATOR_SPEC):
        super().__init__(name, spec, engine)
        self.dump_mode = HeatDumpMode.INDOOR

    def set_dump_mode(self, mode: HeatDumpMode) -> None:
        """Switch the pipeline between indoor heating and outdoor dumping."""
        self.sync()  # settle energy under the old mode first
        self.dump_mode = mode

    def heat_output_w(self) -> float:
        """Heat delivered to the room (0 when dumping outdoors)."""
        if self.dump_mode is HeatDumpMode.OUTDOOR:
            return 0.0
        return super().heat_output_w()

    def outdoor_heat_w(self) -> float:
        """Heat rejected outdoors (0 when heating the room)."""
        if self.dump_mode is HeatDumpMode.OUTDOOR:
            return super().heat_output_w()
        return 0.0


class CryptoHeater(ComputeServer):
    """Qarnot QC-1: a heater whose workload is GPU currency mining.

    Mining is modelled as an always-available filler task stream: the mining
    controller (see :mod:`repro.workloads.cloud`) keeps the GPUs saturated
    whenever heat is requested, which is exactly how the product works.
    """

    def __init__(self, name: str, engine, spec: ServerSpec = CRYPTO_SPEC):
        super().__init__(name, spec, engine)
