"""Hardware models: data-furnace servers, datacenter nodes, sensors, aging.

The paper's catalogue (§II-B) maps to classes here:

* Qarnot **Q.rad** digital heater (500 W, 3–4 CPUs, sensors, free cooling) →
  :class:`repro.hardware.qrad.QRad`;
* Nerdalize **e-radiator** (1000 W, dual pipe) →
  :class:`repro.hardware.qrad.ERadiator`;
* Qarnot **crypto-heater** (650 W, 2 GPUs) →
  :class:`repro.hardware.qrad.CryptoHeater`;
* Asperitas / Stimergy **digital boilers** (1–20 kW, 20–200 CPUs) →
  :class:`repro.hardware.boiler.DigitalBoiler`;
* classical air-cooled **datacenter** nodes (the comparator) →
  :class:`repro.hardware.datacenter.DatacenterNode`.

All of them share the DVFS-capable compute engine of
:class:`repro.hardware.server.ComputeServer`.
"""

from repro.hardware.aging import AgingModel, AgingTracker
from repro.hardware.boiler import ASPERITAS_AIC24, STIMERGY_SMALL, BoilerSpec, DigitalBoiler
from repro.hardware.containers import ContainerImage, DeploymentStack, Registry
from repro.hardware.cpu import DVFSLadder, PState
from repro.hardware.datacenter import Datacenter, DatacenterNode
from repro.hardware.qrad import CryptoHeater, ERadiator, HeatDumpMode, QRad
from repro.hardware.sensors import Sensor, SensorKind, SensorSuite
from repro.hardware.server import ComputeServer, ServerSpec, Task, TaskState

__all__ = [
    "ASPERITAS_AIC24",
    "AgingModel",
    "AgingTracker",
    "BoilerSpec",
    "ComputeServer",
    "ContainerImage",
    "DeploymentStack",
    "Registry",
    "CryptoHeater",
    "Datacenter",
    "DatacenterNode",
    "DigitalBoiler",
    "DVFSLadder",
    "ERadiator",
    "HeatDumpMode",
    "PState",
    "QRad",
    "Sensor",
    "SensorKind",
    "SensorSuite",
    "ServerSpec",
    "STIMERGY_SMALL",
    "Task",
    "TaskState",
]
