"""Digital boilers: immersion-cooled racks heating water (paper §II-B2).

Two published shapes are provided:

* **Asperitas AIC24-like** — 200 CPUs on 10 Gbps Ethernet, 20 kW;
* **Stimergy-like** — oil-immersed, 1–4 kW, 20–40 servers.

A :class:`DigitalBoiler` is a :class:`~repro.hardware.server.ComputeServer`
whose heat goes into a :class:`~repro.thermal.hydronics.WaterLoop` instead of
a room.  The split between *useful* heat (absorbed by the tank) and *dumped*
heat (tank at ceiling) is what experiment E7 measures: "with a boiler that
always generates heat, the intensity of the waste heat rejected will be more
important" (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import DVFSLadder
from repro.hardware.server import ComputeServer, ServerSpec
from repro.thermal.heat_island import HeatIslandLedger, OutdoorHeatSource
from repro.thermal.hydronics import DrawProfile, WaterLoop

__all__ = ["BoilerSpec", "DigitalBoiler", "ASPERITAS_AIC24", "STIMERGY_SMALL"]


@dataclass(frozen=True)
class BoilerSpec:
    """Compute + hydraulic envelope of a boiler product."""

    server: ServerSpec
    description: str


ASPERITAS_AIC24 = BoilerSpec(
    server=ServerSpec(
        model="asperitas-aic24",
        n_cores=200,
        ladder=DVFSLadder.intel_like(),
        p_idle_w=1200.0,
        p_max_w=20000.0,
        heat_fraction=1.0,  # immersion: all heat into the oil/water circuit
    ),
    description="Asperitas AIC24: 200 CPUs, 10 Gbps, 20 kW immersion boiler",
)

STIMERGY_SMALL = BoilerSpec(
    server=ServerSpec(
        model="stimergy-4kw",
        n_cores=40,
        ladder=DVFSLadder.intel_like(),
        p_idle_w=250.0,
        p_max_w=4000.0,
        heat_fraction=1.0,
    ),
    description="Stimergy oil-immersed boiler: 40 servers, 4 kW",
)


class DigitalBoiler(ComputeServer):
    """A boiler rack coupled to a building water loop.

    Parameters
    ----------
    name: instance name.
    engine: simulation engine.
    loop: the water tank receiving the heat.
    spec: product envelope (default Asperitas AIC24).
    draw_profile: building hot-water draw.
    ledger: optional heat-island ledger receiving overflow heat.

    Notes
    -----
    Call :meth:`thermal_step` on the building tick (it is **not** automatic):
    it feeds the tank with the boiler's current heat output and books any
    overflow as ``BOILER_OVERFLOW`` outdoor heat.
    """

    def __init__(
        self,
        name: str,
        engine,
        loop: WaterLoop,
        spec: BoilerSpec = ASPERITAS_AIC24,
        draw_profile: DrawProfile = DrawProfile(),
        ledger: HeatIslandLedger | None = None,
    ):
        super().__init__(name, spec.server, engine)
        self.boiler_spec = spec
        self.loop = loop
        self.draw_profile = draw_profile
        self.ledger = ledger
        self.useful_heat_j = 0.0
        self.dumped_heat_j = 0.0

    def heat_demand_w(self) -> float:
        """Power the water loop can currently absorb (smart-grid signal)."""
        return self.loop.headroom_w

    def thermal_step(self, now: float, dt: float, hour_of_day: float) -> tuple[float, float]:
        """Push ``dt`` seconds of boiler heat into the tank.

        Returns ``(useful_w, dumped_w)``.
        """
        self.sync()
        p = self.heat_output_w()
        useful_w, dumped_w = self.loop.step(dt, p, hour_of_day, self.draw_profile)
        self.useful_heat_j += useful_w * dt
        self.dumped_heat_j += dumped_w * dt
        if self.ledger is not None:
            if dumped_w > 0:
                self.ledger.add_outdoor(OutdoorHeatSource.BOILER_OVERFLOW, dumped_w * dt)
            if useful_w > 0:
                self.ledger.add_useful_heat(useful_w * dt)
        return useful_w, dumped_w
