"""The service computing stack: container/VM deployment on DF servers.

Paper §I/§II-B1: each Q.rad "integrates a service computing stack that allows
external applications to deploy containers or virtual machines on them", and
§III-B worries that "the environment deployed on nodes (firmware, base system,
containers, etc.) must cover the need of edge and DCC requests.  Otherwise, we
should be able to reboot workers nodes."

This module models that stack:

* :class:`ContainerImage` — an image with a size and a start cost;
* :class:`Registry` — where images live; pulls ride a network link;
* :class:`DeploymentStack` — per-server image cache + running environments:
  ``ensure(image)`` returns the delay before a task of that image can start
  (0 when warm, pull + cold-start when not), with LRU eviction under a disk
  budget.

Schedulers consult the stack to price environment switches precisely instead
of the flat ``context_switch_s`` abstraction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.network.link import Link

__all__ = ["ContainerImage", "Registry", "DeploymentStack"]


@dataclass(frozen=True)
class ContainerImage:
    """A deployable environment."""

    name: str
    size_bytes: float
    cold_start_s: float = 2.0  # unpack + init once the image is local

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("image size must be > 0")
        if self.cold_start_s < 0:
            raise ValueError("cold start must be >= 0")


class Registry:
    """An image registry reachable over a link (the Qarnot fiber uplink)."""

    def __init__(self, link: Link):
        self.link = link
        self._images: Dict[str, ContainerImage] = {}
        self.pulls = 0
        self.bytes_served = 0.0

    def publish(self, image: ContainerImage) -> None:
        """Make an image pullable."""
        if image.name in self._images:
            raise ValueError(f"image {image.name!r} already published")
        self._images[image.name] = image

    def image(self, name: str) -> ContainerImage:
        """Look up a published image."""
        try:
            return self._images[name]
        except KeyError:
            raise KeyError(f"image {name!r} not in registry") from None

    def pull_delay(self, name: str) -> float:
        """Time to transfer the image to a server (seconds)."""
        img = self.image(name)
        self.pulls += 1
        self.bytes_served += img.size_bytes
        return self.link.delay(img.size_bytes)


class DeploymentStack:
    """Per-server image cache with LRU eviction.

    Parameters
    ----------
    registry: where misses are pulled from.
    disk_bytes: local image-cache budget.
    """

    def __init__(self, registry: Registry, disk_bytes: float = 50e9):
        if disk_bytes <= 0:
            raise ValueError("disk budget must be > 0")
        self.registry = registry
        self.disk_bytes = float(disk_bytes)
        self._cache: "OrderedDict[str, ContainerImage]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    @property
    def used_bytes(self) -> float:
        """Bytes of cached images."""
        return sum(i.size_bytes for i in self._cache.values())

    def is_warm(self, name: str) -> bool:
        """Whether the image is already local."""
        return name in self._cache

    def ensure(self, name: str) -> float:
        """Make ``name`` runnable; returns the start delay (s).

        Warm: the cold-start cost only if the environment isn't the one most
        recently run (a warm *running* environment restarts for free).
        Miss: registry pull + cold start, evicting LRU images as needed.
        """
        if self.is_warm(name):
            self.hits += 1
            was_hot = next(reversed(self._cache)) == name
            self._cache.move_to_end(name)
            return 0.0 if was_hot else self._cache[name].cold_start_s
        self.misses += 1
        img = self.registry.image(name)
        if img.size_bytes > self.disk_bytes:
            raise ValueError(
                f"image {name!r} ({img.size_bytes:.2e} B) exceeds the disk budget"
            )
        delay = self.registry.pull_delay(name)
        while self.used_bytes + img.size_bytes > self.disk_bytes:
            evicted, _ = self._cache.popitem(last=False)
            self.evictions += 1
        self._cache[name] = img
        return delay + img.cold_start_s

    def prefetch(self, name: str) -> float:
        """Pull an image ahead of demand; returns the pull time (no start)."""
        if self.is_warm(name):
            return 0.0
        delay = self.ensure(name)
        return max(delay - self.registry.image(name).cold_start_s, 0.0)

    def hit_rate(self) -> float:
        """Cache hit rate so far (1.0 when nothing was requested)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0
