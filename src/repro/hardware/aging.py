"""Thermally accelerated processor aging.

Paper §III-C: "the cooling approach of DF servers might cause the acceleration
of processor aging and consequently, the need to replace them".  Free-cooled
Q.rads run their junctions hotter than chilled datacenter silicon; we model
the lifetime impact with the standard Arrhenius acceleration factor used in
semiconductor reliability:

.. math::

   AF(T) = \\exp\\left(\\frac{E_a}{k_B}\\left(\\frac{1}{T_{ref}} -
           \\frac{1}{T}\\right)\\right)

with activation energy :math:`E_a \\approx 0.7` eV (electromigration-class
wear-out) and temperatures in kelvin.  An :class:`AgingTracker` consumes a
junction-temperature trace and accumulates *equivalent wear hours*; expected
lifetime is the base lifetime divided by the duty-weighted mean AF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AgingModel", "AgingTracker"]

_BOLTZMANN_EV = 8.617333262e-5  # eV/K
_KELVIN = 273.15


@dataclass(frozen=True)
class AgingModel:
    """Arrhenius wear-out model.

    Attributes
    ----------
    activation_energy_ev: activation energy (eV); 0.7 typical for
        electromigration, 0.3–0.5 for hot-carrier injection.
    t_ref_c: junction temperature (°C) at which ``base_lifetime_hours`` holds.
    base_lifetime_hours: expected life at the reference temperature.
    """

    activation_energy_ev: float = 0.7
    t_ref_c: float = 60.0
    base_lifetime_hours: float = 10.0 * 365 * 24  # 10 years at reference

    def __post_init__(self) -> None:
        if self.activation_energy_ev <= 0:
            raise ValueError("activation energy must be > 0")
        if self.base_lifetime_hours <= 0:
            raise ValueError("base lifetime must be > 0")

    def acceleration_factor(self, t_junction_c):
        """Wear acceleration relative to the reference temperature.

        > 1 when hotter than reference, < 1 when cooler.  Vectorised.
        """
        t = np.asarray(t_junction_c, dtype=float) + _KELVIN
        t_ref = self.t_ref_c + _KELVIN
        af = np.exp(self.activation_energy_ev / _BOLTZMANN_EV * (1.0 / t_ref - 1.0 / t))
        return float(af) if af.ndim == 0 else af

    def junction_temperature_c(self, ambient_c, power_fraction, theta_ja_c: float = 35.0):
        """Junction temperature from ambient and load.

        ``theta_ja_c`` is the effective junction-to-ambient rise at full
        power; free-cooled Q.rads see room ambient (~20 °C) while chilled DC
        aisles see ~18–24 °C supply but with far larger airflow (use a lower
        ``theta_ja_c`` there).
        """
        return np.asarray(ambient_c, dtype=float) + theta_ja_c * np.asarray(
            power_fraction, dtype=float
        )


class AgingTracker:
    """Accumulates wear over a temperature/duty trace."""

    def __init__(self, model: AgingModel = AgingModel()):
        self.model = model
        self.wear_equivalent_hours = 0.0
        self.real_hours = 0.0

    def add(self, dt_s: float, t_junction_c: float) -> None:
        """Record ``dt_s`` seconds at a junction temperature."""
        if dt_s <= 0:
            raise ValueError(f"dt must be > 0, got {dt_s}")
        af = self.model.acceleration_factor(t_junction_c)
        self.wear_equivalent_hours += af * dt_s / 3600.0
        self.real_hours += dt_s / 3600.0

    @property
    def mean_acceleration(self) -> float:
        """Duty-weighted mean acceleration factor so far."""
        return self.wear_equivalent_hours / self.real_hours if self.real_hours > 0 else 0.0

    def expected_lifetime_years(self) -> float:
        """Projected lifetime (years) if the recorded duty pattern continues."""
        acc = self.mean_acceleration
        if acc <= 0:
            return float("inf")
        return self.model.base_lifetime_hours / acc / (365 * 24)

    def consumed_life_fraction(self) -> float:
        """Fraction of total life consumed by the recorded trace."""
        return self.wear_equivalent_hours / self.model.base_lifetime_hours
