"""Classical air-cooled datacenter: the paper's comparator substrate.

A :class:`DatacenterNode` is the same compute engine as a Q.rad, but its heat
is *removed* by a cooling plant instead of warming a room.  Cooling draws
extra electricity proportional to the IT load (a COP model), which is exactly
what PUE measures:

.. math:: \\mathrm{PUE} = \\frac{P_{IT} + P_{cooling} + P_{fixed}}{P_{IT}}

The paper cites CloudandHeat's data-furnace PUE of **1.026** versus typical
air-cooled facilities; experiment E1 regenerates that comparison.  All heat
(IT + cooling compressor work) is rejected outdoors and can be booked to the
:class:`~repro.thermal.heat_island.HeatIslandLedger` (experiment E7).

:class:`Datacenter` is a fleet of nodes with a shared admission queue — the
vertical-offloading target of §III-B.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.hardware.cpu import DVFSLadder
from repro.hardware.server import ComputeServer, ServerSpec, Task
from repro.thermal.heat_island import HeatIslandLedger, OutdoorHeatSource

__all__ = ["DatacenterNode", "Datacenter", "DC_NODE_SPEC"]

#: a 2-socket air-cooled rack server
DC_NODE_SPEC = ServerSpec(
    model="dc-node",
    n_cores=32,
    ladder=DVFSLadder.intel_like(f_min=1.6, f_max=3.2),
    p_idle_w=120.0,
    p_max_w=450.0,
    heat_fraction=0.0,  # heat never reaches a room: it is rejected outdoors
)


class DatacenterNode(ComputeServer):
    """One air-cooled node.

    Parameters
    ----------
    cooling_overhead:
        Cooling electrical power as a fraction of IT power (1/COP of the
        chiller chain).  0.35 ≈ legacy air-cooled room; 0.1 ≈ modern facility.
    fixed_overhead_w:
        Per-node share of facility fixed load (UPS losses, lighting).
    """

    def __init__(
        self,
        name: str,
        engine,
        spec: ServerSpec = DC_NODE_SPEC,
        cooling_overhead: float = 0.35,
        fixed_overhead_w: float = 20.0,
    ):
        if cooling_overhead < 0 or fixed_overhead_w < 0:
            raise ValueError("overheads must be >= 0")
        super().__init__(name, spec, engine)
        self.cooling_overhead = cooling_overhead
        self.fixed_overhead_w = fixed_overhead_w
        self.it_energy_j = 0.0

    def sync(self) -> None:
        """Advance accounting; also integrates IT-only energy for PUE."""
        dt = self.engine.now - self._last_sync
        if dt > 0:
            self.it_energy_j += self.it_power_w() * dt
        super().sync()

    def it_power_w(self) -> float:
        """IT-only electrical draw (W)."""
        return super().power_w()

    def power_w(self) -> float:
        """Total draw including cooling + fixed overheads (W)."""
        it = self.it_power_w()
        if it == 0.0:
            return 0.0
        return it * (1.0 + self.cooling_overhead) + self.fixed_overhead_w

    def pue(self) -> float:
        """Instantaneous PUE (undefined → returns inf when IT power is 0)."""
        it = self.it_power_w()
        return self.power_w() / it if it > 0 else float("inf")

    def outdoor_heat_w(self) -> float:
        """All consumed power ends up as outdoor heat rejection."""
        return self.power_w()


class Datacenter:
    """A fleet of nodes with FCFS spillover placement.

    The vertical-offload target: ``submit`` places a task on the first node
    with enough free cores, queueing it otherwise (released as nodes free up).

    Parameters
    ----------
    n_nodes: fleet size.
    engine: simulation engine.
    ledger: optional heat-island ledger; when provided, call
        :meth:`account_heat` on a periodic tick to book outdoor rejection.
    """

    def __init__(
        self,
        name: str,
        n_nodes: int,
        engine,
        spec: ServerSpec = DC_NODE_SPEC,
        cooling_overhead: float = 0.35,
        fixed_overhead_w: float = 20.0,
        ledger: Optional[HeatIslandLedger] = None,
    ):
        if n_nodes < 1:
            raise ValueError("datacenter needs at least one node")
        self.name = name
        self.engine = engine
        self.ledger = ledger
        self.nodes: List[DatacenterNode] = [
            DatacenterNode(f"{name}-n{i}", engine, spec, cooling_overhead, fixed_overhead_w)
            for i in range(n_nodes)
        ]
        self._queue: List[Task] = []
        self._wrapped_cb: Dict[str, Optional[Callable[[Task, float], None]]] = {}

    # ------------------------------------------------------------------ #
    @property
    def total_cores(self) -> int:
        """Fleet core count."""
        return sum(n.n_cores for n in self.nodes)

    @property
    def free_cores(self) -> int:
        """Currently free cores across the fleet."""
        return sum(n.free_cores for n in self.nodes)

    @property
    def queue_depth(self) -> int:
        """Tasks waiting for placement."""
        return len(self._queue)

    def submit(self, task: Task) -> None:
        """Place (or queue) a task; its completion drains the queue."""
        original = task.on_complete
        self._wrapped_cb[task.task_id] = original

        def chained(t: Task, now: float) -> None:
            cb = self._wrapped_cb.pop(t.task_id, None)
            if cb is not None:
                cb(t, now)
            self._drain()

        task.on_complete = chained
        if task.submitted_at < 0:
            task.submitted_at = self.engine.now
        if not self._try_place(task):
            self._queue.append(task)

    def _try_place(self, task: Task) -> bool:
        for node in self.nodes:
            if node.free_cores >= task.cores and node.submit(task):
                return True
        return False

    def _drain(self) -> None:
        still_waiting: List[Task] = []
        for task in self._queue:
            if not self._try_place(task):
                still_waiting.append(task)
        self._queue = still_waiting

    # ------------------------------------------------------------------ #
    def power_w(self) -> float:
        """Total fleet electrical draw (W)."""
        return sum(n.power_w() for n in self.nodes)

    def it_power_w(self) -> float:
        """Fleet IT-only draw (W)."""
        return sum(n.it_power_w() for n in self.nodes)

    def fleet_pue(self) -> float:
        """Fleet-level PUE at this instant."""
        it = self.it_power_w()
        return self.power_w() / it if it > 0 else float("inf")

    def energy_pue(self) -> float:
        """Energy-weighted PUE over the whole run so far.

        ``ComputeServer.sync`` integrates the polymorphic ``power_w`` — total
        facility draw for datacenter nodes — while :class:`DatacenterNode`
        additionally integrates IT-only energy, so the ratio is exact.
        """
        for n in self.nodes:
            n.sync()
        it_j = sum(n.it_energy_j for n in self.nodes)
        total_j = sum(n.energy_j for n in self.nodes)
        return total_j / it_j if it_j > 0 else float("inf")

    def account_heat(self, dt: float) -> None:
        """Book ``dt`` seconds of outdoor heat rejection to the ledger."""
        if self.ledger is None:
            return
        p = sum(n.outdoor_heat_w() for n in self.nodes)
        if p > 0:
            self.ledger.add_outdoor(OutdoorHeatSource.DC_COOLING, p * dt)
