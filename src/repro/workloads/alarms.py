"""Audio alarm-detection stream (paper ref [11], Durand, Ngoko & Cérin 2017).

The paper's concrete evidence that "near real-time applications ... could be
operated on digital heaters" is in-situ audio classification: microphones
stream short frames, each frame gets a fast inference (is this an alarm sound?
a fall?), and rare positives trigger a heavier confirmation pass.

The generator reproduces that two-tier shape:

* **inference frames** at a fixed cadence per device (e.g. one 1-second frame
  per second), small compute, sub-second deadline;
* **alarm events** as a sparse Poisson process; each positive enqueues a
  confirmation request ~50× heavier with a still-tight deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.requests import EdgeMode, EdgeRequest

__all__ = ["AlarmStreamConfig", "AlarmStreamGenerator"]

_GHZ = 1e9


@dataclass(frozen=True)
class AlarmStreamConfig:
    """Parameters of one building's alarm-detection deployment."""

    n_devices: int = 8
    frame_period_s: float = 1.0
    inference_megacycles: float = 40.0     # a small CNN/GMM per frame
    inference_deadline_s: float = 0.5
    alarm_rate_per_day: float = 2.0        # true events across the building
    confirm_factor: float = 50.0           # confirmation cost multiplier
    confirm_deadline_s: float = 2.0
    # devices ship MFCC-class features, not raw audio (the in-situ design of
    # ref [11]): ~4 KB per one-second frame
    frame_bytes: float = 4_000.0

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError("need at least one device")
        if self.frame_period_s <= 0 or self.inference_megacycles <= 0:
            raise ValueError("frame period and cost must be > 0")
        if self.alarm_rate_per_day < 0 or self.confirm_factor < 1:
            raise ValueError("alarm rate must be >= 0 and confirm factor >= 1")


class AlarmStreamGenerator:
    """Generates the inference stream + sparse alarm confirmations."""

    def __init__(self, rng: np.random.Generator, source: str,
                 config: AlarmStreamConfig = AlarmStreamConfig()):
        self.rng = rng
        self.source = source
        self.config = config

    def frame_rate_hz(self) -> float:
        """Aggregate inference request rate of the building."""
        return self.config.n_devices / self.config.frame_period_s

    def generate(self, t0: float, t1: float) -> Tuple[List[EdgeRequest], List[EdgeRequest]]:
        """Return ``(inference_requests, confirmation_requests)`` in [t0, t1).

        Device frame clocks are phase-staggered so the fleet does not emit
        synchronised bursts (as real deployments de-synchronise).
        """
        if t1 < t0:
            raise ValueError("need t1 >= t0")
        cfg = self.config
        inferences: List[EdgeRequest] = []
        phases = self.rng.uniform(0.0, cfg.frame_period_s, size=cfg.n_devices)
        for dev in range(cfg.n_devices):
            t = t0 + float(phases[dev])
            while t < t1:
                inferences.append(self._inference(t, dev))
                t += cfg.frame_period_s
        inferences.sort(key=lambda r: r.time)

        confirmations: List[EdgeRequest] = []
        rate = cfg.alarm_rate_per_day / 86400.0
        if rate > 0:
            t = t0 + float(self.rng.exponential(1.0 / rate))
            while t < t1:
                confirmations.append(self._confirmation(t))
                t += float(self.rng.exponential(1.0 / rate))
        return inferences, confirmations

    def _inference(self, t: float, device: int) -> EdgeRequest:
        cfg = self.config
        return EdgeRequest(
            cycles=cfg.inference_megacycles * 1e6,
            time=t,
            cores=1,
            input_bytes=cfg.frame_bytes,
            output_bytes=64.0,
            deadline_s=cfg.inference_deadline_s,
            mode=EdgeMode.INDIRECT,
            # each microphone has its own radio: source is per-device so the
            # gateway does not serialise the whole building over one uplink
            source=f"{self.source}/mic-{device}",
            privacy_sensitive=True,  # raw home audio must stay local (§I)
        )

    def _confirmation(self, t: float) -> EdgeRequest:
        cfg = self.config
        device = int(self.rng.integers(0, cfg.n_devices))
        return EdgeRequest(
            cycles=cfg.inference_megacycles * 1e6 * cfg.confirm_factor,
            time=t,
            cores=2,
            input_bytes=cfg.frame_bytes * 5,
            output_bytes=256.0,
            deadline_s=cfg.confirm_deadline_s,
            mode=EdgeMode.INDIRECT,
            source=f"{self.source}/mic-{device}",
            privacy_sensitive=True,
        )
