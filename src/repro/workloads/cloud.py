"""Internet/DCC job generators (the second flow).

Two shapes:

* :class:`CloudJobGenerator` — generic batch traffic: Poisson arrivals on a
  business-hours profile, lognormal service demand (the classic heavy-ish
  tail of render/risk jobs), 1–8 cores per job;
* :class:`RenderCampaign` — a scaled replay of the paper's 2016 Qarnot
  rendering statistics (§III, opening): **1100 users, 600 000 images,
  11 000 000 hours of computations** — i.e. a mean of ≈ 18.3 core-hours per
  frame.  ``QARNOT_2016_CAMPAIGN`` carries the published numbers; the replay
  scales them down by a configurable factor so laptop-scale simulations keep
  the per-frame distribution while shrinking the count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.core.requests import CloudRequest
from repro.workloads.arrivals import DiurnalProfile

__all__ = ["CloudJobConfig", "CloudJobGenerator", "RenderCampaign", "QARNOT_2016_CAMPAIGN"]

_GHZ = 1e9


@dataclass(frozen=True)
class CloudJobConfig:
    """Parameters of the generic DCC batch flow.

    ``mean_core_seconds`` is the service demand at the reference frequency
    ``ref_freq_ghz`` (cycles are what servers actually execute).
    """

    rate_per_hour: float = 20.0
    mean_core_seconds: float = 600.0
    sigma_log: float = 1.0
    max_cores: int = 8
    ref_freq_ghz: float = 3.5
    input_mb: float = 20.0
    output_mb: float = 50.0

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0 or self.mean_core_seconds <= 0:
            raise ValueError("rates and demands must be positive")
        if self.max_cores < 1:
            raise ValueError("max_cores must be >= 1")


class CloudJobGenerator:
    """Generates :class:`CloudRequest` batches over a window."""

    def __init__(self, rng: np.random.Generator, config: CloudJobConfig = CloudJobConfig()):
        self.rng = rng
        self.config = config
        self.profile = DiurnalProfile.office_hours(config.rate_per_hour / 3600.0)

    def generate(self, t0: float, t1: float) -> List[CloudRequest]:
        """All cloud requests arriving in [t0, t1), time-sorted."""
        times = self.profile.sample(self.rng, t0, t1)
        return [self._make(t) for t in times]

    def _make(self, t: float) -> CloudRequest:
        cfg = self.config
        mu = np.log(cfg.mean_core_seconds) - 0.5 * cfg.sigma_log**2
        core_seconds = float(self.rng.lognormal(mu, cfg.sigma_log))
        cores = int(self.rng.integers(1, cfg.max_cores + 1))
        return CloudRequest(
            cycles=core_seconds * cfg.ref_freq_ghz * _GHZ,
            time=t,
            cores=cores,
            input_bytes=cfg.input_mb * 1e6,
            output_bytes=cfg.output_mb * 1e6,
            user=f"user-{int(self.rng.integers(0, 100))}",
        )


@dataclass(frozen=True)
class RenderCampaignStats:
    """Published scale of the 2016 Qarnot render platform."""

    users: int
    frames: int
    total_core_hours: float

    @property
    def mean_core_hours_per_frame(self) -> float:
        """Average service demand of one frame."""
        return self.total_core_hours / self.frames


QARNOT_2016_CAMPAIGN = RenderCampaignStats(users=1100, frames=600_000, total_core_hours=11_000_000.0)


class RenderCampaign:
    """Scaled replay of the 2016 campaign.

    Parameters
    ----------
    rng: random stream.
    scale: fraction of the real campaign to generate (e.g. 1e-4 → 60 frames).
    duration_s: window over which the frames arrive (uniformly, as studios
        submit shots in bursts that average out over a year).
    sigma_log: lognormal dispersion of per-frame demand around the published
        mean.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        stats: RenderCampaignStats = QARNOT_2016_CAMPAIGN,
        scale: float = 1e-4,
        duration_s: float = 30 * 86400.0,
        sigma_log: float = 0.8,
        ref_freq_ghz: float = 3.5,
    ):
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if duration_s <= 0:
            raise ValueError("duration must be > 0")
        self.rng = rng
        self.stats = stats
        self.scale = scale
        self.duration_s = duration_s
        self.sigma_log = sigma_log
        self.ref_freq_ghz = ref_freq_ghz

    @property
    def n_frames(self) -> int:
        """Number of frames in the scaled replay (at least 1)."""
        return max(1, int(round(self.stats.frames * self.scale)))

    def generate(self, t0: float = 0.0) -> List[CloudRequest]:
        """Frame-render requests over [t0, t0 + duration), time-sorted."""
        n = self.n_frames
        times = np.sort(self.rng.uniform(t0, t0 + self.duration_s, size=n))
        mean_cs = self.stats.mean_core_hours_per_frame * 3600.0
        mu = np.log(mean_cs) - 0.5 * self.sigma_log**2
        demands = self.rng.lognormal(mu, self.sigma_log, size=n)
        users = self.rng.integers(0, self.stats.users, size=n)
        out = []
        for t, cs, u in zip(times, demands, users):
            out.append(
                CloudRequest(
                    cycles=float(cs) * self.ref_freq_ghz * _GHZ,
                    time=float(t),
                    cores=4,  # frames render on one whole Q.rad CPU
                    input_bytes=50e6,
                    output_bytes=20e6,
                    user=f"studio-{int(u)}",
                )
            )
        return out
