"""Heating-request generation: how hosts drive the first flow.

Hosts set comfort targets; the middleware must produce that heat with useful
computation.  Two behavioural models matter to the paper:

* **INCENTIVIZED** (§III-C): "in the Qarnot computing model, the hosts of DF
  servers do not pay electricity.  Consequently, during the winter, these
  hosts generally keep the same target temperature" — steady setpoints, so
  compute capacity is steady too;
* **COST_CONSCIOUS**: hosts who pay for their heat trim setpoints at night,
  during absences and in mild weather — the fleet's compute capacity then
  flickers with their thrift (the availability problem of §III-C).

The generator emits :class:`~repro.core.requests.HeatingRequest` events:
scheduled day/night transitions plus random manual adjustments, individual or
collective (whole-apartment) in scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence

import numpy as np

from repro.core.requests import HeatingRequest
from repro.sim.calendar import DAY, HOUR, SimCalendar

__all__ = ["HeatingBehavior", "HeatingRequestGenerator"]


class HeatingBehavior(Enum):
    """Host behaviour model (experiment E11)."""

    INCENTIVIZED = "incentivized"      # free heat → steady targets
    COST_CONSCIOUS = "cost_conscious"  # paid heat → aggressive setbacks


@dataclass(frozen=True)
class _BehaviorParams:
    day_setpoint_c: float
    night_setpoint_c: float
    tweak_rate_per_day: float   # random manual adjustments
    tweak_std_c: float


_PARAMS = {
    HeatingBehavior.INCENTIVIZED: _BehaviorParams(21.0, 19.5, 0.3, 0.5),
    HeatingBehavior.COST_CONSCIOUS: _BehaviorParams(19.5, 16.0, 1.0, 1.0),
}


class HeatingRequestGenerator:
    """Emits the heating-request flow for a set of rooms.

    Parameters
    ----------
    rng: random stream.
    rooms: room names covered by this generator (one household).
    behavior: host behaviour model.
    collective_fraction: probability a manual tweak targets the whole
        household mean rather than one room (paper §II-C's two request sorts).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rooms: Sequence[str],
        behavior: HeatingBehavior = HeatingBehavior.INCENTIVIZED,
        collective_fraction: float = 0.3,
    ):
        if not rooms:
            raise ValueError("need at least one room")
        if not 0.0 <= collective_fraction <= 1.0:
            raise ValueError("collective_fraction must be in [0, 1]")
        self.rng = rng
        self.rooms = tuple(rooms)
        self.behavior = behavior
        self.params = _PARAMS[behavior]
        self.collective_fraction = collective_fraction if len(rooms) >= 2 else 0.0
        self._cal = SimCalendar()

    def generate(self, t0: float, t1: float) -> List[HeatingRequest]:
        """All heating requests in [t0, t1), time-sorted."""
        if t1 < t0:
            raise ValueError("need t1 >= t0")
        p = self.params
        out: List[HeatingRequest] = []
        # scheduled day/night transitions, per day, all rooms (collective)
        day0 = int(t0 // DAY)
        day1 = int(np.ceil(t1 / DAY))
        for d in range(day0, day1):
            for hour, target in ((6.5, p.day_setpoint_c), (22.5, p.night_setpoint_c)):
                t = d * DAY + hour * HOUR
                if t0 <= t < t1:
                    out.append(
                        HeatingRequest(
                            target_temp_c=target,
                            time=t,
                            rooms=self.rooms,
                            collective=len(self.rooms) >= 2,
                        )
                    )
        # random manual tweaks
        rate = p.tweak_rate_per_day / DAY
        if rate > 0:
            t = t0 + float(self.rng.exponential(1.0 / rate))
            while t < t1:
                base = (
                    p.day_setpoint_c
                    if 6.5 <= self._cal.hour_of_day(t) < 22.5
                    else p.night_setpoint_c
                )
                target = float(np.clip(base + self.rng.normal(0.0, p.tweak_std_c), 12.0, 26.0))
                collective = self.rng.random() < self.collective_fraction
                rooms = (
                    self.rooms
                    if collective
                    else (self.rooms[int(self.rng.integers(0, len(self.rooms)))],)
                )
                out.append(
                    HeatingRequest(
                        target_temp_c=target, time=t, rooms=rooms, collective=collective
                    )
                )
                t += float(self.rng.exponential(1.0 / rate))
        out.sort(key=lambda r: r.time)
        return out

    def mean_winter_setpoint(self) -> float:
        """Duty-weighted mean setpoint (16 h day + 8 h night)."""
        p = self.params
        return (16.0 * p.day_setpoint_c + 8.0 * p.night_setpoint_c) / 24.0
