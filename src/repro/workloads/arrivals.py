"""Non-homogeneous Poisson arrivals and diurnal rate profiles.

Both the DCC flow ("business opportunities") and the edge flow (human activity
in buildings) have time-varying arrival rates.  We sample them with the
standard thinning algorithm (Lewis & Shedler): draw candidate arrivals from a
homogeneous process at ``rate_max`` and accept each with probability
``rate(t)/rate_max``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.sim.calendar import HOUR, SimCalendar

__all__ = ["sample_nhpp", "DiurnalProfile"]


def sample_nhpp(
    rng: np.random.Generator,
    rate_fn: Callable[[float], float],
    rate_max: float,
    t0: float,
    t1: float,
) -> List[float]:
    """Sample arrival times of a non-homogeneous Poisson process.

    Parameters
    ----------
    rng: random stream.
    rate_fn: instantaneous rate λ(t) in events/second; must satisfy
        ``0 <= rate_fn(t) <= rate_max`` on [t0, t1].
    rate_max: majorising constant for thinning.
    t0, t1: window.

    Returns
    -------
    Sorted arrival times in [t0, t1).
    """
    if rate_max <= 0:
        raise ValueError(f"rate_max must be > 0, got {rate_max}")
    if t1 < t0:
        raise ValueError(f"need t1 >= t0, got [{t0}, {t1}]")
    out: List[float] = []
    t = t0
    while True:
        t += float(rng.exponential(1.0 / rate_max))
        if t >= t1:
            break
        lam = rate_fn(t)
        if lam < -1e-12 or lam > rate_max * (1 + 1e-9):
            raise ValueError(
                f"rate_fn({t}) = {lam} outside [0, rate_max={rate_max}]"
            )
        if rng.random() < lam / rate_max:
            out.append(t)
    return out


@dataclass(frozen=True)
class DiurnalProfile:
    """A λ(t) built from a base rate and multiplicative shape factors.

    ``hour_weights`` has 24 entries (local-hour multipliers, mean-normalised
    internally); ``weekend_factor`` scales Saturday/Sunday; an optional
    seasonal amplitude modulates over the year (peak mid-January — useful for
    building-activity signals that follow presence-at-home).
    """

    base_rate_hz: float
    hour_weights: Sequence[float] = field(default=tuple([1.0] * 24))
    weekend_factor: float = 1.0
    seasonal_amplitude: float = 0.0
    _cal: SimCalendar = field(default_factory=SimCalendar, repr=False)

    def __post_init__(self) -> None:
        if self.base_rate_hz < 0:
            raise ValueError("base rate must be >= 0")
        if len(self.hour_weights) != 24:
            raise ValueError(f"hour_weights needs 24 entries, got {len(self.hour_weights)}")
        if any(w < 0 for w in self.hour_weights):
            raise ValueError("hour weights must be >= 0")
        if not 0 <= self.seasonal_amplitude < 1:
            raise ValueError("seasonal amplitude must be in [0, 1)")

    def rate(self, t: float) -> float:
        """Instantaneous rate (events/s) at simulated time ``t``."""
        mean_w = sum(self.hour_weights) / 24.0
        if mean_w == 0:
            return 0.0
        w = self.hour_weights[int(self._cal.hour_of_day(t)) % 24] / mean_w
        if self._cal.is_weekend(t):
            w *= self.weekend_factor
        if self.seasonal_amplitude > 0:
            doy = self._cal.day_of_year(t)
            w *= 1.0 + self.seasonal_amplitude * np.cos(2 * np.pi * (doy - 15) / 365.0)
        return self.base_rate_hz * w

    def rate_max(self) -> float:
        """A tight majorising constant for thinning."""
        mean_w = sum(self.hour_weights) / 24.0
        if mean_w == 0:
            return 1e-12
        peak = max(self.hour_weights) / mean_w
        peak *= max(1.0, self.weekend_factor)
        peak *= 1.0 + self.seasonal_amplitude
        return self.base_rate_hz * peak * (1 + 1e-9)

    def sample(self, rng: np.random.Generator, t0: float, t1: float) -> List[float]:
        """Arrival times over [t0, t1)."""
        return sample_nhpp(rng, self.rate, self.rate_max(), t0, t1)

    # -------------------------------------------------------------- #
    @staticmethod
    def office_hours(base_rate_hz: float) -> "DiurnalProfile":
        """Business-hours shape for the DCC flow."""
        w = [0.1] * 24
        for h in range(9, 18):
            w[h] = 1.0
        for h in (8, 18):
            w[h] = 0.5
        return DiurnalProfile(base_rate_hz, tuple(w), weekend_factor=0.2)

    @staticmethod
    def home_evenings(base_rate_hz: float) -> "DiurnalProfile":
        """Residential-presence shape for the edge flow."""
        w = [0.3] * 24
        for h in (7, 8):
            w[h] = 1.0
        for h in range(18, 23):
            w[h] = 1.5
        for h in range(0, 6):
            w[h] = 0.1
        return DiurnalProfile(base_rate_hz, tuple(w), weekend_factor=1.4,
                              seasonal_amplitude=0.2)
