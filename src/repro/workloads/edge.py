"""Edge request generators (the third flow — the paper's addition).

Edge traffic is the sense-compute-actuate loop of building IoT (§III-B): small
inputs (sensor frames), small compute, tight deadlines, strong locality.  The
generator produces Poisson arrivals on a residential-presence diurnal profile;
each request carries a deadline drawn from the configured class mix and a
direct/indirect submission mode.

The paper's example application classes (low-bandwidth neighbourhood services,
§II-A): map serving, traffic estimation, local navigation, audio-event
detection — all share this shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.requests import EdgeMode, EdgeRequest
from repro.workloads.arrivals import DiurnalProfile

__all__ = ["EdgeWorkloadConfig", "EdgeWorkloadGenerator"]

# one planned request: (arrival time, cycles, deadline_s, EdgeMode value).
# Pure data — no request ids are consumed until materialization.
EdgePlan = Tuple[Tuple[float, float, float, str], ...]

_GHZ = 1e9


@dataclass(frozen=True)
class EdgeWorkloadConfig:
    """Parameters of the edge request flow per building.

    ``deadline_classes`` is a sequence of ``(deadline_s, weight)`` pairs —
    e.g. audio alarms at 0.5 s, navigation at 2 s, map tiles at 5 s.
    """

    rate_per_hour: float = 120.0
    mean_megacycles: float = 200.0
    sigma_log: float = 0.6
    deadline_classes: Sequence = ((0.5, 0.3), (2.0, 0.5), (5.0, 0.2))
    direct_fraction: float = 0.0  # paper's Fig. 5 discussion ignores direct
    # devices send extracted features, not raw dumps: a few KB per request
    input_kb: float = 2.0
    output_kb: float = 0.5
    privacy_sensitive: bool = True

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0 or self.mean_megacycles <= 0:
            raise ValueError("rates and demands must be positive")
        if not self.deadline_classes:
            raise ValueError("need at least one deadline class")
        if any(d <= 0 or w < 0 for d, w in self.deadline_classes):
            raise ValueError("deadlines must be > 0 and weights >= 0")
        if not 0.0 <= self.direct_fraction <= 1.0:
            raise ValueError("direct_fraction must be in [0, 1]")


class EdgeWorkloadGenerator:
    """Generates :class:`EdgeRequest` streams for one building."""

    def __init__(
        self,
        rng: np.random.Generator,
        source: str,
        config: EdgeWorkloadConfig = EdgeWorkloadConfig(),
    ):
        self.rng = rng
        self.source = source
        self.config = config
        self.profile = DiurnalProfile.home_evenings(config.rate_per_hour / 3600.0)
        weights = np.array([w for _, w in config.deadline_classes], dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("deadline class weights sum to zero")
        self._deadline_p = weights / total
        self._deadlines = np.array([d for d, _ in config.deadline_classes])

    def generate(self, t0: float, t1: float) -> List[EdgeRequest]:
        """All edge requests arriving in [t0, t1), time-sorted."""
        times = self.profile.sample(self.rng, t0, t1)
        return [self._make(t) for t in times]

    def generate_burst(self, t0: float, n: int, spacing_s: float = 0.05) -> List[EdgeRequest]:
        """A deterministic-rate burst (peak-management experiments E4/E5)."""
        if n < 0 or spacing_s < 0:
            raise ValueError("burst needs n >= 0 and spacing >= 0")
        return [self._make(t0 + i * spacing_s) for i in range(n)]

    # ------------------------------------------------------------------ #
    # plan / materialize split (task-DAG shared prefixes)
    # ------------------------------------------------------------------ #
    def plan(self, t0: float, t1: float) -> EdgePlan:
        """The pure-data draw plan of ``generate`` — same rng consumption,
        no :class:`EdgeRequest` construction.

        ``materialize(plan(t0, t1))`` equals ``generate(t0, t1)`` request for
        request.  The split lets a sweep's shared workload become an upstream
        DAG node: planning consumes the rng stream but is *globally inert*
        (no request-id allocation), so the plan can be computed once in any
        process and fanned out to every sweep point, which materializes the
        requests locally in its own id order.
        """
        times = self.profile.sample(self.rng, t0, t1)
        return tuple(self._draw(t) for t in times)

    def plan_burst(self, t0: float, n: int, spacing_s: float = 0.05) -> EdgePlan:
        """The pure-data draw plan of ``generate_burst``."""
        if n < 0 or spacing_s < 0:
            raise ValueError("burst needs n >= 0 and spacing >= 0")
        return tuple(self._draw(t0 + i * spacing_s) for i in range(n))

    def materialize(self, plan: EdgePlan) -> List[EdgeRequest]:
        """Construct the planned requests (consumes request ids, no rng)."""
        return [self._build(*entry) for entry in plan]

    def _draw(self, t: float) -> Tuple[float, float, float, str]:
        cfg = self.config
        mu = np.log(cfg.mean_megacycles * 1e6) - 0.5 * cfg.sigma_log**2
        cycles = float(self.rng.lognormal(mu, cfg.sigma_log))
        deadline = float(self.rng.choice(self._deadlines, p=self._deadline_p))
        mode = EdgeMode.DIRECT if self.rng.random() < cfg.direct_fraction else EdgeMode.INDIRECT
        return (float(t), cycles, deadline, mode.value)

    def _build(self, t: float, cycles: float, deadline: float,
               mode: str) -> EdgeRequest:
        cfg = self.config
        return EdgeRequest(
            cycles=cycles,
            time=t,
            cores=1,
            input_bytes=cfg.input_kb * 1e3,
            output_bytes=cfg.output_kb * 1e3,
            deadline_s=deadline,
            mode=EdgeMode(mode),
            source=self.source,
            privacy_sensitive=cfg.privacy_sensitive,
        )

    def _make(self, t: float) -> EdgeRequest:
        return self._build(*self._draw(t))
