"""Crypto-mining as a heating workload (§II-B1, §IV).

"Digital heaters are receiving a growing interest in the community of coin
miners.  Comino and the Qarnot crypto-heater are special servers, built to
serve both as a space heater and a crypto currency miner."  And §IV: "data
furnace could disrupt blockchain ... DF servers constitute a significant
computing power."

:class:`MiningController` keeps a heater's GPUs saturated with mining chunks
whenever its room wants heat — the perfect filler workload: infinitely
divisible, preemptible, always profitable — and books hashes and revenue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.hardware.server import ComputeServer, Task

__all__ = ["MiningEconomics", "MiningController"]


@dataclass(frozen=True)
class MiningEconomics:
    """Hashrate and market model.

    ``hashes_per_cycle`` folds GPU architecture into a single constant
    (a crypto-heater "core" here is one GPU; its cycles are shader cycles).
    """

    hashes_per_cycle: float = 0.05
    coin_reward_per_hash: float = 1.5e-16   # coins per hash (difficulty)
    coin_price_eur: float = 1800.0
    electricity_eur_per_kwh: float = 0.17

    def __post_init__(self) -> None:
        if min(self.hashes_per_cycle, self.coin_reward_per_hash,
               self.coin_price_eur, self.electricity_eur_per_kwh) <= 0:
            raise ValueError("economics parameters must be > 0")

    def revenue_eur(self, cycles: float) -> float:
        """Mining revenue of executing ``cycles`` (€)."""
        return cycles * self.hashes_per_cycle * self.coin_reward_per_hash * self.coin_price_eur


class MiningController:
    """Keeps one heater mining whenever heat is wanted.

    Call :meth:`tick` on the thermal tick with the regulator's
    ``heat_wanted`` flag; the controller tops the device up with mining
    chunks, or drains it when heat is no longer wanted.
    """

    _ids = itertools.count()

    def __init__(self, server: ComputeServer, economics: MiningEconomics = MiningEconomics(),
                 chunk_s: float = 600.0):
        if chunk_s <= 0:
            raise ValueError("chunk duration must be > 0")
        self.server = server
        self.economics = economics
        self.chunk_s = float(chunk_s)
        self.cycles_mined = 0.0
        self.chunks_completed = 0

    # ------------------------------------------------------------------ #
    def tick(self, heat_wanted: bool) -> None:
        """Top up or drain mining work according to heat demand."""
        if heat_wanted:
            if not self.server.enabled:
                self.server.power_on()
            rate = self.server.core_rate_cycles_per_s()
            if rate <= 0:
                rate = self.server.spec.ladder.top.freq_ghz * 1e9
            while self.server.free_cores > 0:
                chunk = Task(
                    task_id=f"mine-{next(self._ids)}",
                    work_cycles=rate * self.chunk_s,
                    cores=1,
                    on_complete=self._chunk_done,
                    metadata={"kind": "filler", "mining": True},
                )
                if not self.server.submit(chunk):
                    break
        else:
            for task in list(self.server.running_tasks):
                if task.metadata.get("mining"):
                    t = self.server.preempt(task.task_id)
                    # partial chunks still mined their executed share
                    self.cycles_mined += t.work_cycles - t.remaining_cycles
            if self.server.enabled and not self.server.running_tasks:
                self.server.power_off()

    def _chunk_done(self, task: Task, now: float) -> None:
        self.cycles_mined += task.work_cycles
        self.chunks_completed += 1

    # ------------------------------------------------------------------ #
    @property
    def hashes(self) -> float:
        """Total hashes computed so far."""
        return self.cycles_mined * self.economics.hashes_per_cycle

    def revenue_eur(self) -> float:
        """Coins mined so far, valued at the configured price (€)."""
        return self.economics.revenue_eur(self.cycles_mined)

    def electricity_cost_eur(self) -> float:
        """Electricity consumed by the heater so far, at market price (€).

        The host pays nothing (the Qarnot incentive); this is the operator's
        input cost, to compare against :meth:`revenue_eur`.
        """
        self.server.sync()
        return self.server.energy_j / 3.6e6 * self.economics.electricity_eur_per_kwh
