"""Workload generators for the three DF3 flows.

Synthetic stand-ins for the paper's production traffic (see DESIGN.md
substitution table): seasonal heating demand, business-hours DCC batches
(including a scaled replay of the 2016 Qarnot render campaign), Poisson edge
requests with deadlines, and the audio-alarm-detection stream of the paper's
ref [11].
"""

from repro.workloads.alarms import AlarmStreamConfig, AlarmStreamGenerator
from repro.workloads.arrivals import DiurnalProfile, sample_nhpp
from repro.workloads.cloud import (
    QARNOT_2016_CAMPAIGN,
    CloudJobConfig,
    CloudJobGenerator,
    RenderCampaign,
)
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator
from repro.workloads.heating import HeatingBehavior, HeatingRequestGenerator
from repro.workloads.mining import MiningController, MiningEconomics
from repro.workloads.traces import (
    Trace,
    TraceEvent,
    requests_from_trace,
    requests_to_trace,
)

__all__ = [
    "AlarmStreamConfig",
    "AlarmStreamGenerator",
    "CloudJobConfig",
    "CloudJobGenerator",
    "DiurnalProfile",
    "EdgeWorkloadConfig",
    "EdgeWorkloadGenerator",
    "HeatingBehavior",
    "HeatingRequestGenerator",
    "MiningController",
    "MiningEconomics",
    "QARNOT_2016_CAMPAIGN",
    "RenderCampaign",
    "requests_from_trace",
    "requests_to_trace",
    "sample_nhpp",
    "Trace",
    "TraceEvent",
]
