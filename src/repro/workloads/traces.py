"""Trace recording and replay.

Experiments that compare policies (E4, E5, E9) must feed *identical* request
streams to every policy; a :class:`Trace` freezes a generated stream to a
JSON-lines file and replays it later, so comparisons are input-identical even
across processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List

from repro.core.requests import CloudRequest, EdgeMode, EdgeRequest, HeatingRequest

__all__ = ["TraceEvent", "Trace", "requests_to_trace", "requests_from_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event with a kind tag and a JSON-able payload."""

    time: float
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """An ordered sequence of :class:`TraceEvent`.

    Events may be appended out of order; iteration and persistence are always
    time-sorted (stable for equal times).
    """

    def __init__(self, events: List[TraceEvent] | None = None):
        self._events: List[TraceEvent] = list(events) if events else []

    def append(self, time: float, kind: str, **payload: Any) -> None:
        """Record one event."""
        if not kind:
            raise ValueError("kind must be non-empty")
        self._events.append(TraceEvent(time=float(time), kind=kind, payload=payload))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(sorted(self._events, key=lambda e: e.time))

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        """Time-sorted events matching ``kind``."""
        return [e for e in self if e.kind == kind]

    def window(self, t0: float, t1: float) -> "Trace":
        """Sub-trace with ``t0 <= time < t1``."""
        return Trace([e for e in self if t0 <= e.time < t1])

    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as f:
            for e in self:
                f.write(json.dumps({"time": e.time, "kind": e.kind, "payload": e.payload}))
                f.write("\n")

    @staticmethod
    def load(path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        events: List[TraceEvent] = []
        with path.open("r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    d = json.loads(line)
                    events.append(
                        TraceEvent(time=float(d["time"]), kind=str(d["kind"]),
                                   payload=dict(d.get("payload", {})))
                    )
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                    raise ValueError(f"{path}:{lineno}: malformed trace line") from exc
        return Trace(events)


# --------------------------------------------------------------------------- #
# request (de)serialisation: freeze generated workloads for replay
# --------------------------------------------------------------------------- #
def requests_to_trace(requests) -> Trace:
    """Serialise heating/cloud/edge requests into a :class:`Trace`.

    Only the *input* fields are recorded (outcome fields are run artefacts),
    so a replayed request is indistinguishable from a freshly generated one.
    """
    trace = Trace()
    for req in requests:
        if isinstance(req, HeatingRequest):
            trace.append(req.time, "heating", target_temp_c=req.target_temp_c,
                         rooms=list(req.rooms), collective=req.collective)
        elif isinstance(req, EdgeRequest):
            trace.append(req.time, "edge", cycles=req.cycles, cores=req.cores,
                         input_bytes=req.input_bytes, output_bytes=req.output_bytes,
                         deadline_s=req.deadline_s, mode=req.mode.value,
                         source=req.source, privacy=req.privacy_sensitive)
        elif isinstance(req, CloudRequest):
            trace.append(req.time, "cloud", cycles=req.cycles, cores=req.cores,
                         input_bytes=req.input_bytes, output_bytes=req.output_bytes,
                         user=req.user, preemptible=req.preemptible)
        else:
            raise TypeError(f"cannot serialise {type(req).__name__}")
    return trace


def requests_from_trace(trace: Trace) -> List:
    """Rebuild request objects from a trace written by :func:`requests_to_trace`."""
    out: List = []
    for e in trace:
        p = e.payload
        try:
            if e.kind == "heating":
                out.append(HeatingRequest(target_temp_c=p["target_temp_c"],
                                          time=e.time, rooms=tuple(p["rooms"]),
                                          collective=p["collective"]))
            elif e.kind == "edge":
                out.append(EdgeRequest(cycles=p["cycles"], time=e.time,
                                       cores=p["cores"], input_bytes=p["input_bytes"],
                                       output_bytes=p["output_bytes"],
                                       deadline_s=p["deadline_s"],
                                       mode=EdgeMode(p["mode"]), source=p["source"],
                                       privacy_sensitive=p["privacy"]))
            elif e.kind == "cloud":
                out.append(CloudRequest(cycles=p["cycles"], time=e.time,
                                        cores=p["cores"], input_bytes=p["input_bytes"],
                                        output_bytes=p["output_bytes"], user=p["user"],
                                        preemptible=p["preemptible"]))
            else:
                raise ValueError(f"unknown request kind {e.kind!r}")
        except KeyError as exc:
            raise ValueError(f"trace event at t={e.time} missing field {exc}") from exc
    return out
