"""Generic time-series collection."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["TimeSeries", "percentile"]


def percentile(values, q: float) -> float:
    """Percentile of a sequence; raises on empty input.

    A thin wrapper that fails loudly instead of returning NaN — empty metric
    sets are experiment bugs, not data.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


class TimeSeries:
    """An append-only (time, value) series with reduction helpers."""

    def __init__(self, name: str):
        self.name = name
        self._t: List[float] = []
        self._v: List[float] = []

    def add(self, t: float, value: float) -> None:
        """Append a sample; time must be non-decreasing."""
        if self._t and t < self._t[-1]:
            raise ValueError(f"{self.name}: time went backwards ({t} < {self._t[-1]})")
        self._t.append(float(t))
        self._v.append(float(value))

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        """Sample times."""
        return np.asarray(self._t)

    @property
    def values(self) -> np.ndarray:
        """Sample values."""
        return np.asarray(self._v)

    def mean(self) -> float:
        """Unweighted mean of the samples."""
        if not self._v:
            raise ValueError(f"{self.name}: empty series")
        return float(np.mean(self._v))

    def time_weighted_mean(self) -> float:
        """Mean weighting each sample by the interval it covers."""
        if len(self._t) < 2:
            return self.mean()
        t, v = self.times, self.values
        dt = np.diff(t)
        return float(np.sum(v[:-1] * dt) / np.sum(dt))

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Sub-series with ``t0 <= t < t1``."""
        out = TimeSeries(self.name)
        for t, v in zip(self._t, self._v):
            if t0 <= t < t1:
                out.add(t, v)
        return out

    def bucket_means(self, edges) -> Dict[Tuple[float, float], float]:
        """Mean per [edge_i, edge_i+1) bucket (empty buckets omitted)."""
        edges = list(edges)
        out: Dict[Tuple[float, float], float] = {}
        t, v = self.times, self.values
        for a, b in zip(edges, edges[1:]):
            mask = (t >= a) & (t < b)
            if np.any(mask):
                out[(a, b)] = float(np.mean(v[mask]))
        return out
