"""Export experiment results and metrics snapshots to JSON/CSV."""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping

import numpy as np

__all__ = ["to_json", "to_csv", "flatten", "metrics_to_json"]


def _jsonable(value: Any) -> Any:
    # numpy first: scalars unwrap to their Python equivalents (np.float64 is
    # already a float subclass, but np.float32/np.int64/np.bool_ are not and
    # would otherwise fall through to str(), corrupting the export)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return _jsonable(value.item())
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return str(value)
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_json(result, path: str | Path) -> Path:
    """Write an :class:`~repro.experiments.common.ExperimentResult` as JSON."""
    path = Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "text": result.text,
        "data": _jsonable(result.data),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path


def metrics_to_json(registry_or_snapshot, path: str | Path) -> Path:
    """Write a :class:`repro.obs.MetricsRegistry` (or a snapshot dict) as JSON."""
    snap = (registry_or_snapshot.snapshot()
            if hasattr(registry_or_snapshot, "snapshot")
            else registry_or_snapshot)
    path = Path(path)
    path.write_text(json.dumps(_jsonable(snap), indent=2, sort_keys=True),
                    encoding="utf-8")
    return path


def flatten(data: Mapping, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested result dicts into dotted keys for tabular export."""
    out: Dict[str, Any] = {}
    for key, value in data.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            out.update(flatten(value, name))
        else:
            out[name] = _jsonable(value)
    return out


def to_csv(results: Iterable, path: str | Path) -> Path:
    """Write one CSV row per experiment result (union of flattened keys)."""
    results = list(results)
    if not results:
        raise ValueError("no results to export")
    rows: List[Dict[str, Any]] = []
    for r in results:
        row = {"experiment_id": r.experiment_id, "title": r.title}
        row.update(flatten(r.data))
        rows.append(row)
    fields = ["experiment_id", "title"]
    for row in rows:
        for k in row:
            if k not in fields:
                fields.append(k)
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as f:
        writer = csv.DictWriter(f, fieldnames=fields)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
