"""Plain-text tables and series — the output format of every benchmark.

Each benchmark prints the rows/series the paper's corresponding figure or
claim would show; these helpers keep that output consistent and diffable
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["Table", "format_series"]


class Table:
    """A fixed-column text table."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        if not columns:
            raise ValueError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        """Append a row; cell count must match the header."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_series(name: str, xs: Iterable, ys: Iterable, x_label: str = "x",
                  y_label: str = "y") -> str:
    """Render an (x, y) series as a two-column block (a text 'figure')."""
    t = Table([x_label, y_label], title=name)
    for x, y in zip(xs, ys):
        t.add_row(x, y)
    return t.render()
