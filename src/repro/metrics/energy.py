"""Energy and PUE accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["joules_to_kwh", "EnergyReport"]


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / 3.6e6


@dataclass(frozen=True)
class EnergyReport:
    """Energy split of a compute substrate over a run.

    ``pue`` is total/IT energy; ``useful_heat_fraction`` is the share of
    consumed energy delivered as *requested* heat — the data-furnace dividend
    that a classical datacenter simply throws away.
    """

    it_energy_kwh: float
    total_energy_kwh: float
    useful_heat_kwh: float
    cycles_executed: float

    def __post_init__(self) -> None:
        if self.total_energy_kwh + 1e-12 < self.it_energy_kwh:
            raise ValueError("total energy cannot be below IT energy")
        if min(self.it_energy_kwh, self.useful_heat_kwh, self.cycles_executed) < 0:
            raise ValueError("energies and cycles must be >= 0")

    @property
    def pue(self) -> float:
        """Power usage effectiveness (energy-weighted)."""
        if self.it_energy_kwh == 0:
            return float("inf")
        return self.total_energy_kwh / self.it_energy_kwh

    @property
    def useful_heat_fraction(self) -> float:
        """Requested heat delivered per unit of total energy."""
        if self.total_energy_kwh == 0:
            return 0.0
        return min(self.useful_heat_kwh / self.total_energy_kwh, 1.0)

    def kwh_per_gigacycle(self) -> float:
        """Total energy per 10⁹ cycles of work — the cost-of-compute metric."""
        if self.cycles_executed <= 0:
            return float("inf")
        return self.total_energy_kwh / (self.cycles_executed / 1e9)

    @staticmethod
    def from_df_fleet(servers: Sequence, useful_heat_j: float) -> "EnergyReport":
        """Build a report from DF servers (no cooling: total = IT)."""
        for s in servers:
            s.sync()
        it = sum(s.energy_j for s in servers)
        cycles = sum(s.cycles_executed for s in servers)
        return EnergyReport(
            it_energy_kwh=joules_to_kwh(it),
            total_energy_kwh=joules_to_kwh(it),
            useful_heat_kwh=joules_to_kwh(min(useful_heat_j, it)),
            cycles_executed=cycles,
        )

    @staticmethod
    def from_datacenter(dc) -> "EnergyReport":
        """Build a report from a :class:`~repro.hardware.datacenter.Datacenter`."""
        for n in dc.nodes:
            n.sync()
        it = sum(n.it_energy_j for n in dc.nodes)
        total = sum(n.energy_j for n in dc.nodes)
        cycles = sum(n.cycles_executed for n in dc.nodes)
        return EnergyReport(
            it_energy_kwh=joules_to_kwh(it),
            total_energy_kwh=joules_to_kwh(total),
            useful_heat_kwh=0.0,  # DC heat is rejected, never requested
            cycles_executed=cycles,
        )
