"""Metric collection and reporting for DF3 experiments."""

from repro.metrics.collectors import TimeSeries, percentile
from repro.metrics.energy import EnergyReport, joules_to_kwh
from repro.metrics.export import flatten, metrics_to_json, to_csv, to_json
from repro.metrics.latency import LatencyStats
from repro.metrics.report import Table, format_series

__all__ = [
    "EnergyReport",
    "flatten",
    "format_series",
    "joules_to_kwh",
    "LatencyStats",
    "metrics_to_json",
    "percentile",
    "Table",
    "TimeSeries",
    "to_csv",
    "to_json",
]
