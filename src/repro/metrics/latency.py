"""Response-time statistics over request lists."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.requests import EdgeRequest, RequestStatus

__all__ = ["LatencyStats"]


@dataclass(frozen=True)
class LatencyStats:
    """Reduced response-time distribution of a set of requests."""

    count: int
    mean_s: float
    median_s: float
    p95_s: float
    p99_s: float
    max_s: float
    deadline_miss_rate: float  # NaN when no deadlines apply

    @staticmethod
    def from_requests(requests: Sequence, expired: Iterable = ()) -> "LatencyStats":
        """Reduce completed requests (+ optionally expired ones) to stats.

        ``expired`` are deadline-carrying requests that never ran; they count
        as misses but contribute no response time.
        """
        completed = [r for r in requests if r.status is RequestStatus.COMPLETED]
        expired = list(expired)
        if not completed and not expired:
            raise ValueError("no finished requests to summarise")
        rts = np.array([r.response_time() for r in completed]) if completed else np.array([0.0])
        deadline_reqs = [r for r in completed if isinstance(r, EdgeRequest)]
        n_deadline = len(deadline_reqs) + len(expired)
        if n_deadline:
            misses = sum(1 for r in deadline_reqs if not r.deadline_met()) + len(expired)
            miss_rate = misses / n_deadline
        else:
            miss_rate = float("nan")
        if completed:
            return LatencyStats(
                count=len(completed),
                mean_s=float(np.mean(rts)),
                median_s=float(np.percentile(rts, 50)),
                p95_s=float(np.percentile(rts, 95)),
                p99_s=float(np.percentile(rts, 99)),
                max_s=float(np.max(rts)),
                deadline_miss_rate=miss_rate,
            )
        return LatencyStats(0, float("nan"), float("nan"), float("nan"),
                            float("nan"), float("nan"), miss_rate)

    def __str__(self) -> str:
        miss = (
            f", miss={self.deadline_miss_rate:.1%}"
            if not np.isnan(self.deadline_miss_rate)
            else ""
        )
        return (
            f"LatencyStats(n={self.count}, mean={self.mean_s*1e3:.1f}ms, "
            f"median={self.median_s*1e3:.1f}ms, p95={self.p95_s*1e3:.1f}ms{miss})"
        )
