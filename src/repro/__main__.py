"""``python -m repro`` — experiment runner entry point."""

from repro.cli import main

raise SystemExit(main())
