"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.sim.calendar import DAY, SimCalendar

__all__ = ["ExperimentResult", "mid_month_start", "small_city"]

# Deliberately no module-level singletons here: experiment cells execute in
# pool worker processes (repro.runner), and any instance constructed at
# import time would be re-created per worker with whatever state it had —
# an invisible fork hazard.  SimCalendar is a stateless frozen dataclass,
# so constructing one per call is free and keeps this module fork-safe;
# tests/test_runner_worker.py enforces the no-mutable-module-state rule.


@dataclass
class ExperimentResult:
    """Rendered output + raw data of one experiment.

    ``text`` is the table/series exactly as printed by the benchmark (and as
    recorded in EXPERIMENTS.md); ``data`` carries the numbers the benchmark
    asserts shape expectations on.
    """

    experiment_id: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.experiment_id}] {self.title}\n{self.text}"


def mid_month_start(month: int, year_offset: int = 0) -> float:
    """Simulated time of the 10th of a month — a representative window."""
    return SimCalendar().month_start(month) + 9 * DAY + year_offset * 365 * DAY


def small_city(obs=None, **overrides) -> DF3Middleware:
    """The canonical experiment city: small enough for benchmarks, complete.

    2 districts × 2 buildings × 3 rooms = 12 Q.rads (192 cores), one 8-node
    datacenter.  Override any :class:`MiddlewareConfig` field via kwargs.

    ``obs`` optionally instruments the city with a specific
    :class:`repro.obs.Observability` bundle; by default the middleware picks
    up the process-wide current one, so any experiment run under
    ``repro.obs.obs_session(...)`` (which is what ``python -m repro run
    --trace/--profile/--metrics-out`` does) is fully instrumented without
    changes to its code.
    """
    defaults: Dict[str, Any] = dict(
        n_districts=2,
        buildings_per_district=2,
        rooms_per_building=3,
        dc_nodes=8,
        seed=7,
        thermal_tick_s=600.0,
        filler_chunk_s=1200.0,
    )
    defaults.update(overrides)
    return DF3Middleware(MiddlewareConfig(**defaults), obs=obs)
