"""E4 — architecture class 1 (shared) vs class 2 (dedicated) (§III-B).

Class 2 "can guarantee a minimal quality of service, what is particularly
interesting if there are few requests", but "How do we decide on the number of
workers?  How do we manage peak of requests?"  We run both architectures under
a heavy DCC background at two edge intensities (steady and burst) and sweep
the dedicated-pool size, reporting edge deadline misses and DCC throughput.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.requests import CloudRequest
from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.report import Table
from repro.runner.runner import run_sweep
from repro.runner.spec import SweepPoint, SweepPrefix, SweepSpec
from repro.sim.calendar import HOUR, MINUTE
from repro.sim.rng import RngRegistry
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

__all__ = ["run", "SWEEP"]

#: (point-id suffix, architecture, dedicated pool, display label) in row order
_VARIANTS = (
    ("shared", "shared", 0, "shared (class 1)"),
    ("dedicated-1", "dedicated", 1, "dedicated pool=1 (class 2)"),
    ("dedicated-2", "dedicated", 2, "dedicated pool=2 (class 2)"),
    ("dedicated-3", "dedicated", 3, "dedicated pool=3 (class 2)"),
)

_GHZ = 1e9


def _edge_gen(rngs: RngRegistry) -> EdgeWorkloadGenerator:
    return EdgeWorkloadGenerator(
        rngs.stream("e4-edge"), source="district-0/building-0",
        config=EdgeWorkloadConfig(rate_per_hour=240.0),
    )


def _workload_plan(seed: int):
    """E4's shared prefix: cloud draws + steady and burst edge plans.

    Identical for all eight scenarios (they vary architecture and whether
    the burst is *injected*, not the draws).  The burst plan is drawn after
    the steady plan from the same named stream — the order the historical
    cells consumed it — so steady cells simply ignore it.
    """
    t0 = mid_month_start(1)
    rngs = RngRegistry(seed)
    rng = rngs.stream("e4-cloud")
    cloud = tuple(
        (float(rng.uniform(0.8e13, 1.2e13)),
         t0 + float(rng.uniform(0, 1.0 * HOUR)))
        for _ in range(400)
    )
    edge_gen = _edge_gen(rngs)
    steady = edge_gen.plan(t0, t0 + 2 * HOUR)
    burst = edge_gen.plan_burst(t0 + HOUR, n=400, spacing_s=0.05)
    return (cloud, steady, burst)


def _scenario(architecture: str, dedicated: int, burst: bool, seed: int,
              plan=None) -> Dict[str, float]:
    t0 = mid_month_start(1)
    mw = small_city(
        seed=seed, start_time=t0, architecture=architecture,
        dedicated_per_cluster=dedicated if architecture == "dedicated" else 1,
        saturation_policy=SaturationPolicy.QUEUE, enable_filler=False,
        dc_nodes=0,
    )
    if plan is None:
        plan = _workload_plan(seed)
    cloud_plan, steady_plan, burst_plan = plan
    # DCC background sized to ≈ the whole fleet's 2-hour cycle budget, so
    # the cluster is genuinely contended (the §III-B "cluster is full" regime)
    cloud: List[CloudRequest] = [
        CloudRequest(cycles=cycles, time=time, cores=1)
        for cycles, time in cloud_plan
        # single-core jobs pack the fleet with no fragmentation
    ]
    edge_gen = _edge_gen(RngRegistry(seed))
    edge = edge_gen.materialize(steady_plan)
    if burst:
        burst_reqs = edge_gen.materialize(burst_plan)
        # a real burst comes from many devices at once — give each its own
        # radio so the cluster, not one uplink, is what saturates
        for i, r in enumerate(burst_reqs):
            r.source = f"district-0/building-{i % 2}/dev-{i % 80}"
        edge += burst_reqs
        edge.sort(key=lambda r: r.time)
    mw.inject(cloud)
    mw.inject(edge)
    mw.run_until(t0 + 2 * HOUR)
    done_cloud = len(mw.completed_cloud())
    return {
        "edge_miss": mw.edge_deadline_miss_rate(),
        "cloud_done": done_cloud,
        "cloud_cycles_done": sum(r.cycles for r in mw.completed_cloud()),
    }


def sweep_points(seed: int = 23) -> List[SweepPoint]:
    """One point per (edge load, architecture variant) scenario."""
    return [
        SweepPoint(
            experiment_id="E4",
            point_id=f"{'burst' if burst else 'steady'}/{vid}",
            cell="repro.experiments.e4_architectures:_scenario",
            params=(("architecture", arch), ("dedicated", pool),
                    ("burst", burst), ("seed", seed)),
            needs=(("plan", "workload-plan"),),
        )
        for burst in (False, True)
        for vid, arch, pool, _ in _VARIANTS
    ]


def sweep_prefixes(seed: int = 23) -> List[SweepPrefix]:
    """The shared workload plan all eight scenarios consume."""
    return [SweepPrefix(
        experiment_id="E4", prefix_id="workload-plan",
        cell="repro.experiments.e4_architectures:_workload_plan",
        params=(("seed", seed),),
    )]


def sweep_reduce(cells: Dict[str, Any], seed: int = 23) -> ExperimentResult:
    """Reassemble the eight scenarios into the architecture table."""
    rows = []
    for burst in (False, True):
        load = "burst" if burst else "steady"
        for vid, _, _, label in _VARIANTS:
            rows.append((load, label, cells[f"{load}/{vid}"]))

    table = Table(["edge_load", "architecture", "edge_miss_rate", "cloud_completed"],
                  title="E4 — shared vs dedicated workers under DCC pressure")
    for load, arch, r in rows:
        table.add_row(load, arch, round(r["edge_miss"], 3), r["cloud_done"])

    data = {f"{load}/{arch}": r for load, arch, r in rows}
    return ExperimentResult(
        experiment_id="E4",
        title="Architecture classes 1 vs 2 (§III-B)",
        text=table.render(),
        data=data,
    )


SWEEP = SweepSpec("E4", points=sweep_points, reduce=sweep_reduce,
                  prefixes=sweep_prefixes)


def run(seed: int = 23) -> ExperimentResult:
    """Shared vs dedicated (pool sizes 1, 2, 3) × steady/burst edge load."""
    return run_sweep(SWEEP, seed=seed)
