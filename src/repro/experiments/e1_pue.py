"""E1 — PUE and energy: data furnace vs air-cooled datacenter (§II-A).

"CloudandHeat claims a PUE value of 1.026 in some of their datacenters.  This
is better than the one obtained by Google."  We run the identical DCC batch on
(a) a winter DF3 fleet, where every joule lands in rooms that asked for heat,
and (b) a classical air-cooled datacenter, and compare PUE, energy per unit of
work, and the useful-heat dividend.
"""

from __future__ import annotations

from repro.core.requests import CloudRequest
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.hardware.datacenter import Datacenter
from repro.metrics.energy import EnergyReport
from repro.metrics.report import Table
from repro.sim.calendar import DAY
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.cloud import CloudJobConfig, CloudJobGenerator

__all__ = ["run"]

#: the paper's cited CloudandHeat figure, for the report
CLOUDANDHEAT_CLAIMED_PUE = 1.026


def _batch(seed: int, t0: float, duration: float):
    gen = CloudJobGenerator(
        RngRegistry(seed).stream("e1-batch"),
        CloudJobConfig(rate_per_hour=40.0, mean_core_seconds=900.0, max_cores=4),
    )
    return gen.generate(t0, t0 + duration)


def run(duration_days: float = 1.0, seed: int = 11) -> ExperimentResult:
    """Run the same batch on both substrates; return the PUE/energy table."""
    t0 = mid_month_start(1)  # January: rooms want all the heat we can make
    duration = duration_days * DAY

    # --- (a) DF3 fleet ------------------------------------------------- #
    mw = small_city(seed=seed, start_time=t0, enable_filler=False, dc_nodes=0)
    mw.inject(_batch(seed, t0, duration))
    mw.run_until(t0 + duration + 0.25 * DAY)
    df_report = EnergyReport.from_df_fleet(mw.all_servers, mw.ledger.useful_heat_j)

    # --- (b) air-cooled datacenter ------------------------------------- #
    eng = Engine(start=t0)
    dc = Datacenter("dc", n_nodes=8, engine=eng, cooling_overhead=0.35,
                    fixed_overhead_w=20.0)
    from repro.hardware.server import Task

    done = []
    for req in _batch(seed, t0, duration):
        eng.schedule_at(
            req.time,
            lambda r=req: dc.submit(
                Task(r.request_id, r.cycles, r.cores,
                     on_complete=lambda t, now: done.append(t.task_id))
            ),
        )
    eng.run_until(t0 + duration + 0.25 * DAY)
    dc_report = EnergyReport.from_datacenter(dc)

    table = Table(
        ["substrate", "pue", "kwh_total", "kwh_per_gigacycle", "useful_heat_fraction"],
        title="E1 — identical DCC batch: data furnace vs air-cooled datacenter",
    )
    table.add_row("df3-fleet (winter)", round(df_report.pue, 3),
                  round(df_report.total_energy_kwh, 2),
                  df_report.kwh_per_gigacycle(),
                  round(df_report.useful_heat_fraction, 3))
    table.add_row("air-cooled dc", round(dc_report.pue, 3),
                  round(dc_report.total_energy_kwh, 2),
                  dc_report.kwh_per_gigacycle(),
                  round(dc_report.useful_heat_fraction, 3))
    text = table.render() + (
        f"\n(reference: CloudandHeat claimed PUE = {CLOUDANDHEAT_CLAIMED_PUE};"
        " DF heat replaces resistive heating joule-for-joule)"
    )
    return ExperimentResult(
        experiment_id="E1",
        title="PUE: data furnace vs air-cooled datacenter (§II-A)",
        text=text,
        data={
            "df_pue": df_report.pue,
            "dc_pue": dc_report.pue,
            "df_useful_heat_fraction": df_report.useful_heat_fraction,
            "dc_useful_heat_fraction": dc_report.useful_heat_fraction,
            "df_completed": len(mw.completed_cloud()),
            "dc_completed": len(done),
        },
    )
