"""E5 — managing request peaks: the §III-B policy menu, head to head.

"In the case there are too many DCC requests, it might be impossible to
schedule the processing of an edge request (the cluster is full).  ...  The
first one is to use preemption ...  The second solution is to use offloading
[vertical or horizontal] ...  Finally, let us observe that we can also decide
not to scale but to delay the processing."

One saturated cluster, one edge burst, five policies: QUEUE (= delay),
PREEMPT, VERTICAL, HORIZONTAL, DECISION.  Reported per policy: edge deadline
misses, median edge latency, DCC slowdown (completion inflation vs an
unloaded run), and the cooperation-fairness index for horizontal.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.requests import CloudRequest
from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.latency import LatencyStats
from repro.metrics.report import Table
from repro.sim.calendar import HOUR, MINUTE
from repro.sim.rng import RngRegistry
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

__all__ = ["run"]

_GHZ = 1e9


def _run_policy(policy: SaturationPolicy, seed: int) -> Dict[str, float]:
    t0 = mid_month_start(1)
    mw = small_city(seed=seed, start_time=t0, saturation_policy=policy,
                    enable_filler=False, allow_privacy_vertical=False)
    rngs = RngRegistry(seed)
    rng = rngs.stream("e5-cloud")
    # saturate district 0 completely with preemptible DCC work
    cloud = []
    for w in mw.clusters[0].workers:
        for c in range(w.n_cores):
            req = CloudRequest(cycles=float(rng.uniform(1.5e12, 2.5e12)),
                               time=t0, cores=1, preemptible=True)
            cloud.append(req)
            mw.schedulers[0].submit_cloud(req)
    # edge burst against the saturated cluster (privacy-free so vertical works)
    gen = EdgeWorkloadGenerator(
        rngs.stream("e5-edge"), source="district-0/building-0",
        config=EdgeWorkloadConfig(rate_per_hour=0.0, privacy_sensitive=False,
                                  deadline_classes=((2.0, 1.0),)),
    )
    edge = gen.generate_burst(t0 + MINUTE, n=120, spacing_s=0.5)
    mw.inject(edge)
    mw.run_until(t0 + 2 * HOUR)

    done_edge = [r for r in edge if r.status.value == "completed"]
    stats = (LatencyStats.from_requests(done_edge, mw.expired_edge())
             if (done_edge or mw.expired_edge()) else None)
    cloud_done = [r for r in cloud if r.status.value == "completed"]
    cloud_rts = [r.response_time() for r in cloud_done]
    return {
        "edge_miss": mw.edge_deadline_miss_rate(),
        "edge_median_s": stats.median_s if stats and done_edge else float("nan"),
        "cloud_completed": len(cloud_done),
        "cloud_mean_rt_s": float(np.mean(cloud_rts)) if cloud_rts else float("nan"),
        "fairness": mw.offloader.ledger.jain_fairness(),
        "horizontal": mw.offloader.horizontal_count,
        "vertical": mw.offloader.vertical_count,
    }


def run(seed: int = 29) -> ExperimentResult:
    """All five §III-B policies against the same saturated cluster + burst."""
    policies = (
        SaturationPolicy.QUEUE,
        SaturationPolicy.PREEMPT,
        SaturationPolicy.VERTICAL,
        SaturationPolicy.HORIZONTAL,
        SaturationPolicy.DECISION,
    )
    results = {p.value: _run_policy(p, seed) for p in policies}

    table = Table(
        ["policy", "edge_miss_rate", "edge_median_ms", "cloud_mean_rt_s", "offloads(v/h)"],
        title="E5 — peak-management policies on a saturated cluster (§III-B)",
    )
    for name, r in results.items():
        med = r["edge_median_s"]
        table.add_row(
            name,
            round(r["edge_miss"], 3),
            round(med * 1e3, 1) if med == med else "-",
            round(r["cloud_mean_rt_s"], 1),
            f"{r['vertical']}/{r['horizontal']}",
        )
    return ExperimentResult(
        experiment_id="E5",
        title="Preemption vs offloading vs delay (§III-B)",
        text=table.render(),
        data=results,
    )
