"""E2 — edge service latency across submission paths (§II-C, §III-B).

"Direct requests ... the edge user has a direct connection to the server ...
Indirect requests ... imply to pay an additional latency cost."  Vertical
offloading pays a WAN round trip on top.  We measure the same request shape
over four paths — direct, indirect (master hop), horizontal (peer cluster),
vertical (datacenter) — and over the four low-power protocols the paper names.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.requests import CloudRequest, EdgeMode, EdgeRequest
from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.latency import LatencyStats
from repro.metrics.report import Table
from repro.network.lowpower import ENOCEAN, LORA, SIGFOX, ZIGBEE
from repro.sim.calendar import DAY, MINUTE

__all__ = ["run"]

_GHZ = 1e9


def _requests(n: int, t0: float, spacing: float, privacy: bool = False) -> List[EdgeRequest]:
    return [
        EdgeRequest(
            cycles=0.3 * _GHZ, time=t0 + i * spacing, deadline_s=30.0,
            input_bytes=2e3, output_bytes=500,
            source="district-0/building-0", privacy_sensitive=privacy,
        )
        for i in range(n)
    ]


def _median_latency(mw, reqs) -> float:
    done = [r for r in reqs if r.status.value == "completed"]
    if not done:
        return float("nan")
    return LatencyStats.from_requests(done).median_s


def run(n_requests: int = 60, seed: int = 13) -> ExperimentResult:
    """Measure per-path and per-protocol edge latency."""
    t0 = mid_month_start(1)
    horizon = t0 + n_requests * 30.0 + 10 * MINUTE
    latencies: Dict[str, float] = {}

    # direct: device → its own Q.rad
    mw = small_city(seed=seed, start_time=t0)
    reqs = _requests(n_requests, t0 + MINUTE, 30.0)
    for r in reqs:
        r.mode = EdgeMode.DIRECT
    targets = {r.request_id: "district-0/building-0/qrad-0" for r in reqs}
    mw.inject(reqs, direct_targets=targets)
    mw.run_until(horizon)
    latencies["direct"] = _median_latency(mw, reqs)

    # indirect: via the cluster master
    mw = small_city(seed=seed, start_time=t0)
    reqs = _requests(n_requests, t0 + MINUTE, 30.0)
    mw.inject(reqs)
    mw.run_until(horizon)
    latencies["indirect"] = _median_latency(mw, reqs)

    # horizontal: district 0 full, peers serve
    mw = small_city(seed=seed, start_time=t0,
                    saturation_policy=SaturationPolicy.HORIZONTAL,
                    enable_filler=False)
    for w in mw.clusters[0].workers:  # saturate district 0 with pinned work
        for c in range(w.n_cores):
            blocker = CloudRequest(cycles=1e15, time=t0, cores=1, preemptible=False)
            mw.schedulers[0].submit_cloud(blocker)
    reqs = _requests(n_requests, t0 + MINUTE, 30.0)
    mw.inject(reqs)
    mw.run_until(horizon)
    latencies["horizontal"] = _median_latency(mw, reqs)

    # vertical: radio to the gateway, then the cluster is full → WAN to the DC
    mw = small_city(seed=seed, start_time=t0,
                    saturation_policy=SaturationPolicy.VERTICAL,
                    enable_filler=False, allow_privacy_vertical=True)
    for d in mw.clusters:  # saturate every cluster so vertical is the only out
        for w in mw.clusters[d].workers:
            for c in range(w.n_cores):
                mw.schedulers[d].submit_cloud(
                    CloudRequest(cycles=1e15, time=t0, cores=1, preemptible=False)
                )
    reqs = _requests(n_requests, t0 + MINUTE, 30.0)
    mw.inject(reqs)
    mw.run_until(horizon)
    latencies["vertical"] = _median_latency(mw, reqs)

    table = Table(["path", "median_latency_ms"],
                  title="E2a — same edge request over the four DF3 paths")
    for path in ("direct", "indirect", "horizontal", "vertical"):
        table.add_row(path, round(latencies[path] * 1e3, 2))

    # per-protocol sweep (indirect path), each driven at a rate its
    # duty-cycle budget can sustain (§III-B: these protocols are slow)
    proto_plan = (
        (ZIGBEE, 2e3, 60.0, 20),
        (ENOCEAN, 14.0, 60.0, 20),  # telegram protocol: 14-byte payloads
        (LORA, 2e3, 400.0, 10),
        (SIGFOX, 12.0, 600.0, 8),
    )
    proto_lat: Dict[str, float] = {}
    for proto, size, spacing, n in proto_plan:
        mw = small_city(seed=seed, start_time=t0, edge_protocol=proto)
        reqs = _requests(n, t0 + MINUTE, spacing)
        for r in reqs:
            r.input_bytes = size
            r.deadline_s = 600.0
        mw.inject(reqs)
        mw.run_until(t0 + MINUTE + n * spacing + 20 * MINUTE)
        proto_lat[proto.name] = _median_latency(mw, reqs)
    t2 = Table(["protocol", "median_latency_ms"],
               title="E2b — indirect edge latency per low-power protocol (§III-B)")
    for name in ("zigbee", "enocean", "lora", "sigfox"):
        t2.add_row(name, round(proto_lat[name] * 1e3, 1))

    return ExperimentResult(
        experiment_id="E2",
        title="Edge latency: direct vs indirect vs offloaded (§II-C)",
        text=table.render() + "\n\n" + t2.render(),
        data={"paths": latencies, "protocols": proto_lat},
    )
