"""Figure 4: average monthly room temperature across the heating season.

The paper's only measured data: "Average temperature From November (11) to May
(5) 2016 on Qarnot computing sites", plotted between 17 and 26 °C with monthly
means around 20–25 °C.  We regenerate it by running the full DF3 stack — Q.rads
under heat regulators, filler compute producing the heat, Paris-like weather —
across Nov 1 → May 31 and reducing room temperatures to monthly means.

Sampling note: to keep the benchmark fast we simulate a representative window
of each month (``days_per_month`` days starting the 10th) rather than all 212
days; the monthly mean of a stationary controlled process is insensitive to
this (verified against full-month runs during development).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.report import format_series
from repro.sim.calendar import DAY, HEATING_SEASON_MONTHS, month_name

__all__ = ["run"]


def run(days_per_month: float = 2.0, seed: int = 7, rooms_per_building: int = 3) -> ExperimentResult:
    """Regenerate the Fig. 4 series.

    Each month is simulated as an independent window (fresh middleware warmed
    up for half a day) so months do not leak controller state — matching how
    the paper averages many sites over calendar months.
    """
    if days_per_month <= 0:
        raise ValueError("days_per_month must be > 0")
    monthly: Dict[int, float] = {}
    for month in HEATING_SEASON_MONTHS:
        mw = small_city(
            seed=seed,
            rooms_per_building=rooms_per_building,
            start_time=mid_month_start(month),
            enable_filler=True,
        )
        # drive the heating flow the way incentivized hosts do (§III-C)
        from repro.workloads.heating import HeatingBehavior, HeatingRequestGenerator

        for bname, building in mw.buildings.items():
            gen = HeatingRequestGenerator(
                mw.rngs.stream(f"heating-{bname}"),
                rooms=[r.name for r in building.rooms],
                behavior=HeatingBehavior.INCENTIVIZED,
            )
            mw.inject(gen.generate(mw.engine.now, mw.engine.now + (days_per_month + 1) * DAY))
        warmup = 0.5 * DAY
        mw.run_until(mw.engine.now + warmup)
        # discard warm-up samples: measure a fresh tracker from here
        from repro.thermal.comfort import ComfortTracker

        mw.comfort = ComfortTracker(band_c=1.0)
        mw.run_until(mw.engine.now + days_per_month * DAY)
        monthly[month] = mw.comfort.monthly_mean_temps()[month]

    xs = [month_name(m) for m in HEATING_SEASON_MONTHS]
    ys = [round(monthly[m], 2) for m in HEATING_SEASON_MONTHS]
    text = format_series(
        "Figure 4 — mean room temperature on DF3-heated sites (Nov → May)",
        xs, ys, x_label="month", y_label="temp_C",
    )
    return ExperimentResult(
        experiment_id="F4",
        title="Average room temperature, heating season (paper Fig. 4)",
        text=text,
        data={"monthly_mean_c": monthly},
    )
