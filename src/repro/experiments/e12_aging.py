"""E12 — processor aging under free cooling (§III-C).

"The cooling approach of DF servers might cause the acceleration of processor
aging and consequently, the need to replace them inside DF servers."

Free-cooled Q.rads see room ambient (~20 °C) with a high junction-to-ambient
rise (passive fins); chilled datacenter silicon sees cool supply air with
forced airflow (low rise).  We run both through the same annual duty profile
(winter-heavy for the Q.rad — it computes when heat is wanted) and project
expected lifetimes, plus a utilization sweep.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.aging import AgingModel, AgingTracker
from repro.metrics.report import Table
from repro.sim.calendar import DAY, YEAR
from repro.sim.rng import RngRegistry
from repro.thermal.weather import Weather

__all__ = ["run"]

#: junction-to-ambient rise at full power: passive Q.rad vs ducted DC sled
THETA_QRAD = 38.0
THETA_DC = 14.0


def _annual_wear(ambient_fn, theta: float, util_fn, model: AgingModel) -> AgingTracker:
    tracker = AgingTracker(model)
    for day in range(0, 365, 2):  # 2-day strides keep it fast, cover the year
        t = day * DAY + 12 * 3600.0
        ambient = ambient_fn(t)
        util = util_fn(t)
        tj = model.junction_temperature_c(ambient, util, theta_ja_c=theta)
        tracker.add(2 * DAY, float(tj))
    return tracker


def run(seed: int = 53) -> ExperimentResult:
    """Lifetime projection: free-cooled Q.rad vs chilled DC node."""
    weather = Weather(RngRegistry(seed).stream("weather"), horizon=2 * YEAR)
    model = AgingModel()

    def room_ambient(t):  # regulated room: 20 °C in season, free-floating in summer
        out = weather.outdoor_temperature(t)
        return max(20.0, min(out + 4.0, 28.0))

    def qrad_util(t):  # computes when heat is wanted: winter-heavy duty
        out = weather.outdoor_temperature(t)
        return float(np.clip((18.0 - out) / 15.0, 0.0, 1.0))

    def dc_ambient(t):  # chilled aisle, season-independent
        return 24.0

    def dc_util(t):  # steady business load
        return 0.65

    qrad = _annual_wear(room_ambient, THETA_QRAD, qrad_util, model)
    dc = _annual_wear(dc_ambient, THETA_DC, dc_util, model)
    # a Q.rad forced to run DC-style constant duty (worst case for free cooling)
    qrad_flat = _annual_wear(room_ambient, THETA_QRAD, dc_util, model)

    table = Table(
        ["deployment", "mean_accel_factor", "expected_lifetime_years"],
        title="E12 — thermally accelerated aging (§III-C)",
    )
    rows: Dict[str, AgingTracker] = {
        "qrad free-cooled (heat-driven duty)": qrad,
        "qrad free-cooled (constant 65% duty)": qrad_flat,
        "dc chilled (constant 65% duty)": dc,
    }
    for name, tr in rows.items():
        table.add_row(name, round(tr.mean_acceleration, 2),
                      round(tr.expected_lifetime_years(), 1))

    # utilization sweep at fixed ambients
    sweep = Table(["utilization", "qrad_lifetime_y", "dc_lifetime_y"],
                  title="E12b — lifetime vs utilization")
    sweep_data = {}
    for util in (0.25, 0.5, 0.75, 1.0):
        q = AgingTracker(model)
        d = AgingTracker(model)
        q.add(3600.0, float(model.junction_temperature_c(21.0, util, THETA_QRAD)))
        d.add(3600.0, float(model.junction_temperature_c(24.0, util, THETA_DC)))
        sweep.add_row(util, round(q.expected_lifetime_years(), 1),
                      round(d.expected_lifetime_years(), 1))
        sweep_data[util] = (q.expected_lifetime_years(), d.expected_lifetime_years())

    return ExperimentResult(
        experiment_id="E12",
        title="Processor aging under free cooling (§III-C)",
        text=table.render() + "\n\n" + sweep.render(),
        data={
            "qrad_lifetime_y": qrad.expected_lifetime_years(),
            "qrad_flat_lifetime_y": qrad_flat.expected_lifetime_years(),
            "dc_lifetime_y": dc.expected_lifetime_years(),
            "sweep": sweep_data,
        },
    )
