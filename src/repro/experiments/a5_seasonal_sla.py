"""A5 (extension) — seasonal SLAs and campaign planning (§IV).

Ties the §IV economics together on top of E3's measured capacity:

1. a 200 000-core-hour render campaign is planned **season-aware** (free month
   choice, cheapest-first) vs **season-blind** (forced into the summer
   quarter) — the cost gap is the value of seasonal planning;
2. a winter day of edge traffic is audited against the canonical seasonal
   contract (:meth:`~repro.core.slas.SLAContract.winter_edge`): hard 500 ms
   p95 in winter, soft year-round.
"""

from __future__ import annotations

from repro.core.pricing import SeasonalPricing
from repro.core.scheduling.base import SaturationPolicy
from repro.core.seasonal_planner import plan_campaign
from repro.core.slas import SLAAuditor, SLAContract
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.experiments.e3_seasonal_capacity import _monthly_capacity
from repro.metrics.report import Table
from repro.sim.calendar import DAY
from repro.sim.rng import RngRegistry
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

__all__ = ["run"]


def run(seed: int = 73, campaign_core_hours: float = 200_000.0) -> ExperimentResult:
    """Plan a campaign against measured capacity; audit a winter edge day."""
    capacity = _monthly_capacity(seed, days=0.5, boilers=0)
    pricing = SeasonalPricing(capacity)

    aware = plan_campaign(campaign_core_hours, months=tuple(range(1, 13)),
                          pricing=pricing)
    blind = plan_campaign(campaign_core_hours, months=(6, 7, 8, 9), pricing=pricing)

    t1 = Table(["strategy", "feasible", "cost_eur", "mean_eur_per_core_hour", "months"],
               title="A5a — planning a 200k core-hour campaign on seasonal capacity (§IV)")
    for name, plan in (("season-aware", aware), ("summer-blind", blind)):
        t1.add_row(name, plan.feasible, round(plan.total_cost_eur),
                   round(plan.mean_price(), 4),
                   ",".join(str(m) for m in plan.months_used) or "-")

    # --- winter edge day under the seasonal contract ----------------------- #
    t0 = mid_month_start(1)
    mw = small_city(seed=seed, start_time=t0,
                    saturation_policy=SaturationPolicy.PREEMPT)
    rngs = RngRegistry(seed)
    edge = []
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(rngs.stream(f"edge-{bname}"), source=bname,
                                    config=EdgeWorkloadConfig(rate_per_hour=40.0))
        edge.extend(gen.generate(t0, t0 + DAY))
    mw.inject(edge)
    mw.run_until(t0 + 1.2 * DAY)
    report = SLAAuditor(SLAContract.winter_edge()).audit(
        mw.completed_edge(), failed=mw.expired_edge()
    )

    text = t1.render() + "\n\nA5b — winter edge day vs the seasonal contract:\n" + str(report)
    return ExperimentResult(
        experiment_id="A5",
        title="Seasonal SLAs and campaign planning (§IV)",
        text=text,
        data={
            "aware_cost": aware.total_cost_eur,
            "aware_feasible": aware.feasible,
            "blind_cost": blind.total_cost_eur,
            "blind_feasible": blind.feasible,
            "blind_unplaced": blind.unplaced_core_hours,
            "sla_compliant": report.compliant,
            "sla_penalty_eur": report.total_penalty_eur,
            "completion_rate": report.completion_rate,
        },
    )
