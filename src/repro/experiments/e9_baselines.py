"""E9 — DF3 against the architectures the paper argues with (§I, §V).

Identical winter-day request streams (edge + cloud) on four worlds:

* **df3** — the paper's proposal (this repository's middleware);
* **cloud-only** — everything across the WAN, resistive home heating;
* **micro-dc** — Schneider-style distributed server rooms (§V);
* **desktop-grid** — opportunistic volunteer desktops (§I, refs [3–5]).

Reported: edge latency and deadline misses, total electrical energy
(compute + cooling + resistive heating where applicable), and the
owner-discomfort account for the desktop grid.
"""

from __future__ import annotations

import copy
from typing import Dict, List

from repro.baselines.cloud_only import CloudOnlyBaseline
from repro.baselines.desktop_grid import DesktopGridBaseline
from repro.baselines.micro_dc import MicroDatacenterBaseline
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.latency import LatencyStats
from repro.metrics.report import Table
from repro.sim.calendar import DAY
from repro.sim.rng import RngRegistry
from repro.workloads.cloud import CloudJobConfig, CloudJobGenerator
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

__all__ = ["run"]


def _streams(seed: int, t0: float, t1: float):
    rngs = RngRegistry(seed)
    edge: List[EdgeRequest] = []
    for d in range(2):
        for b in range(2):
            src = f"district-{d}/building-{b}"
            gen = EdgeWorkloadGenerator(rngs.stream(f"edge-{src}"), source=src,
                                        config=EdgeWorkloadConfig(rate_per_hour=40.0))
            edge.extend(gen.generate(t0, t1))
    cloud = CloudJobGenerator(rngs.stream("cloud"),
                              CloudJobConfig(rate_per_hour=10.0)).generate(t0, t1)
    return edge, cloud


def _edge_stats(completed, extra_miss: int = 0):
    done = [r for r in completed if r.status is RequestStatus.COMPLETED]
    if not done:
        return float("nan"), 1.0
    stats = LatencyStats.from_requests(done)
    misses = sum(1 for r in done if not r.deadline_met()) + extra_miss
    return stats.median_s, misses / (len(done) + extra_miss)


def run(duration_days: float = 1.0, seed: int = 41) -> ExperimentResult:
    """Same streams, four worlds, one comparison table."""
    t0 = mid_month_start(1)
    t1 = t0 + duration_days * DAY
    horizon = t1 + 0.5 * DAY
    results: Dict[str, Dict[str, float]] = {}

    def fresh_streams():
        return _streams(seed, t0, t1)

    # --- DF3 -------------------------------------------------------------- #
    mw = small_city(seed=seed, start_time=t0,
                    saturation_policy=SaturationPolicy.PREEMPT)
    edge, cloud = fresh_streams()
    mw.inject(edge)
    mw.inject(cloud)
    mw.run_until(horizon)
    med, _ = _edge_stats(mw.completed_edge())
    results["df3"] = {
        "edge_median_ms": med * 1e3,
        "edge_miss": mw.edge_deadline_miss_rate(),
        "energy_kwh": mw.fleet_energy_j() / 3.6e6,  # heating included: it IS the heat
        "discomfort": 0.0,
        "comfort_in_band": mw.comfort.result().time_in_band,
    }

    # --- cloud-only ------------------------------------------------------- #
    b = CloudOnlyBaseline(n_rooms=12, dc_nodes=8, seed=seed, start_time=t0)
    edge, cloud = fresh_streams()
    b.inject(edge)
    b.inject(cloud)
    b.run_until(horizon)
    med, miss = _edge_stats(b.completed_edge)
    results["cloud-only"] = {
        "edge_median_ms": med * 1e3,
        "edge_miss": miss,
        "energy_kwh": b.total_energy_j() / 3.6e6,
        "discomfort": 0.0,
        "comfort_in_band": b.comfort.result().time_in_band,
    }

    # --- micro-DC ----------------------------------------------------------#
    m = MicroDatacenterBaseline(n_districts=2, nodes_per_micro_dc=2, n_rooms=12,
                                seed=seed, start_time=t0)
    edge, cloud = fresh_streams()
    m.inject(edge)
    m.inject(cloud)
    m.run_until(horizon)
    med, miss = _edge_stats(m.completed_edge)
    results["micro-dc"] = {
        "edge_median_ms": med * 1e3,
        "edge_miss": miss,
        "energy_kwh": m.total_energy_j() / 3.6e6,
        "discomfort": 0.0,
        "comfort_in_band": m.comfort.result().time_in_band,
    }

    # --- desktop grid ------------------------------------------------------#
    g = DesktopGridBaseline(n_desktops=12, seed=seed, start_time=t0)
    edge, cloud = fresh_streams()
    g.inject(edge)
    g.inject(cloud)
    g.run_until(horizon)
    med, _ = _edge_stats(g.completed_edge)
    results["desktop-grid"] = {
        "edge_median_ms": med * 1e3,
        "edge_miss": g.edge_deadline_miss_rate(),
        "energy_kwh": g.total_energy_j() / 3.6e6,
        "discomfort": g.noise_discomfort_hours,
        "comfort_in_band": float("nan"),
    }

    table = Table(
        ["architecture", "edge_median_ms", "edge_miss_rate", "energy_kwh",
         "owner_discomfort_h"],
        title="E9 — DF3 vs the alternatives on an identical winter day",
    )
    for name, r in results.items():
        table.add_row(name, round(r["edge_median_ms"], 1), round(r["edge_miss"], 3),
                      round(r["energy_kwh"], 1), round(r["discomfort"], 1))
    note = ("\n(df3/cloud-only/micro-dc energy includes keeping 12 rooms warm —"
            " resistive for the baselines, compute-heat for df3;"
            " desktop-grid heats nothing and serves edge only opportunistically)")
    return ExperimentResult(
        experiment_id="E9",
        title="Baseline comparison (§I, §V)",
        text=table.render() + note,
        data=results,
    )
