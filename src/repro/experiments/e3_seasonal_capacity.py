"""E3 — seasonality of compute capacity (§III-C, §IV).

"In winter, the heat demand increases the computing power that is then
reduced in the summer."  We sample a representative window of every month,
record the smart-grid manager's available-core log, extrapolate to monthly
core-hours, and feed the result to the §IV seasonal pricing model.  A second
fleet with digital boilers shows the §III-C claim that boilers flatten the
curve ("we can continue to produce hot water independently of heating
requests").
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.pricing import SeasonalPricing
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.report import Table
from repro.runner.runner import run_sweep
from repro.runner.spec import SweepPoint, SweepPrefix, SweepSpec
from repro.sim.calendar import DAY, MONTH_LENGTHS, month_name

__all__ = ["run", "SWEEP"]


def _fleet_blueprint(seed: int, boilers: int):
    """E3's shared prefix: one fleet flavour's city kwargs (sans month).

    Each of the two flavours (with/without digital boilers) is consumed by
    its twelve month points; the cell adds the month-specific start time.
    """
    return (("seed", seed), ("boilers_per_district", boilers))


def _capacity_cell(seed: int, days: float, month: int, boilers: int,
                   blueprint=None) -> float:
    """Extrapolated core-hours of one (month, fleet flavour) sample window."""
    if blueprint is None:
        blueprint = _fleet_blueprint(seed, boilers)
    mw = small_city(start_time=mid_month_start(month), **dict(blueprint))
    mw.run_until(mw.engine.now + days * DAY)
    sampled = mw.smartgrid.monthly_capacity_core_hours().get(month, 0.0)
    return sampled * MONTH_LENGTHS[month - 1] / days


def _monthly_capacity(seed: int, days: float, boilers: int) -> Dict[int, float]:
    """All twelve months of one fleet flavour, serially (used by A5)."""
    return {month: _capacity_cell(seed, days, month, boilers)
            for month in range(1, 13)}


def sweep_points(days_per_month: float = 1.0, seed: int = 19) -> List[SweepPoint]:
    """One point per (month, boilers) — 24 independent city windows."""
    return [
        SweepPoint(
            experiment_id="E3",
            point_id=f"boilers={boilers}/month={month:02d}",
            cell="repro.experiments.e3_seasonal_capacity:_capacity_cell",
            params=(("seed", seed), ("days", days_per_month),
                    ("month", month), ("boilers", boilers)),
            needs=(("blueprint", f"fleet/boilers={boilers}"),),
        )
        for boilers in (0, 1)
        for month in range(1, 13)
    ]


def sweep_prefixes(days_per_month: float = 1.0,
                   seed: int = 19) -> List[SweepPrefix]:
    """One blueprint per fleet flavour, each feeding twelve month points."""
    return [
        SweepPrefix(
            experiment_id="E3",
            prefix_id=f"fleet/boilers={boilers}",
            cell="repro.experiments.e3_seasonal_capacity:_fleet_blueprint",
            params=(("seed", seed), ("boilers", boilers)),
        )
        for boilers in (0, 1)
    ]


def sweep_reduce(cells: Dict[str, Any], days_per_month: float = 1.0,
                 seed: int = 19) -> ExperimentResult:
    """Reassemble the 24 capacity samples into the price table."""
    heaters_only = {m: cells[f"boilers=0/month={m:02d}"] for m in range(1, 13)}
    with_boilers = {m: cells[f"boilers=1/month={m:02d}"] for m in range(1, 13)}

    pricing = SeasonalPricing(heaters_only)
    table = Table(
        ["month", "heater_core_hours", "with_boilers_core_hours", "spot_eur_per_core_hour"],
        title="E3 — monthly compute capacity and seasonal spot price",
    )
    for m in range(1, 13):
        table.add_row(month_name(m), round(heaters_only[m]),
                      round(with_boilers[m]), round(pricing.spot_price(m), 4))

    ratio = pricing.winter_summer_ratio()
    boiler_pricing = SeasonalPricing(with_boilers)
    boiler_ratio = boiler_pricing.winter_summer_ratio()
    text = table.render() + (
        f"\nwinter/summer capacity ratio: heaters-only = "
        f"{'inf' if ratio == float('inf') else round(ratio, 1)}, "
        f"with boilers = {'inf' if boiler_ratio == float('inf') else round(boiler_ratio, 1)}"
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Seasonal capacity and pricing (§III-C, §IV)",
        text=text,
        data={
            "heaters_only": heaters_only,
            "with_boilers": with_boilers,
            "winter_summer_ratio": ratio,
            "boiler_winter_summer_ratio": boiler_ratio,
            "price_table": pricing.price_table(),
        },
    )


SWEEP = SweepSpec("E3", points=sweep_points, reduce=sweep_reduce,
                  prefixes=sweep_prefixes)


def run(days_per_month: float = 1.0, seed: int = 19) -> ExperimentResult:
    """Monthly capacity with and without boilers + the §IV price table."""
    return run_sweep(SWEEP, days_per_month=days_per_month, seed=seed)
