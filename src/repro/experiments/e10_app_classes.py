"""E10 — which applications suit data furnace? (§II-A, §VI)

The paper's own suitability taxonomy, quantified:

* **batch render** (Liu et al.'s seasonal class; Qarnot's bread and butter) —
  embarrassingly parallel: DF wins on energy, ties on throughput;
* **neighbourhood service** (low-bandwidth, location-based) — DF wins on
  latency: it is *in the building*;
* **tightly coupled** (§VI: "Tightly coupled applications will have poor
  network performance on data furnace systems") — iterative bulk-synchronous
  job spread over servers; DF pays building/street latency every superstep,
  the DC pays intra-rack microseconds;
* **storage** (§VI: "storage services are not interesting because they do not
  produce heat") — joules of *useful heat* per stored terabyte-hour ≈ 0.

Each class reports the metric that decides it and the winner.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult, mid_month_start
from repro.hardware.datacenter import Datacenter
from repro.hardware.server import Task
from repro.metrics.report import Table
from repro.network.internet import WANLink, WANProfile
from repro.sim.calendar import DAY, HOUR
from repro.sim.engine import Engine

__all__ = ["run"]

_GHZ = 1e9


def _bsp_completion(n_workers: int, supersteps: int, cycles_per_step: float,
                    rate_hz: float, sync_latency_s: float) -> float:
    """Completion time of a bulk-synchronous job: compute + barrier latency."""
    per_step = cycles_per_step / rate_hz + 2 * sync_latency_s
    return supersteps * per_step


def run(seed: int = 43) -> ExperimentResult:
    """Four application classes, DF cluster vs datacenter."""
    t0 = mid_month_start(1)
    rows = []
    data: Dict[str, Dict[str, float]] = {}

    # ---- batch render: net energy after the winter heat credit ------------ #
    # 8 one-hour frames saturating 32 cores on each substrate
    from repro.hardware.qrad import QRad

    frame_cycles = 4 * 3.5e9 * HOUR  # one hour on 4 Q.rad cores
    eng = Engine(start=t0)
    qrads = [QRad(f"q{i}", eng) for i in range(2)]
    for i in range(8):
        qrads[i % 2].submit(Task(f"frame-{i}", frame_cycles, cores=4))
    eng.run_until(t0 + 2 * HOUR)
    for q in qrads:
        q.sync()
    df_gross = sum(q.energy_j for q in qrads) / 3.6e6
    df_net = 0.0  # every joule is heat a January room requested anyway

    eng = Engine(start=t0)
    dc = Datacenter("dc", 1, eng)
    for i in range(8):
        dc.submit(Task(f"frame-{i}", frame_cycles, cores=4))
    eng.run_until(t0 + 2 * HOUR)
    for n in dc.nodes:
        n.sync()
    dc_gross = sum(n.energy_j for n in dc.nodes) / 3.6e6
    rows.append(("batch render", "net kWh per 8 frames (winter)",
                 f"{df_net:.2f} (gross {df_gross:.2f}, all useful heat)",
                 f"{dc_gross:.2f}", "DF"))
    data["batch"] = {"df_net": df_net, "df_gross": df_gross, "dc": dc_gross}

    # ---- neighbourhood service: response latency -------------------------- #
    lan_rtt = 2 * 0.0015          # device → building server
    wan = WANLink(WANProfile.continental_internet())
    wan_rtt = wan.round_trip(2e3, 500)
    exec_local = 0.05 * _GHZ / (2.0 * _GHZ)   # 50 Mcycles at a capped Q.rad
    exec_dc = 0.05 * _GHZ / (3.2 * _GHZ)
    df_lat = (lan_rtt + exec_local) * 1e3
    dc_lat = (wan_rtt + exec_dc) * 1e3
    rows.append(("neighbourhood service", "response ms",
                 f"{df_lat:.1f}", f"{dc_lat:.1f}", "DF"))
    data["neighbourhood"] = {"df": df_lat, "dc": dc_lat}

    # ---- tightly coupled: BSP completion ---------------------------------- #
    # fine-grained supersteps: the latency term dominates on the building LAN
    df_t = _bsp_completion(8, supersteps=20000, cycles_per_step=0.02 * _GHZ,
                           rate_hz=3.5e9, sync_latency_s=0.0015)  # building LAN
    dc_t = _bsp_completion(8, supersteps=20000, cycles_per_step=0.02 * _GHZ,
                           rate_hz=3.2e9, sync_latency_s=5e-6)    # intra-rack
    rows.append(("tightly coupled (BSP)", "completion s",
                 f"{df_t:.1f}", f"{dc_t:.1f}", "DC"))
    data["coupled"] = {"df": df_t, "dc": dc_t}

    # ---- storage: useful heat per TB·day ----------------------------------#
    disk_w_per_tb = 1.5   # spinning storage per TB
    cpu_w_per_tb = 0.3    # serving overhead
    heat_per_tb_day = (disk_w_per_tb + cpu_w_per_tb) * 86400 / 3.6e6
    qrad_heat_day = 500 * 86400 / 3.6e6
    rows.append(("storage", "heat kWh per TB·day",
                 f"{heat_per_tb_day:.2f} (vs {qrad_heat_day:.0f} needed/room)",
                 "n/a", "neither (no heat)"))
    data["storage"] = {"heat_per_tb_day": heat_per_tb_day}

    table = Table(["application class", "metric", "df3", "datacenter", "winner"],
                  title="E10 — application suitability (§II-A, §VI)")
    for r in rows:
        table.add_row(*r)
    return ExperimentResult(
        experiment_id="E10",
        title="Application classes on data furnace (§II-A, §VI)",
        text=table.render(),
        data=data,
    )
