"""E8 — thermosensitivity prediction for the smart grid (§III-C).

"A solution to manage the variability in heat demand is to build a predictive
computing platform, with a model to predict the heat demand and the
thermosensitivity in houses equipped with DF servers."

We collect a training season of (outdoor temperature, fleet heat demand)
observations from the building models, fit the piecewise-linear
thermosensitivity model, and score it on a held-out season — including the
capacity forecast the smart-grid manager actually consumes.
"""

from __future__ import annotations

import numpy as np

from repro.core.prediction import ThermosensitivityModel
from repro.experiments.common import ExperimentResult
from repro.metrics.report import Table
from repro.sim.calendar import DAY, HOUR, YEAR
from repro.sim.rng import RngRegistry
from repro.thermal.building import Building, RoomConfig
from repro.thermal.weather import Weather

__all__ = ["run"]


def _observations(weather: Weather, building: Building, t0: float, t1: float,
                  step: float = 6 * HOUR):
    ts = np.arange(t0, t1, step)
    temps = weather.outdoor_temperature(ts)
    demands = np.array([float(np.sum(building.heat_demand_w(float(t)))) for t in ts])
    return temps, demands


def run(seed: int = 37, n_rooms: int = 12) -> ExperimentResult:
    """Fit on year 1, evaluate on year 2 (different weather noise)."""
    rngs = RngRegistry(seed)
    weather = Weather(rngs.stream("weather"), horizon=2 * YEAR)
    building = Building([RoomConfig(name=f"r{i}") for i in range(n_rooms)], weather)

    train_t, train_d = _observations(weather, building, 0.0, YEAR)
    test_t, test_d = _observations(weather, building, YEAR, 2 * YEAR - DAY)

    model = ThermosensitivityModel()
    sens, base = model.fit(train_t, train_d)
    pred = model.predict(test_t)
    mask = test_d > 0
    mape = float(np.mean(np.abs(pred[mask] - test_d[mask]) / test_d[mask]))
    rmse = float(np.sqrt(np.mean((pred - test_d) ** 2)))
    ss_res = float(np.sum((pred - test_d) ** 2))
    ss_tot = float(np.sum((test_d - test_d.mean()) ** 2))
    r2_test = 1.0 - ss_res / ss_tot

    # capacity forecast: cores unlocked per 30 W/core Q.rad power share
    watts_per_core = 500.0 / 16
    cap_pred = model.predict_capacity_cores(test_t, watts_per_core, n_rooms * 16)
    cap_true = np.minimum(test_d / watts_per_core, n_rooms * 16)
    cap_err = float(np.mean(np.abs(cap_pred - cap_true)))

    table = Table(["quantity", "value"], title="E8 — thermosensitivity model (§III-C)")
    table.add_row("fitted sensitivity (W/°C)", round(sens, 1))
    table.add_row("fitted base temperature (°C)", round(base, 1))
    table.add_row("train R²", round(model.r2, 4))
    table.add_row("held-out R²", round(r2_test, 4))
    table.add_row("held-out demand MAPE", f"{mape:.1%}")
    table.add_row("held-out demand RMSE (W)", round(rmse, 1))
    table.add_row("capacity forecast MAE (cores)", round(cap_err, 1))
    table.add_row("fleet cores", n_rooms * 16)

    return ExperimentResult(
        experiment_id="E8",
        title="Heat-demand prediction (§III-C)",
        text=table.render(),
        data={
            "sensitivity": sens, "base_temp": base,
            "train_r2": model.r2, "test_r2": r2_test,
            "mape": mape, "capacity_mae_cores": cap_err,
        },
    )
