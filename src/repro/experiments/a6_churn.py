"""A6 (extension) — recovery policies under stochastic churn (§III-C).

The paper flags "the availability and stability of DF servers" as an open
problem: boards in homes get unplugged, lose power with their building, and
their masters and WAN uplinks flap.  A2 injects three hand-placed faults;
this experiment turns the full stochastic churn model loose on a winter day
and asks *which recovery policies buy back the lost service*.

Setup: the canonical small city under a heavy DCC load (ten 16-core,
multi-hour batch jobs — long enough that a crash-restart loop without
checkpoints rarely finishes) plus a day of building-IoT edge traffic.  Churn
draws per-server failures at three MTBF levels, building-level power cuts,
short master flaps, and WAN partitions — identical draws for every policy
bundle at a fixed seed, so comparisons are paired.

Bundles compared (:class:`repro.core.resilience.RecoveryConfig`):

* **none** — failures detected (heartbeat timeout ≈ 2.5 s) but nothing
  recovered: crashed edge work dies, cloud jobs restart from scratch;
* **retry** — crashed/rejected edge requests resubmit with exponential
  backoff + jitter while their deadline still permits;
* **clone** — indirect edge requests are speculatively duplicated to the
  peer district; first completion wins, the loser is cancelled;
* **clone-cs** — synchronized-service cloning (the PS-model discipline):
  the sibling is cancelled the instant either copy *starts* executing, and
  spawning is gated on the home district's paying load, so the speculation
  buys the same failure cover at near-zero cycle waste;
* **checkpoint** — cloud tasks checkpoint every 10 min; salvage restarts
  from the last snapshot, so capacity is not eaten by endless redo;
* **adaptive** — retry + checkpoint + cancel-on-start cloning, with the
  :class:`~repro.core.resilience.policy.PolicyController` re-picking the
  tight edge class's discipline at runtime from measured detection latency
  and rolling utilisation;
* **all** — every fixed policy at once, plus master failover and
  store-and-forward WAN buffering.

Reported per (MTBF, bundle): edge served-in-deadline rate, cloud completions,
wasted gigacycles split by attribution (losing-clone work vs crash redo) and
detection latency p50/p99.  The reduce step also computes, per MTBF level,
the **waste-vs-deadline Pareto frontier** — the bundles not dominated on
(wasted Gcycles ↓, served rate ↑) — published under ``data["pareto"]`` and
asserted by the resilience CI benchmark.
"""

from __future__ import annotations

from typing import Dict

from typing import Any, List

from repro.core.requests import CloudRequest
from repro.core.resilience import (
    ChurnConfig,
    DetectorConfig,
    RecoveryConfig,
    ResilienceConfig,
)
from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.report import Table
from repro.runner.runner import run_sweep
from repro.runner.spec import SweepPoint, SweepPrefix, SweepSpec
from repro.sim.calendar import DAY, HOUR
from repro.sim.rng import RngRegistry
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

__all__ = ["run", "BUNDLES", "MTBF_LEVELS_S", "SWEEP"]

#: building names of the canonical 2×2 small city, in middleware order —
#: a pure formula (see repro.core.middleware), so the workload plan prefix
#: can be computed without constructing a city
_BUILDINGS = tuple(f"district-{d}/building-{b}"
                   for d in range(2) for b in range(2))

#: the recovery bundles compared (order = report order)
BUNDLES = {
    "none": RecoveryConfig.none(),
    "retry": RecoveryConfig(retry=True, retry_max_attempts=6),
    "clone": RecoveryConfig(clone=True, clone_deadline_threshold_s=20.0),
    "clone-cs": RecoveryConfig(clone=True, clone_deadline_threshold_s=20.0,
                               clone_cancel_on="start",
                               clone_max_utilisation=0.95,
                               clone_max_queue_depth=8),
    "checkpoint": RecoveryConfig(checkpoint=True, checkpoint_interval_s=600.0),
    "adaptive": RecoveryConfig.adaptive_on(retry_max_attempts=6,
                                           clone_deadline_threshold_s=20.0,
                                           checkpoint_interval_s=600.0),
    "all": RecoveryConfig.all_on(retry_max_attempts=6,
                                 clone_deadline_threshold_s=20.0,
                                 checkpoint_interval_s=600.0),
}

#: per-server MTBF sweep (label → seconds); 2 h is brutal, 24 h is benign
MTBF_LEVELS_S = {"mtbf=2h": 2 * 3600.0, "mtbf=8h": 8 * 3600.0,
                 "mtbf=24h": 24 * 3600.0}


def _resilience(mtbf_s: float, recovery: RecoveryConfig) -> ResilienceConfig:
    return ResilienceConfig(
        churn=ChurnConfig(
            server_mtbf_s=mtbf_s,
            server_mttr_s=900.0,
            building_cut_rate_per_day=2.0,
            building_cut_duration_s=600.0,
            master_mtbf_s=1800.0,   # frequent but short master flaps:
            master_mttr_s=20.0,     # retries can bridge them, rejects cannot
            wan_flap_rate_per_day=4.0,
            wan_flap_duration_s=300.0,
        ),
        detector=DetectorConfig(heartbeat_interval_s=1.0, timeout_s=2.5),
        recovery=recovery,
    )


def _edge_config() -> EdgeWorkloadConfig:
    return EdgeWorkloadConfig(
        rate_per_hour=120.0, mean_megacycles=400.0,
        # deadlines loose enough that a detected crash (+2.5 s) or a
        # short master flap (+ backoff) is still recoverable
        deadline_classes=((2.0, 0.4), (5.0, 0.4), (15.0, 0.2)),
    )


def _workload_plan(seed: int):
    """A6's shared prefix: the day of edge traffic as per-building plans.

    Identical for all 21 (MTBF, bundle) cells — the grid varies resilience,
    not workload — so the DAG backend computes it once and fans it out.
    Pure data, globally inert: rng streams are name-keyed per building and
    no request objects (hence no request ids) exist until each cell
    materializes the plan locally.
    """
    t0 = mid_month_start(1)
    rngs = RngRegistry(seed)
    return tuple(
        (bname,
         EdgeWorkloadGenerator(rngs.stream(f"edge-{bname}"), source=bname,
                               config=_edge_config()).plan(t0, t0 + DAY))
        for bname in _BUILDINGS
    )


def _build_cell(seed: int, mtbf_s: float, recovery: RecoveryConfig,
                plan=None):
    """Build one (MTBF level, bundle) cell: city + injected workloads.

    Split from :func:`_run_cell` so step-wise drivers (the service layer's
    determinism tests) can advance the identical simulation in slices.
    ``plan`` optionally injects the precomputed :func:`_workload_plan`
    (the DAG backend's shared prefix); when ``None`` the identical plan is
    computed inline.  Returns ``(mw, t0, edge, cloud)``; the cell's horizon
    is ``t0 + DAY + 2 * HOUR``.
    """
    t0 = mid_month_start(1)
    mw = small_city(seed=seed, start_time=t0,
                    saturation_policy=SaturationPolicy.QUEUE,
                    resilience=_resilience(mtbf_s, recovery))

    if plan is None:
        plan = _workload_plan(seed)
    rngs = RngRegistry(seed)
    edge = []
    for bname, building_plan in plan:
        gen = EdgeWorkloadGenerator(rngs.stream(f"edge-{bname}"),
                                    source=bname, config=_edge_config())
        edge.extend(gen.materialize(building_plan))
    mw.inject(edge)

    # ten 16-core ~2.5 h batch jobs: each monopolises one Q.rad, and at the
    # harshest MTBF a from-scratch restart loop rarely lets one finish
    cloud = [CloudRequest(cycles=5e14, time=t0 + 0.5 * HOUR + i * 600.0,
                          cores=16, preemptible=False) for i in range(10)]
    mw.inject(cloud)
    return mw, t0, edge, cloud


def _finish_cell(mw, edge, cloud) -> Dict[str, float]:
    """Reduce a fully-run cell to its metrics row."""
    served = sum(1 for r in edge
                 if r.status.value == "completed" and r.deadline_met())
    log = mw.resilience.log
    return {
        "served_rate": served / len(edge),
        "edge_submitted": len(edge),
        "cloud_done": sum(1 for r in cloud if r.status.value == "completed"),
        "wasted_gcycles": log.wasted_cycles / 1e9,
        "clone_waste_gcycles": log.clone_waste_cycles / 1e9,
        "failure_waste_gcycles": log.failure_waste_cycles / 1e9,
        "detect_p50_s": log.detection_latency_percentile(50),
        "detect_p99_s": log.detection_latency_percentile(99),
        "server_failures": log.server_failures,
        "clones": log.clones_spawned,
        "clone_skips": log.policy_decisions.get("skip_clone", 0),
        "policy_switches": (mw.resilience.policy.switches
                            if mw.resilience.policy is not None else 0),
        "failovers": log.failovers,
        "salvaged": log.tasks_salvaged,
        "checkpoints": log.checkpoints_taken,
    }


def _run_cell(seed: int, mtbf_s: float, recovery: RecoveryConfig,
              plan=None) -> Dict[str, float]:
    """One (MTBF level, bundle) city-day; returns its metrics row."""
    mw, t0, edge, cloud = _build_cell(seed, mtbf_s, recovery, plan=plan)
    mw.run_until(t0 + DAY + 2 * HOUR)
    return _finish_cell(mw, edge, cloud)


def sweep_points(seed: int = 101) -> List[SweepPoint]:
    """One point per (MTBF level, recovery bundle) cell of the grid."""
    return [
        SweepPoint(
            experiment_id="A6",
            point_id=f"{mtbf_label}/{policy}",
            cell="repro.experiments.a6_churn:_run_cell",
            params=(("seed", seed), ("mtbf_s", mtbf_s), ("recovery", recovery)),
            needs=(("plan", "workload-plan"),),
        )
        for mtbf_label, mtbf_s in MTBF_LEVELS_S.items()
        for policy, recovery in BUNDLES.items()
    ]


def sweep_prefixes(seed: int = 101) -> List[SweepPrefix]:
    """The shared workload plan every grid cell consumes."""
    return [SweepPrefix(
        experiment_id="A6",
        prefix_id="workload-plan",
        cell="repro.experiments.a6_churn:_workload_plan",
        params=(("seed", seed),),
    )]


def _pareto_front(level: Dict[str, Dict[str, float]]) -> List[str]:
    """Bundles not dominated on (wasted_gcycles ↓, served_rate ↑).

    ``p`` is dominated when some other bundle wastes no more *and* serves no
    less, with at least one strict inequality.  Returned in report order.
    """
    names = list(level)
    front = []
    for p in names:
        w, s = level[p]["wasted_gcycles"], level[p]["served_rate"]
        dominated = any(
            level[q]["wasted_gcycles"] <= w and level[q]["served_rate"] >= s
            and (level[q]["wasted_gcycles"] < w or level[q]["served_rate"] > s)
            for q in names if q != p)
        if not dominated:
            front.append(p)
    return front


def sweep_reduce(cells: Dict[str, Any], seed: int = 101) -> ExperimentResult:
    """Reassemble the grid cells into the A6 table + Pareto footer."""
    table = Table(["mtbf", "policy", "edge_served", "cloud_done",
                   "clone_waste", "fail_waste", "detect_p50", "detect_p99"],
                  title="A6 — recovery policies under churn")
    data: Dict[str, Any] = {}
    for mtbf_label in MTBF_LEVELS_S:
        data[mtbf_label] = {}
        for policy in BUNDLES:
            cell = cells[f"{mtbf_label}/{policy}"]
            data[mtbf_label][policy] = cell
            table.add_row(
                mtbf_label, policy, f"{cell['served_rate']:.2%}",
                cell["cloud_done"], f"{cell['clone_waste_gcycles']:.0f}",
                f"{cell['failure_waste_gcycles']:.0f}",
                f"{cell['detect_p50_s']:.2f}s", f"{cell['detect_p99_s']:.2f}s",
            )
    # the frontier rides beside the level keys; consumers iterating levels
    # must skip it (it maps level → [policy], not level → cells)
    data["pareto"] = {label: _pareto_front(data[label])
                      for label in MTBF_LEVELS_S}

    worst = data["mtbf=2h"]
    benign = data["mtbf=24h"]
    redo_cut = (worst["none"]["wasted_gcycles"]
                / max(worst["checkpoint"]["wasted_gcycles"], 1.0))
    footer = (
        f"\nat mtbf=2h: {worst['none']['server_failures']} server failures/day;"
        f" checkpointing cuts wasted work {redo_cut:.0f}×"
        f" and finishes {worst['checkpoint']['cloud_done']}/10 batch jobs"
        f" (vs {worst['none']['cloud_done']}/10 with full restarts);"
        f"\ncloning lifts edge service {worst['none']['served_rate']:.1%}"
        f" → {worst['clone']['served_rate']:.1%} by racing the peer district"
        f" ({worst['clone']['clones']} clones)"
        f"\nPareto frontier at mtbf=24h: {', '.join(data['pareto']['mtbf=24h'])};"
        f" adaptive serves {benign['adaptive']['served_rate']:.2%} wasting"
        f" {benign['adaptive']['wasted_gcycles']:.0f} Gcycles"
        f" (first-completion cloning: {benign['clone']['served_rate']:.2%}"
        f" at {benign['clone']['wasted_gcycles']:.0f})"
    )
    return ExperimentResult(
        experiment_id="A6",
        title="Recovery policies under stochastic churn (§III-C)",
        text=table.render() + footer,
        data=data,
    )


SWEEP = SweepSpec("A6", points=sweep_points, reduce=sweep_reduce,
                  prefixes=sweep_prefixes)


def run(seed: int = 101) -> ExperimentResult:
    """Sweep recovery bundles × MTBF levels over identical churn draws."""
    return run_sweep(SWEEP, seed=seed)
