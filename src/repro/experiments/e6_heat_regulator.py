"""E6 — the DVFS heat regulator: does energy track heat demand? (§III-B)

"The heat regulator implements a DVFS based technique ... to guarantee that
the energy consumed corresponds to the heat demand."  Three controllers drive
the same room + Q.rad + compute-load plant through a cold week with a step
setpoint change:

* **regulated** — the PI + DVFS regulator (the paper's proposal);
* **bang-bang** — on/off at full frequency (no DVFS);
* **uncontrolled** — compute load dictates heat (the failure mode the
  regulator exists to prevent: full-speed filler whenever work exists).

Reported: temperature RMSE and overshoot, plus a PI-gain ablation.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.regulation import HeatRegulator, RegulatorConfig
from repro.experiments.common import ExperimentResult
from repro.hardware.qrad import QRAD_SPEC
from repro.metrics.report import Table
from repro.sim.calendar import DAY, HOUR
from repro.thermal.comfort import ComfortTracker
from repro.thermal.rc_model import RCNetwork, RoomThermalParams

__all__ = ["run"]


def _simulate(controller: str, cfg: RegulatorConfig, days: float = 3.0,
              t_out: float = 2.0, tick: float = 300.0) -> Dict[str, float]:
    """One room, one 500 W Q.rad envelope, a step setpoint at mid-run."""
    net = RCNetwork([RoomThermalParams()], t_init_c=17.0)
    reg = HeatRegulator(cfg)
    reg.set_target(19.0)
    tracker = ComfortTracker(band_c=0.5)
    ladder = QRAD_SPEC.ladder
    p_max, p_idle = QRAD_SPEC.p_max_w, QRAD_SPEC.p_idle_w
    heater_on = False
    n = int(days * DAY / tick)
    powers = np.empty(n)
    for i in range(n):
        t = i * tick
        if t >= days * DAY / 2:
            reg.set_target(21.0)  # the step change
        temp = float(net.t_air[0])
        if controller == "regulated":
            u = reg.update(tick, temp)
            idx = ladder.index_for_power_budget(max(u, 0.0))
            p = 0.0 if not reg.heat_wanted else (
                p_idle + (p_max - p_idle) * ladder.power_scale(idx)
            )
        elif controller == "bang-bang":
            reg.update(tick, temp)  # track setpoint state only
            if temp < reg.setpoint_c - 0.5:
                heater_on = True
            elif temp > reg.setpoint_c + 0.5:
                heater_on = False
            p = p_max if heater_on else 0.0
        elif controller == "uncontrolled":
            reg.update(tick, temp)
            p = p_max  # compute demand runs the boards flat out, always
        else:
            raise ValueError(f"unknown controller {controller!r}")
        powers[i] = p
        net.step(tick, t_out=t_out, p_heat=p)
        tracker.add(tick, net.t_air, reg.setpoint_c)
    stats = tracker.result()
    return {
        "rmse_c": stats.rmse_c,
        "overheat_dh": stats.overheat_degree_hours,
        "in_band": stats.time_in_band,
        "energy_kwh": float(np.sum(powers) * tick / 3.6e6),
    }


def run() -> ExperimentResult:
    """Controller comparison + PI-gain ablation."""
    default = RegulatorConfig()
    rows: Dict[str, Dict[str, float]] = {
        "regulated (PI+DVFS)": _simulate("regulated", default),
        "bang-bang (no DVFS)": _simulate("bang-bang", default),
        "uncontrolled (load-driven)": _simulate("uncontrolled", default),
    }
    table = Table(["controller", "rmse_c", "overheat_deg_h", "in_band", "energy_kwh"],
                  title="E6 — heat regulation over a cold 3-day window with a setpoint step")
    for name, r in rows.items():
        table.add_row(name, round(r["rmse_c"], 2), round(r["overheat_dh"], 1),
                      f"{r['in_band']:.0%}", round(r["energy_kwh"], 1))

    # PI-gain ablation (the DESIGN.md-called ablation)
    ablation = Table(["kp", "ki", "rmse_c", "in_band"],
                     title="E6b — PI gain ablation")
    abl: Dict[Tuple[float, float], float] = {}
    for kp in (0.2, 0.5, 1.0):
        for ki in (0.1, 0.4):
            r = _simulate("regulated", RegulatorConfig(kp=kp, ki=ki))
            abl[(kp, ki)] = r["rmse_c"]
            ablation.add_row(kp, ki, round(r["rmse_c"], 2), f"{r['in_band']:.0%}")

    return ExperimentResult(
        experiment_id="E6",
        title="DVFS heat regulator (§III-B)",
        text=table.render() + "\n\n" + ablation.render(),
        data={"controllers": rows, "ablation_rmse": {f"{k}": v for k, v in abl.items()}},
    )
