"""A1 (ablation) — cluster formation: per-building vs WSN-style (§III-B).

"To decide on the components of clusters, we can either use clustering
techniques developed in wireless sensor networks or define clusters as the set
of DF servers of a physical building or district."

The trade-off, quantified on a synthetic street of servers whose geographic
groups do not align with administrative buildings:

* **balance** — WSN clustering equalises cluster sizes (capacity per master),
  administrative clustering inherits whatever the buildings hold;
* **locality** — mean distance from a server to its cluster's centroid, a
  proxy for intra-cluster link latency.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.cluster import Cluster, ClusterConfig
from repro.experiments.common import ExperimentResult
from repro.hardware.qrad import QRad
from repro.metrics.report import Table
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

__all__ = ["run"]


def _layout(rng) -> Tuple[List, List[Tuple[float, float]], List[int]]:
    """A street of 3 'buildings' whose servers straggle geographically.

    Buildings own 8/3/1 servers (uneven, as real buildings are), and the
    positions form three spatial blobs that do not match building boundaries.
    """
    engine = Engine()
    servers, positions, building_of = [], [], []
    blob_centers = [(0.0, 0.0), (60.0, 0.0), (120.0, 0.0)]
    building_sizes = [8, 3, 1]
    i = 0
    for b, size in enumerate(building_sizes):
        for _ in range(size):
            blob = int(rng.integers(0, 3))
            cx, cy = blob_centers[blob]
            positions.append((cx + float(rng.normal(0, 6)), cy + float(rng.normal(0, 6))))
            servers.append(QRad(f"b{b}-s{i}", engine))
            building_of.append(b)
            i += 1
    return servers, positions, building_of


def _stats(clusters: List[Cluster], positions_of: Dict[str, Tuple[float, float]]):
    sizes = [len(c) for c in clusters]
    dists = []
    for c in clusters:
        pts = np.array([positions_of[w.name] for w in c.workers])
        centroid = pts.mean(axis=0)
        dists.extend(np.linalg.norm(pts - centroid, axis=1))
    return {
        "n_clusters": len(clusters),
        "size_imbalance": max(sizes) / max(min(sizes), 1),
        "mean_dist_m": float(np.mean(dists)),
    }


def run(seed: int = 59) -> ExperimentResult:
    """Compare the two §III-B cluster-formation rules on one street."""
    rng = RngRegistry(seed).stream("a1")
    servers, positions, building_of = _layout(rng)
    positions_of = {s.name: p for s, p in zip(servers, positions)}

    # administrative: cluster = servers of one building
    admin: Dict[int, Cluster] = {}
    for s, b in zip(servers, building_of):
        admin.setdefault(b, Cluster(ClusterConfig(name=f"building-{b}", district=b)))
        admin[b].add_worker(s)
    admin_stats = _stats(list(admin.values()), positions_of)

    # WSN-style: geographic k-means-like partition (same k)
    wsn = Cluster.partition_wsn(servers, positions, k=len(admin))
    wsn_stats = _stats(wsn, positions_of)

    table = Table(["formation rule", "clusters", "size_imbalance", "mean_dist_to_master_m"],
                  title="A1 — cluster formation: administrative vs WSN (§III-B)")
    table.add_row("per-building", admin_stats["n_clusters"],
                  round(admin_stats["size_imbalance"], 1),
                  round(admin_stats["mean_dist_m"], 1))
    table.add_row("wsn clustering", wsn_stats["n_clusters"],
                  round(wsn_stats["size_imbalance"], 1),
                  round(wsn_stats["mean_dist_m"], 1))
    return ExperimentResult(
        experiment_id="A1",
        title="Cluster-formation ablation (§III-B)",
        text=table.render(),
        data={"admin": admin_stats, "wsn": wsn_stats},
    )
