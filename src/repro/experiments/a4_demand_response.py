"""A4 (extension) — smart-grid negotiation: a demand-response event (§III-A).

"The manager must also negotiate with external systems (e.g. energy
operators ...) to calibrate its energy consumption and service delivery to the
demand."  We hit a January evening with a two-hour grid cap at 40% of the
fleet's authorised power and watch the smart-grid manager curtail DVFS
budgets, the capacity dip, and the rooms coast on thermal inertia — then
recover.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.collectors import TimeSeries
from repro.metrics.report import Table
from repro.runner.runner import run_sweep
from repro.runner.spec import SweepPoint, SweepPrefix, SweepSpec
from repro.sim.calendar import DAY, HOUR

__all__ = ["run", "SWEEP"]

#: report windows around the 17:00–19:00 cap, in display order
_WINDOWS_H = (
    ("before (14–17h)", 14, 17),
    ("capped (17–19h)", 17, 19),
    ("after (19–22h)", 19, 22),
)


def _city_blueprint(seed: int):
    """A4's shared prefix: the resolved city-construction kwargs.

    Pure data (and globally inert — no request ids, no rng), so the DAG
    backend caches it per node and hands it to the sim cell; the flat
    backend recomputes it inline, byte-identically.
    """
    return (("seed", seed), ("start_time", mid_month_start(1)))


def _dr_cell(seed: int, blueprint=None) -> Dict[str, float]:
    """Simulate the capped day; returns the window means + comfort summary."""
    if blueprint is None:
        blueprint = _city_blueprint(seed)
    t0 = mid_month_start(1)
    mw = small_city(**dict(blueprint))
    cap_holder = {"w": 0.0}

    def apply_cap() -> None:
        # operator asks for half of whatever the fleet is authorised right now
        cap_holder["w"] = 0.5 * mw.smartgrid.authorized_power_w()
        mw.smartgrid.set_grid_cap(cap_holder["w"])

    mw.engine.schedule_at(t0 + 17 * HOUR, apply_cap)
    mw.engine.schedule_at(t0 + 19 * HOUR, lambda: mw.smartgrid.set_grid_cap(None))

    power = TimeSeries("fleet-power")
    cores = TimeSeries("available-cores")

    def sample(now: float, dt: float) -> None:
        power.add(now, sum(s.power_w() for s in mw.all_servers))
        cores.add(now, mw.smartgrid.available_cores())

    mw.engine.add_process("a4-sample", 600.0, sample)
    mw.run_until(t0 + DAY)

    cell: Dict[str, float] = {
        name: power.window(t0 + a * HOUR, t0 + b * HOUR).mean()
        for name, a, b in _WINDOWS_H
    }
    comfort = mw.comfort.result()
    cell["cap_w"] = cap_holder["w"]
    cell["comfort_in_band"] = comfort.time_in_band
    cell["curtailment_events"] = mw.smartgrid.curtailment_events
    return cell


def sweep_points(seed: int = 71) -> List[SweepPoint]:
    """A single point: the whole capped day is one indivisible simulation."""
    return [SweepPoint(
        experiment_id="A4", point_id="capped-day",
        cell="repro.experiments.a4_demand_response:_dr_cell",
        params=(("seed", seed),),
        needs=(("blueprint", "city-blueprint"),),
    )]


def sweep_prefixes(seed: int = 71) -> List[SweepPrefix]:
    """The city blueprint the capped-day cell builds from."""
    return [SweepPrefix(
        experiment_id="A4", prefix_id="city-blueprint",
        cell="repro.experiments.a4_demand_response:_city_blueprint",
        params=(("seed", seed),),
    )]


def sweep_reduce(cells: Dict[str, Any], seed: int = 71) -> ExperimentResult:
    """Render the window means + comfort footer."""
    cell = cells["capped-day"]
    table = Table(["window", "mean_fleet_power_w", "grid_cap_w"],
                  title="A4 — demand-response event on the DF3 fleet (§III-A)")
    data: Dict[str, float] = {}
    for name, _, _ in _WINDOWS_H:
        data[name] = cell[name]
        table.add_row(name, round(cell[name]),
                      round(cell["cap_w"]) if "capped" in name else "-")

    data["comfort_in_band"] = cell["comfort_in_band"]
    data["curtailment_events"] = cell["curtailment_events"]
    footer = (
        f"\ncurtailment events: {cell['curtailment_events']}; "
        f"comfort across the day: in-band {cell['comfort_in_band']:.0%} "
        f"(rooms coast on thermal inertia through the cap)"
    )
    return ExperimentResult(
        experiment_id="A4",
        title="Demand response via the smart-grid manager (§III-A)",
        text=table.render() + footer,
        data=data,
    )


SWEEP = SweepSpec("A4", points=sweep_points, reduce=sweep_reduce,
                  prefixes=sweep_prefixes)


def run(seed: int = 71) -> ExperimentResult:
    """One cold day with a 17:00–19:00 grid cap at 40% of fleet power."""
    return run_sweep(SWEEP, seed=seed)
