"""A3 (extension) — the crypto-heater: mining as district heat (§II-B1, §IV).

The Qarnot QC-1 heats a room with two mining GPUs.  We run one through a cold
three-day window under its heat regulator, with a
:class:`~repro.workloads.mining.MiningController` keeping the GPUs busy
whenever heat is wanted, and compare comfort + operator economics against a
plain (non-revenue) electric heater in the same room.
"""

from __future__ import annotations

from repro.core.regulation import HeatRegulator, RegulatorConfig
from repro.experiments.common import ExperimentResult, mid_month_start
from repro.hardware.qrad import CryptoHeater
from repro.metrics.report import Table
from repro.sim.calendar import DAY
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.thermal.comfort import ComfortTracker
from repro.thermal.rc_model import RCNetwork, RoomThermalParams
from repro.thermal.weather import Weather
from repro.workloads.mining import MiningController, MiningEconomics

__all__ = ["run"]


def run(days: float = 3.0, seed: int = 67) -> ExperimentResult:
    """A QC-1 heats a January room by mining; economics vs a plain heater."""
    t0 = mid_month_start(1)
    engine = Engine(start=t0)
    weather = Weather(RngRegistry(seed).stream("weather"))
    room = RCNetwork([RoomThermalParams()], t_init_c=17.0)
    heater = CryptoHeater("qc1", engine)
    reg = HeatRegulator(RegulatorConfig())
    reg.set_target(20.0)
    miner = MiningController(heater, MiningEconomics(), chunk_s=600.0)
    comfort = ComfortTracker(band_c=1.0)

    def tick(now: float, dt: float) -> None:
        temp = float(room.t_air[0])
        reg.update(dt, temp)
        reg.apply_to_server(heater)
        miner.tick(reg.heat_wanted)
        heater.sync()
        room.step(dt, t_out=weather.outdoor_temperature(now),
                  p_heat=heater.heat_output_w())
        comfort.add(dt, room.t_air, reg.setpoint_c)

    engine.add_process("crypto-room", 300.0, tick)
    engine.run_until(t0 + days * DAY)

    stats = comfort.result()
    revenue = miner.revenue_eur()
    cost = miner.electricity_cost_eur()
    plain_cost = cost  # a resistive heater draws the same energy for the same heat

    table = Table(["quantity", "crypto-heater", "plain electric heater"],
                  title=f"A3 — QC-1 mining as space heating ({days:.0f} cold days)")
    table.add_row("comfort in band", f"{stats.time_in_band:.0%}", f"{stats.time_in_band:.0%}")
    table.add_row("room RMSE (°C)", round(stats.rmse_c, 2), round(stats.rmse_c, 2))
    table.add_row("electricity cost (€)", round(cost, 2), round(plain_cost, 2))
    table.add_row("mining revenue (€)", round(revenue, 2), 0.0)
    table.add_row("net heating cost (€)", round(cost - revenue, 2), round(plain_cost, 2))

    return ExperimentResult(
        experiment_id="A3",
        title="Crypto-heater economics (§II-B1, §IV)",
        text=table.render(),
        data={
            "comfort_in_band": stats.time_in_band,
            "rmse_c": stats.rmse_c,
            "revenue_eur": revenue,
            "electricity_eur": cost,
            "net_cost_eur": cost - revenue,
            "hashes": miner.hashes,
        },
    )
