"""E11 — fleet availability, stability and the electricity incentive (§III-C).

"The availability and stability of DF servers could also be a problem.  In
particular the computing power of DF servers depends on the heat demand ...
economic incentives could play a role.  For instance, in the Qarnot computing
model, the hosts of DF servers do not pay electricity.  Consequently, during
the winter, these hosts generally keep the same target temperature."

Two host populations drive the same fleet through winter/shoulder months:
INCENTIVIZED (free electricity → steady setpoints) and COST_CONSCIOUS (paid
heat → deep setbacks).  Reported: mean available cores, capacity volatility
(coefficient of variation sampled hourly), and the operator's subsidy bill.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.pricing import PricingModel, SeasonalPricing
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.report import Table
from repro.sim.calendar import DAY, HOUR, month_name
from repro.workloads.heating import HeatingBehavior, HeatingRequestGenerator

__all__ = ["run"]


def _run_behavior(behavior: HeatingBehavior, month: int, days: float, seed: int):
    mw = small_city(seed=seed, start_time=mid_month_start(month))
    t0 = mw.engine.now
    for bname, building in mw.buildings.items():
        gen = HeatingRequestGenerator(
            mw.rngs.stream(f"heat-{bname}"),
            rooms=[r.name for r in building.rooms], behavior=behavior,
        )
        mw.inject(gen.generate(t0, t0 + days * DAY))
    samples = []
    t = t0
    while t < t0 + days * DAY:
        mw.run_until(t + HOUR)
        t = mw.engine.now
        samples.append(mw.smartgrid.available_cores())
    arr = np.asarray(samples, dtype=float)
    heating_kwh = mw.fleet_energy_j() / 3.6e6
    return {
        "mean_cores": float(arr.mean()),
        "cv": float(arr.std() / arr.mean()) if arr.mean() > 0 else float("inf"),
        "heating_kwh": heating_kwh,
    }


def run(days: float = 2.0, seed: int = 47) -> ExperimentResult:
    """Both behaviours across January, March and May."""
    months = (1, 3, 5)
    results: Dict[str, Dict[str, float]] = {}
    pricing = SeasonalPricing({m: 1.0 for m in range(1, 13)}, PricingModel())
    table = Table(
        ["month", "behaviour", "mean_available_cores", "capacity_cv", "subsidy_eur"],
        title="E11 — availability and the free-electricity incentive (§III-C)",
    )
    for month in months:
        for behavior in (HeatingBehavior.INCENTIVIZED, HeatingBehavior.COST_CONSCIOUS):
            r = _run_behavior(behavior, month, days, seed)
            subsidy = pricing.host_subsidy_eur(r["heating_kwh"]) / 12  # per host
            key = f"{month_name(month)}/{behavior.value}"
            results[key] = {**r, "subsidy_eur": subsidy}
            table.add_row(month_name(month), behavior.value,
                          round(r["mean_cores"], 1), round(r["cv"], 3),
                          round(subsidy, 2))
    return ExperimentResult(
        experiment_id="E11",
        title="Fleet availability vs host behaviour (§III-C)",
        text=table.render(),
        data=results,
    )
