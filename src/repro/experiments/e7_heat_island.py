"""E7 — urban heat island: who rejects heat outdoors in summer? (§III-A/C)

Four substrates execute the same July compute load; the ledger books every
joule rejected outdoors:

* **df3 on-demand** — the paper's proposal: no heat requested → boards off,
  work migrates to the datacenter... but here we measure the *city side*:
  near-zero outdoor heat;
* **e-radiator summer mode** — the Nerdalize dual pipe "expelled outside"
  behaviour the paper explicitly flags as air-conditioner-like;
* **always-on boiler** — §III-C: "With a boiler that always generates heat,
  the intensity of the waste heat rejected will be more important" (July tank
  draw is small, so most compute heat overflows);
* **air-cooled datacenter** — IT + compressor heat, all outdoors.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.hardware.boiler import STIMERGY_SMALL, DigitalBoiler
from repro.hardware.datacenter import Datacenter
from repro.hardware.qrad import ERadiator, HeatDumpMode
from repro.hardware.server import Task
from repro.metrics.report import Table
from repro.sim.calendar import DAY, HOUR
from repro.sim.engine import Engine
from repro.thermal.heat_island import HeatIslandLedger, OutdoorHeatSource
from repro.thermal.hydronics import DrawProfile, WaterLoop, WaterLoopConfig

__all__ = ["run"]

_GHZ = 1e9


def _fill(server, cycles_per_core: float) -> None:
    for c in range(server.n_cores):
        server.submit(Task(f"{server.name}-j{c}", cycles_per_core, cores=1))


def run(duration_days: float = 1.0, seed: int = 31) -> ExperimentResult:
    """Same July day of compute on four substrates; outdoor-heat table."""
    t0 = mid_month_start(7)
    duration = duration_days * DAY
    results: Dict[str, Dict[str, float]] = {}
    work_per_core = 3.5 * _GHZ * duration * 0.8  # ~80% busy all day

    # --- df3 on-demand: July rooms reject heat; boards stay off ---------- #
    mw = small_city(seed=seed, start_time=t0, dc_nodes=0, enable_filler=True)
    mw.run_until(t0 + duration)
    results["df3 on-demand"] = {
        "outdoor_kwh": mw.ledger.total_outdoor_j / 3.6e6,
        "cycles": mw.total_cycles_executed(),
    }

    # --- e-radiator summer dump ----------------------------------------- #
    eng = Engine(start=t0)
    ledger = HeatIslandLedger()
    rads = [ERadiator(f"erad-{i}", eng) for i in range(6)]
    for r in rads:
        r.set_dump_mode(HeatDumpMode.OUTDOOR)
        _fill(r, work_per_core)

    def erad_tick(now: float, dt: float) -> None:
        for r in rads:
            r.sync()
            ledger.add_outdoor(OutdoorHeatSource.ERADIATOR_SUMMER, r.outdoor_heat_w() * dt)

    eng.add_process("erad", 600.0, erad_tick)
    eng.run_until(t0 + duration)
    for r in rads:
        r.sync()
    results["e-radiator (summer dump)"] = {
        "outdoor_kwh": ledger.total_outdoor_j / 3.6e6,
        "cycles": sum(r.cycles_executed for r in rads),
    }

    # --- always-on boiler ------------------------------------------------ #
    eng = Engine(start=t0)
    ledger = HeatIslandLedger()
    loop = WaterLoop(WaterLoopConfig(), t_init_c=55.0)
    boiler = DigitalBoiler("b0", eng, loop, spec=STIMERGY_SMALL,
                           draw_profile=DrawProfile(daily_litres=300.0),  # summer draw
                           ledger=ledger)
    _fill(boiler, work_per_core)
    eng.add_process(
        "boiler", 600.0,
        lambda now, dt: boiler.thermal_step(now, dt, (now / HOUR) % 24.0),
    )
    eng.run_until(t0 + duration)
    boiler.sync()
    results["always-on boiler"] = {
        "outdoor_kwh": ledger.total_outdoor_j / 3.6e6,
        "cycles": boiler.cycles_executed,
    }

    # --- air-cooled datacenter ------------------------------------------ #
    eng = Engine(start=t0)
    ledger = HeatIslandLedger()
    dc = Datacenter("dc", 3, eng, ledger=ledger)
    for node in dc.nodes:
        _fill(node, 3.2 * _GHZ * duration * 0.8)
    eng.add_process("dc", 600.0, lambda now, dt: dc.account_heat(dt))
    eng.run_until(t0 + duration)
    results["air-cooled dc"] = {
        "outdoor_kwh": ledger.total_outdoor_j / 3.6e6,
        "cycles": sum(n.cycles_executed for n in dc.nodes),
    }

    table = Table(["substrate", "outdoor_heat_kwh", "kwh_outdoor_per_Pcycle"],
                  title="E7 — outdoor heat rejection on a July day (§III-A/C)")
    for name, r in results.items():
        per = (r["outdoor_kwh"] / (r["cycles"] / 1e15)) if r["cycles"] > 0 else 0.0
        table.add_row(name, round(r["outdoor_kwh"], 2), round(per, 2))

    return ExperimentResult(
        experiment_id="E7",
        title="Urban heat island: waste-heat rejection (§III-A/C)",
        text=table.render(),
        data={k: v["outdoor_kwh"] for k, v in results.items()},
    )
