"""F3 — the three flows co-serviced on one fleet (paper Fig. 3).

Figure 3 is the DF3 model itself: heating requests, Internet (DCC) requests
and local edge requests all landing on the same DF servers.  The experiment
runs a mixed winter day with all three generators live and reports, per flow,
the volume serviced, the latency achieved and the heat delivered — the
existence proof that one middleware can serve all three masters at once.
"""

from __future__ import annotations

from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.latency import LatencyStats
from repro.metrics.report import Table
from repro.sim.calendar import DAY
from repro.sim.rng import RngRegistry
from repro.workloads.cloud import CloudJobConfig, CloudJobGenerator
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator
from repro.workloads.heating import HeatingBehavior, HeatingRequestGenerator

__all__ = ["build", "finish", "run"]


def build(duration_days: float = 1.0, seed: int = 17, obs=None):
    """Build the F3 city with all three flows injected, ready to run.

    Split out of :func:`run` so step-wise drivers (the service layer, the
    determinism tests) can advance the very same simulation in slices.  The
    construction order here is load-bearing: RNG streams are created and
    consumed in exactly the sequence the golden fixtures were recorded with.

    Returns ``(mw, t0, t1, workloads)`` where ``workloads`` maps flow name to
    the injected request list.
    """
    t0 = mid_month_start(1)
    t1 = t0 + duration_days * DAY
    mw = small_city(seed=seed, start_time=t0,
                    saturation_policy=SaturationPolicy.PREEMPT, obs=obs)
    rngs = RngRegistry(seed)

    heating = []
    for bname, building in mw.buildings.items():
        gen = HeatingRequestGenerator(
            rngs.stream(f"heat-{bname}"), rooms=[r.name for r in building.rooms],
            behavior=HeatingBehavior.INCENTIVIZED,
        )
        heating.extend(gen.generate(t0, t1))
    edge = []
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(rngs.stream(f"edge-{bname}"), source=bname,
                                    config=EdgeWorkloadConfig(rate_per_hour=60.0))
        edge.extend(gen.generate(t0, t1))
    cloud = CloudJobGenerator(
        rngs.stream("cloud"), CloudJobConfig(rate_per_hour=15.0)
    ).generate(t0, t1)

    mw.inject(heating)
    mw.inject(edge)
    mw.inject(cloud)
    return mw, t0, t1, {"heating": heating, "edge": edge, "cloud": cloud}


def finish(mw, workloads) -> ExperimentResult:
    """Reduce a fully-run F3 simulation to its :class:`ExperimentResult`."""
    heating = workloads["heating"]
    edge = workloads["edge"]
    cloud = workloads["cloud"]
    edge_stats = LatencyStats.from_requests(mw.completed_edge(), mw.expired_edge())
    cloud_stats = LatencyStats.from_requests(mw.completed_cloud())
    comfort = mw.comfort.result()
    heat_kwh = mw.ledger.useful_heat_j / 3.6e6

    table = Table(["flow", "submitted", "serviced", "median_latency_s", "quality"],
                  title="F3 — one fleet, three flows (winter day)")
    table.add_row("heating", len(heating), len(heating),
                  "-", f"in-band {comfort.time_in_band:.0%}, {heat_kwh:.1f} kWh heat")
    table.add_row("edge", len(edge), len(mw.completed_edge()),
                  round(edge_stats.median_s, 3),
                  f"deadline miss {edge_stats.deadline_miss_rate:.1%}")
    table.add_row("cloud", len(cloud), len(mw.completed_cloud()),
                  round(cloud_stats.median_s, 1), "batch (no deadline)")

    return ExperimentResult(
        experiment_id="F3",
        title="Three flows on one platform (paper Fig. 3)",
        text=table.render(),
        data={
            "edge_miss_rate": edge_stats.deadline_miss_rate,
            "edge_completed": len(mw.completed_edge()),
            "cloud_completed": len(mw.completed_cloud()),
            "heating_requests": len(heating),
            "comfort_in_band": comfort.time_in_band,
            "useful_heat_kwh": heat_kwh,
            "edge_submitted": len(edge),
            "cloud_submitted": len(cloud),
        },
    )


def run(duration_days: float = 1.0, seed: int = 17) -> ExperimentResult:
    """One winter day, all three flows live on the same fleet."""
    mw, t0, t1, workloads = build(duration_days, seed)
    mw.run_until(t1 + 0.2 * DAY)
    return finish(mw, workloads)
