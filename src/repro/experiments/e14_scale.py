"""E14 (extension) — "But at what scale?" (§III-C).

"There is no doubt that with DF servers, we can build systems with near
real-time response time.  But at what scale ...?  This is more tricky."

A weak-scaling sweep: the city grows (1 → 4 districts, fleet 6 → 24 Q.rads)
with edge load proportional to the building count.  If the DF3 architecture
scales, per-request QoS is flat: clusters are independent, masters are
per-district, and no central component sees more than its own district.

The rendered table is a pure function of the seed (``sim_events`` is the
deterministic engine event count); the wall-clock throughput of each point
(``events_per_s``, ``wall_s``) stays in ``data`` only, because it varies
with the host and would break the golden/cache byte-identity contract.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.latency import LatencyStats
from repro.metrics.report import Table
from repro.runner.runner import run_sweep
from repro.runner.spec import SweepPoint, SweepPrefix, SweepSpec
from repro.sim.calendar import DAY
from repro.sim.rng import RngRegistry
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

__all__ = ["run", "SWEEP"]

#: the weak-scaling axis: number of districts per point
DISTRICT_STEPS = (1, 2, 4)


def _workload_plan(seed: int, sim_days: float):
    """E14's shared prefix: edge plans for the *largest* city's buildings.

    Rng streams are name-keyed per building, so the plan of
    ``district-0/building-1`` is identical no matter how many districts the
    consuming point simulates — smaller points just materialize the subset
    of buildings they actually have.
    """
    t0 = mid_month_start(1)
    rngs = RngRegistry(seed)
    names = [f"district-{d}/building-{b}"
             for d in range(max(DISTRICT_STEPS)) for b in range(2)]
    return tuple(
        (bname,
         EdgeWorkloadGenerator(rngs.stream(f"edge-{bname}"), source=bname,
                               config=EdgeWorkloadConfig(rate_per_hour=60.0)
                               ).plan(t0, t0 + sim_days * DAY))
        for bname in names
    )


def _scale_point(n_districts: int, seed: int, sim_days: float,
                 plan=None) -> Dict[str, float]:
    t0 = mid_month_start(1)
    mw = small_city(seed=seed, start_time=t0, n_districts=n_districts,
                    buildings_per_district=2, rooms_per_building=3,
                    saturation_policy=SaturationPolicy.PREEMPT)
    if plan is None:
        plan = _workload_plan(seed, sim_days)
    plans = dict(plan)
    rngs = RngRegistry(seed)
    edge = []
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(rngs.stream(f"edge-{bname}"), source=bname,
                                    config=EdgeWorkloadConfig(rate_per_hour=60.0))
        edge.extend(gen.materialize(plans[bname]))
    mw.inject(edge)
    wall0 = time.perf_counter()
    mw.run_until(t0 + (sim_days + 0.05) * DAY)
    wall = time.perf_counter() - wall0
    stats = LatencyStats.from_requests(mw.completed_edge(), mw.expired_edge())
    return {
        "servers": len(mw.all_servers),
        "edge_requests": len(edge),
        "median_ms": stats.median_s * 1e3,
        "p95_ms": stats.p95_s * 1e3,
        "miss_rate": mw.edge_deadline_miss_rate(),
        "events": mw.engine.events_executed,
        # host-dependent — reported in data, never in the rendered table
        "wall_s": wall,
        "events_per_s": mw.engine.events_executed / wall if wall > 0 else float("inf"),
    }


def sweep_points(seed: int = 83, sim_days: float = 0.25) -> List[SweepPoint]:
    """One point per city size on the weak-scaling axis."""
    return [
        SweepPoint(
            experiment_id="E14",
            point_id=f"districts={n}",
            cell="repro.experiments.e14_scale:_scale_point",
            params=(("n_districts", n), ("seed", seed), ("sim_days", sim_days)),
            needs=(("plan", "workload-plan"),),
        )
        for n in DISTRICT_STEPS
    ]


def sweep_prefixes(seed: int = 83, sim_days: float = 0.25) -> List[SweepPrefix]:
    """The union workload plan every scale point draws its buildings from."""
    return [SweepPrefix(
        experiment_id="E14", prefix_id="workload-plan",
        cell="repro.experiments.e14_scale:_workload_plan",
        params=(("seed", seed), ("sim_days", sim_days)),
    )]


def sweep_reduce(cells: Dict[str, Any], seed: int = 83,
                 sim_days: float = 0.25) -> ExperimentResult:
    """Reassemble scale points into the weak-scaling table."""
    points = {n: cells[f"districts={n}"] for n in DISTRICT_STEPS}
    table = Table(
        ["districts", "servers", "edge_reqs", "median_ms", "p95_ms", "miss_rate",
         "sim_events"],
        title="E14 — weak scaling of the DF3 city (§III-C)",
    )
    for n, p in points.items():
        table.add_row(n, p["servers"], p["edge_requests"], round(p["median_ms"], 1),
                      round(p["p95_ms"], 1), round(p["miss_rate"], 4),
                      int(p["events"]))
    return ExperimentResult(
        experiment_id="E14",
        title="Weak scaling: QoS vs city size (§III-C)",
        text=table.render(),
        data={str(n): p for n, p in points.items()},
    )


SWEEP = SweepSpec("E14", points=sweep_points, reduce=sweep_reduce,
                  prefixes=sweep_prefixes)


def run(seed: int = 83, sim_days: float = 0.25) -> ExperimentResult:
    """Weak scaling over 1, 2 and 4 districts."""
    return run_sweep(SWEEP, seed=seed, sim_days=sim_days)
