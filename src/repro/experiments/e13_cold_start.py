"""E13 (extension) — the service stack: container cold starts (§II-B1, §III-B).

Q.rads run "computations embedded in containers or virtual machines"; §III-B
warns that the node environment "must cover the need of edge and DCC requests.
Otherwise, we should be able to reboot workers."  The cost of that flexibility
is measurable: the first request of an environment pays an image pull over the
fiber uplink plus a cold start; a disk budget smaller than the working set
thrashes the cache and keeps paying it.

Three Q.rads serve a rotating mix of three service images; we sweep the disk
budget and compare cold vs prefetched fleets.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.common import ExperimentResult, mid_month_start
from repro.hardware.containers import ContainerImage, DeploymentStack, Registry
from repro.hardware.qrad import QRad
from repro.hardware.server import Task
from repro.metrics.report import Table
from repro.network.link import Link
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

__all__ = ["run"]

_GHZ = 1e9

IMAGES = (
    ContainerImage("edge-ml", 0.8e9, cold_start_s=1.5),
    ContainerImage("map-tiles", 1.5e9, cold_start_s=2.0),
    ContainerImage("render", 4.0e9, cold_start_s=4.0),
)


def _scenario(disk_gb: float, prefetch: bool, n_requests: int, seed: int) -> Dict[str, float]:
    engine = Engine(start=mid_month_start(1))
    rng = RngRegistry(seed).stream("e13")
    registry = Registry(Link("fiber", 0.004, 1e9))
    for img in IMAGES:
        registry.publish(img)
    servers = [QRad(f"q{i}", engine) for i in range(3)]
    stacks = [DeploymentStack(registry, disk_bytes=disk_gb * 1e9) for _ in servers]
    if prefetch:
        for stack in stacks:
            for img in IMAGES:
                if img.size_bytes <= stack.disk_bytes:
                    stack.prefetch(img.name)
            stack.hits = stack.misses = 0  # don't bill prefetch as demand misses

    latencies: List[float] = []
    t = engine.now + 1.0
    for i in range(n_requests):
        image = IMAGES[int(rng.integers(0, len(IMAGES)))]
        idx = int(np.argmin([s.busy_cores for s in servers]))
        server, stack = servers[idx], stacks[idx]
        arrival = t

        def start(srv=server, stk=stack, img=image, arr=arrival, n=i):
            delay = stk.ensure(img.name)

            def submit():
                task = Task(f"req-{n}", 0.2 * _GHZ, cores=1,
                            on_complete=lambda tk, now: latencies.append(now - arr))
                srv.submit(task)

            engine.schedule(delay, submit)

        engine.schedule_at(arrival, start)
        t += float(rng.exponential(3.0))
    engine.run_until(t + 300.0)
    lat = np.asarray(latencies)
    hits = sum(s.hits for s in stacks)
    misses = sum(s.misses for s in stacks)
    return {
        "served": len(lat),
        "p50_ms": float(np.percentile(lat, 50)) * 1e3 if lat.size else float("nan"),
        "p95_ms": float(np.percentile(lat, 95)) * 1e3 if lat.size else float("nan"),
        "hit_rate": hits / (hits + misses) if hits + misses else 1.0,
        "evictions": sum(s.evictions for s in stacks),
    }


def run(n_requests: int = 150, seed: int = 79) -> ExperimentResult:
    """Disk-budget sweep × cold/prefetched fleets."""
    rows = {
        "prefetched, 20 GB disk": _scenario(20.0, True, n_requests, seed),
        "cold, 20 GB disk": _scenario(20.0, False, n_requests, seed),
        "cold, 5 GB disk (thrash)": _scenario(5.0, False, n_requests, seed),
    }
    table = Table(["fleet", "p50_ms", "p95_ms", "cache_hit_rate", "evictions"],
                  title="E13 — container cold starts on the DF service stack (§II-B1)")
    for name, r in rows.items():
        table.add_row(name, round(r["p50_ms"], 1), round(r["p95_ms"], 1),
                      f"{r['hit_rate']:.0%}", r["evictions"])
    return ExperimentResult(
        experiment_id="E13",
        title="Service-stack cold starts (§II-B1, §III-B)",
        text=table.render(),
        data=rows,
    )
