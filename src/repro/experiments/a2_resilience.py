"""A2 (extension) — resilience: faults against the §IV decentralisation claim.

"Such an approach can easily guarantee that the basic services delivered by
the resources (heat for instance) will continue to be delivered even if there
are problems in the central point."

A winter day of edge traffic endures three fault episodes:

1. two Q.rads crash mid-morning (running work salvaged);
2. district 0's master goes down for two hours (indirect requests rejected —
   but heat regulation, being local, keeps rooms warm);
3. a one-hour WAN partition cuts the datacenter.

Reported: edge service per phase, salvage counters, and the heat/comfort
outcome that the ROC argument predicts is fault-independent.
"""

from __future__ import annotations

from typing import Dict

from repro.core.faults import FaultInjector
from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.metrics.report import Table
from repro.sim.calendar import DAY, HOUR
from repro.sim.rng import RngRegistry
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

__all__ = ["run"]


def run(seed: int = 61) -> ExperimentResult:
    """One faulty winter day; phase-by-phase edge QoS + comfort."""
    t0 = mid_month_start(1)
    mw = small_city(seed=seed, start_time=t0,
                    saturation_policy=SaturationPolicy.PREEMPT)
    fi = FaultInjector(mw)
    rngs = RngRegistry(seed)

    edge = []
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(rngs.stream(f"edge-{bname}"), source=bname,
                                    config=EdgeWorkloadConfig(rate_per_hour=60.0))
        edge.extend(gen.generate(t0, t0 + DAY))
    mw.inject(edge)
    # long-running DCC work that the 09:00 crash will have to salvage
    from repro.core.requests import CloudRequest

    cloud = [CloudRequest(cycles=1.2e14, time=t0 + 8 * HOUR, cores=4, preemptible=True)
             for _ in range(6)]
    mw.inject(cloud)

    # fault schedule: crash whichever servers actually hold the DCC work,
    # so the salvage path is exercised
    victims: list = []

    def crash_two() -> None:
        names = {r.executed_on for r in cloud if r.executed_on.startswith("district")}
        victims.extend(sorted(names)[:2] or [mw.clusters[0].workers[0].name])
        for v in victims:
            fi.crash_server(v)

    mw.engine.schedule_at(t0 + 9 * HOUR, crash_two)
    mw.engine.schedule_at(t0 + 12 * HOUR, lambda: [fi.recover_server(v) for v in victims])
    mw.engine.schedule_at(t0 + 14 * HOUR, lambda: fi.fail_master(0))
    mw.engine.schedule_at(t0 + 16 * HOUR, lambda: fi.restore_master(0))
    mw.engine.schedule_at(t0 + 18 * HOUR, fi.partition_wan)
    mw.engine.schedule_at(t0 + 19 * HOUR, fi.heal_wan)
    mw.run_until(t0 + DAY + HOUR)

    phases = {
        "healthy (00–09h)": (t0, t0 + 9 * HOUR),
        "2 servers down (09–12h)": (t0 + 9 * HOUR, t0 + 12 * HOUR),
        "master-0 down (14–16h)": (t0 + 14 * HOUR, t0 + 16 * HOUR),
        "wan cut (18–19h)": (t0 + 18 * HOUR, t0 + 19 * HOUR),
        "recovered (19–24h)": (t0 + 19 * HOUR, t0 + DAY),
    }

    def phase_service(a: float, b: float) -> Dict[str, float]:
        submitted = [r for r in edge if a <= r.time < b]
        served = [r for r in submitted if r.status.value == "completed" and r.deadline_met()]
        return {
            "submitted": len(submitted),
            "served_rate": len(served) / len(submitted) if submitted else float("nan"),
        }

    table = Table(["phase", "edge_submitted", "served_in_deadline"],
                  title="A2 — edge service through the fault schedule")
    data: Dict[str, Dict[str, float]] = {}
    for name, (a, b) in phases.items():
        s = phase_service(a, b)
        data[name] = s
        table.add_row(name, s["submitted"], f"{s['served_rate']:.1%}")

    comfort = mw.comfort.result()
    footer = (
        f"\nheat service (the §IV claim): comfort in-band {comfort.time_in_band:.0%},"
        f" mean {comfort.mean_temp_c:.1f} °C across ALL fault phases"
        f"\nsalvage: {fi.log.tasks_killed} tasks killed, {fi.log.tasks_salvaged} salvaged;"
        f" crashes={fi.log.server_crashes}, master outages={fi.log.master_outages},"
        f" wan partitions={fi.log.wan_partitions}"
    )
    data["comfort_in_band"] = comfort.time_in_band
    data["salvaged"] = fi.log.tasks_salvaged
    return ExperimentResult(
        experiment_id="A2",
        title="Fault resilience and the ROC decentralisation claim (§III-C, §IV)",
        text=table.render() + footer,
        data=data,
    )
