"""Experiment layer: every table/figure of DESIGN.md §3, regenerable.

Each module exposes ``run(...) -> ExperimentResult``; the benchmark harness in
``benchmarks/`` executes them and asserts the shape expectations of
DESIGN.md §4.  EXPERIMENTS.md records the rendered outputs.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
