"""The DF3 core: the paper's contribution, executable.

Data Furnace in three flows (§II-C): one server fleet services **heating
requests** (comfort targets from the hosts), **Internet/DCC requests** (cloud
jobs) and **local edge requests** (direct or indirect, near-real-time).  The
modules in this package implement the component architecture of the paper's
Figure 5 — edge/DCC gateways, worker clusters with a master node, vertical and
horizontal offloading, the DVFS heat regulator, the heat-demand predictor, the
smart-grid manager and the seasonal pricing model — wired together by
:class:`repro.core.middleware.DF3Middleware`.
"""

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.collective import CollectiveConfig, CollectiveController
from repro.core.decision import Decision, DecisionConfig, DecisionSystem
from repro.core.faults import FaultInjector, FaultLog
from repro.core.gateway import DCCGateway, EdgeGateway
from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.offloading import CooperationLedger, OffloadDirection, Offloader
from repro.core.prediction import ThermosensitivityModel
from repro.core.pricing import PricingModel, SeasonalPricing
from repro.core.regulation import HeatRegulator, RegulatorConfig
from repro.core.seasonal_planner import CampaignPlan, plan_campaign
from repro.core.slas import SLAAuditor, SLAContract, SLATerm
from repro.core.requests import (
    CloudRequest,
    EdgeMode,
    EdgeRequest,
    Flow,
    HeatingRequest,
    RequestStatus,
)
from repro.core.smartgrid import SmartGridManager

__all__ = [
    "CampaignPlan",
    "CloudRequest",
    "Cluster",
    "ClusterConfig",
    "CollectiveConfig",
    "CollectiveController",
    "CooperationLedger",
    "DCCGateway",
    "DF3Middleware",
    "Decision",
    "DecisionConfig",
    "DecisionSystem",
    "EdgeGateway",
    "EdgeMode",
    "EdgeRequest",
    "FaultInjector",
    "FaultLog",
    "Flow",
    "HeatRegulator",
    "HeatingRequest",
    "MiddlewareConfig",
    "OffloadDirection",
    "Offloader",
    "PricingModel",
    "RegulatorConfig",
    "RequestStatus",
    "SeasonalPricing",
    "SLAAuditor",
    "SLAContract",
    "SLATerm",
    "SmartGridManager",
    "ThermosensitivityModel",
    "plan_campaign",
]
