"""Collective heating control (paper §II-C).

"Heating requests could be collaborative or individual.  The former case
corresponds to the situation where we want to set the **mean temperature** in
rooms of an apartment to a certain value."

Setting every room's setpoint to the requested mean works only when rooms are
identical; a lossy corner room then drags the mean down while saturating its
heater.  :class:`CollectiveController` closes the loop on the *mean*: it
periodically redistributes per-room targets so that warm rooms yield budget to
cold ones, subject to per-room comfort bounds (no room may be driven outside
``[floor, ceiling]`` just to fix the average).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["CollectiveConfig", "CollectiveController"]


@dataclass(frozen=True)
class CollectiveConfig:
    """Redistribution tunables.

    ``gain`` converts mean error (°C) into target shift per update;
    ``floor/ceiling`` bound individual room targets (nobody's bedroom is
    driven to 26 °C to fix the living-room average).
    """

    gain: float = 1.0
    floor_c: float = 16.0
    ceiling_c: float = 25.0
    max_spread_c: float = 3.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ValueError("gain must be > 0")
        if not self.floor_c < self.ceiling_c:
            raise ValueError("need floor < ceiling")
        if self.max_spread_c <= 0:
            raise ValueError("max spread must be > 0")


class CollectiveController:
    """Drives several room regulators toward a mean-temperature target.

    Parameters
    ----------
    regulators: the per-room :class:`~repro.core.regulation.HeatRegulator`
        objects of one household, in a fixed order.
    config: redistribution tunables.
    """

    def __init__(self, regulators: Sequence, config: CollectiveConfig = CollectiveConfig()):
        if not regulators:
            raise ValueError("need at least one regulator")
        self.regulators = list(regulators)
        self.config = config
        self.mean_target_c: float | None = None

    # ------------------------------------------------------------------ #
    def set_mean_target(self, target_c: float) -> None:
        """Accept a collective heating request for this household."""
        if not 5.0 <= target_c <= 30.0:
            raise ValueError(f"target {target_c} outside sane range")
        self.mean_target_c = float(target_c)
        for reg in self.regulators:  # initial guess: everyone at the mean
            reg.set_target(target_c)

    def clear(self) -> None:
        """Drop collective control (rooms revert to individual targets)."""
        self.mean_target_c = None

    @property
    def active(self) -> bool:
        """Whether a collective target is currently in force."""
        return self.mean_target_c is not None

    # ------------------------------------------------------------------ #
    def update(self, room_temps_c) -> List[float]:
        """Rebalance per-room targets from measured temperatures.

        Call on the thermal tick *before* the regulators' own updates.
        Returns the new per-room targets.
        """
        if not self.active:
            return [reg.setpoint_c for reg in self.regulators]
        temps = np.asarray(room_temps_c, dtype=float)
        if temps.shape != (len(self.regulators),):
            raise ValueError(
                f"expected {len(self.regulators)} temperatures, got {temps.shape}"
            )
        cfg = self.config
        target = self.mean_target_c
        mean_err = target - float(temps.mean())
        # per room: push its target up by the mean error, plus a term that
        # shifts budget from rooms above the mean to rooms below it
        relative = temps - temps.mean()
        raw = np.full(temps.shape, target) + cfg.gain * mean_err - 0.5 * relative
        lo = max(cfg.floor_c, target - cfg.max_spread_c)
        hi = min(cfg.ceiling_c, target + cfg.max_spread_c)
        new_targets = np.clip(raw, lo, hi)
        for reg, t in zip(self.regulators, new_targets):
            reg.set_target(float(t))
        return [float(t) for t in new_targets]

    def mean_error_c(self, room_temps_c) -> float:
        """Current mean-temperature error (0 when inactive)."""
        if not self.active:
            return 0.0
        return self.mean_target_c - float(np.mean(np.asarray(room_temps_c, dtype=float)))
