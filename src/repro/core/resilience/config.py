"""Configuration of the resilience subsystem (churn, detection, recovery).

Three frozen dataclasses, composed into :class:`ResilienceConfig`:

* :class:`ChurnConfig` — the *failure model*: per-server MTBF/MTTR draws
  (exponential or Weibull), correlated failure domains (building-level power
  cuts, district blackouts), master outages and WAN flapping, optionally
  coupled to the Arrhenius aging model of :mod:`repro.hardware.aging` (hotter
  boards fail sooner — the §III-C aging concern made operational);
* :class:`DetectorConfig` — the heartbeat failure detector: nothing in the
  middleware reacts to a crash before the heartbeat timeout expires, so
  recovery pays a realistic detection latency instead of omniscient salvage;
* :class:`RecoveryConfig` — which recovery policies are armed: retry with
  exponential backoff + jitter, speculative request cloning, periodic
  checkpointing of long cloud tasks, master failover to a standby gateway,
  and store-and-forward WAN offloading.

All knobs default to the legacy behaviour where that exists; the middleware
only builds a runtime when ``MiddlewareConfig.resilience`` is set, so the
default configuration is byte-identical to a build without this subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ChurnConfig", "DetectorConfig", "RecoveryConfig", "ResilienceConfig"]


@dataclass(frozen=True)
class ChurnConfig:
    """Stochastic failure model of a DF3 city.

    Rates are *per device*; correlated domains add on top of individual
    churn.  A rate of 0 disables that failure class.
    """

    #: mean time between failures of one DF server (s)
    server_mtbf_s: float = 6 * 3600.0
    #: mean time to repair one DF server (s)
    server_mttr_s: float = 900.0
    #: time-to-failure distribution: "exponential" (memoryless) or "weibull"
    #: (shape > 1 = wear-out, infant-mortality with shape < 1)
    failure_dist: str = "exponential"
    weibull_shape: float = 1.5
    #: building-level power cuts (all servers of one building down together)
    building_cut_rate_per_day: float = 0.0
    building_cut_duration_s: float = 600.0
    #: district blackouts (a whole district's fleet down together)
    district_blackout_rate_per_day: float = 0.0
    district_blackout_duration_s: float = 1800.0
    #: master (edge-gateway indirect path) churn; 0 disables
    master_mtbf_s: float = 0.0
    master_mttr_s: float = 600.0
    #: WAN flapping (city ↔ datacenter partitions); 0 disables
    wan_flap_rate_per_day: float = 0.0
    wan_flap_duration_s: float = 300.0
    #: divide each server's drawn TTF by its Arrhenius acceleration factor
    #: at draw time (utilisation-dependent junction temperature): busy,
    #: hot boards churn faster (§III-C)
    aging_coupling: bool = False

    def __post_init__(self) -> None:
        if self.failure_dist not in ("exponential", "weibull"):
            raise ValueError(f"unknown failure_dist {self.failure_dist!r}")
        if self.server_mtbf_s <= 0 or self.server_mttr_s <= 0:
            raise ValueError("server MTBF and MTTR must be > 0")
        if self.weibull_shape <= 0:
            raise ValueError("weibull_shape must be > 0")
        for rate in (self.building_cut_rate_per_day,
                     self.district_blackout_rate_per_day,
                     self.wan_flap_rate_per_day, self.master_mtbf_s):
            if rate < 0:
                raise ValueError("rates must be >= 0")
        for dur in (self.building_cut_duration_s,
                    self.district_blackout_duration_s,
                    self.wan_flap_duration_s, self.master_mttr_s):
            if dur <= 0:
                raise ValueError("outage durations must be > 0")


@dataclass(frozen=True)
class DetectorConfig:
    """Heartbeat failure detection parameters.

    Every monitored component emits a heartbeat each ``heartbeat_interval_s``
    (with a per-component phase so the fleet does not beat in lockstep); the
    monitor declares it failed ``timeout_s`` after the last heartbeat it
    received.  Detection latency is therefore in
    ``(timeout_s − heartbeat_interval_s, timeout_s]``.
    """

    heartbeat_interval_s: float = 1.0
    timeout_s: float = 3.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat interval must be > 0")
        if self.timeout_s <= self.heartbeat_interval_s:
            raise ValueError("timeout must exceed the heartbeat interval "
                             "(otherwise healthy components look failed)")


@dataclass(frozen=True)
class RecoveryConfig:
    """Which recovery policies are armed, and their knobs."""

    #: resubmit rejected/crashed edge requests with exponential backoff
    retry: bool = False
    retry_max_attempts: int = 3
    retry_base_backoff_s: float = 0.5
    retry_jitter_s: float = 0.2
    #: speculatively clone tight-deadline indirect edge requests to the best
    #: peer district; first completion wins, the loser is cancelled
    clone: bool = False
    clone_deadline_threshold_s: float = 10.0
    #: when the loser is cancelled: "completion" (first completion wins, the
    #: legacy discipline) or "start" (synchronized-service cloning — the
    #: sibling is cancelled the instant any member begins execution, so at
    #: most one copy ever burns cycles)
    clone_cancel_on: str = "completion"
    #: spawn a clone only while the *peer* district (the clone's target) has
    #: paying utilisation (filler excluded — filler is displaced instantly)
    #: at or below this threshold: a loaded peer makes the copy pure added
    #: load (PS-model), a loaded home is when the race helps most;
    #: 1.0 = always spawn (legacy)
    clone_max_utilisation: float = 1.0
    #: spawn a clone only while the peer district's edge queue is at or below
    #: this depth; negative = no gate (legacy)
    clone_max_queue_depth: int = -1
    #: periodically checkpoint running cloud tasks so crash salvage restarts
    #: from the last checkpoint instead of from scratch
    checkpoint: bool = False
    checkpoint_interval_s: float = 600.0
    #: promote a standby master after a detected master outage
    failover: bool = False
    failover_takeover_s: float = 5.0
    #: buffer vertical offloads during WAN partitions, drain on heal
    store_and_forward: bool = False
    #: run the adaptive :class:`~repro.core.resilience.policy.PolicyController`:
    #: a periodic process re-picks retry/clone per flow class from measured
    #: detection latency and rolling utilisation (with hysteresis, so the
    #: choice sequence is deterministic under a fixed seed)
    adaptive: bool = False
    adaptive_eval_interval_s: float = 60.0
    #: hysteresis band on rolling city utilisation: cloning for the tight
    #: class switches OFF above ``adaptive_util_high`` and back ON below
    #: ``adaptive_util_low``.  This is a coarse near-saturation backstop —
    #: the per-spawn ``clone_max_utilisation`` gate on the peer district does
    #: the fine-grained PS-model work — so the band sits high by default
    adaptive_util_high: float = 0.92
    adaptive_util_low: float = 0.80
    #: minimum seconds between two policy switches of one flow class
    adaptive_min_dwell_s: float = 300.0
    #: utilisation samples in the rolling mean (one per eval tick)
    adaptive_window: int = 5

    def __post_init__(self) -> None:
        if self.retry_max_attempts < 0:
            raise ValueError("retry_max_attempts must be >= 0")
        if self.retry_base_backoff_s < 0 or self.retry_jitter_s < 0:
            raise ValueError("backoff and jitter must be >= 0")
        if self.clone_deadline_threshold_s <= 0:
            raise ValueError("clone deadline threshold must be > 0")
        if self.clone_cancel_on not in ("completion", "start"):
            raise ValueError(
                f"clone_cancel_on must be 'completion' or 'start', "
                f"got {self.clone_cancel_on!r}")
        if not 0.0 <= self.clone_max_utilisation <= 1.0:
            raise ValueError("clone_max_utilisation must be in [0, 1]")
        if self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint interval must be > 0")
        if self.failover_takeover_s < 0:
            raise ValueError("failover takeover time must be >= 0")
        if self.adaptive_eval_interval_s <= 0:
            raise ValueError("adaptive eval interval must be > 0")
        if not 0.0 <= self.adaptive_util_low <= self.adaptive_util_high <= 1.0:
            raise ValueError("need 0 <= adaptive_util_low <= "
                             "adaptive_util_high <= 1")
        if self.adaptive_min_dwell_s < 0:
            raise ValueError("adaptive_min_dwell_s must be >= 0")
        if self.adaptive_window < 1:
            raise ValueError("adaptive_window must be >= 1")

    @classmethod
    def none(cls) -> "RecoveryConfig":
        """No recovery: crashes lose work, outages reject."""
        return cls()

    @classmethod
    def all_on(cls, **overrides) -> "RecoveryConfig":
        """Every policy armed (the 'all' bundle of experiment A6)."""
        base = dict(retry=True, clone=True, checkpoint=True, failover=True,
                    store_and_forward=True)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def adaptive_on(cls, **overrides) -> "RecoveryConfig":
        """The adaptive policy engine (the 'adaptive' bundle of A6).

        Retry and checkpointing stay armed throughout (both are near-free);
        cancel-on-start cloning of the tight edge class is modulated at
        runtime by the :class:`~repro.core.resilience.policy.PolicyController`
        and gated per spawn on the peer district's load.
        """
        base = dict(retry=True, checkpoint=True, clone=True,
                    clone_cancel_on="start", clone_max_utilisation=0.95,
                    clone_max_queue_depth=8, adaptive=True)
        base.update(overrides)
        return cls(**base)


@dataclass(frozen=True)
class ResilienceConfig:
    """Bundle handed to ``MiddlewareConfig.resilience``."""

    churn: ChurnConfig = field(default_factory=ChurnConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    #: drive the stochastic churn model; False = recovery machinery armed
    #: but faults only come from explicit injection (tests)
    enable_churn: bool = True
