"""Heartbeat failure detection with realistic latency.

A crashed Q.rad does not announce its death: the middleware only learns of it
when heartbeats stop arriving.  Simulating one event per heartbeat per server
would flood the engine (a small city is already ~10 servers × 1 Hz × 86400 s
= 10⁶ events/day for *nothing*), so the detector is **analytic**: each
monitored key gets a fixed phase φ ∈ [0, interval) drawn at registration, its
heartbeats tick at ``φ, φ+Δ, φ+2Δ, …``, and for a failure at ``t`` the
detection instant is computed in O(1) as::

    last_hb  = φ + ⌊(t − φ)/Δ⌋·Δ        # last beat the monitor received
    t_detect = last_hb + timeout

This gives exactly the latency distribution of the event-driven detector —
uniform over ``(timeout − Δ, timeout]`` for Poisson failure times — at zero
event cost.  Registration order is fixed by the caller (sorted), so phase
draws are deterministic.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.resilience.config import DetectorConfig

__all__ = ["HeartbeatFailureDetector"]


class HeartbeatFailureDetector:
    """Analytic heartbeat detector over named components."""

    def __init__(self, config: DetectorConfig, rng):
        self.config = config
        self.rng = rng
        self._phase: Dict[str, float] = {}

    def register(self, key: str) -> None:
        """Start monitoring ``key``; draws its heartbeat phase."""
        if key in self._phase:
            raise ValueError(f"{key!r} already monitored")
        self._phase[key] = float(self.rng.random()) * self.config.heartbeat_interval_s

    def monitors(self, key: str) -> bool:
        """Whether ``key`` is registered."""
        return key in self._phase

    def latency_bound_s(self) -> float:
        """Analytic worst-case detection latency (the heartbeat timeout).

        The :class:`~repro.core.resilience.policy.PolicyController` uses this
        as its prior before any failure has produced a measured latency.
        """
        return self.config.timeout_s

    def detection_time(self, key: str, t_fail: float) -> float:
        """Absolute time the monitor declares ``key`` failed.

        Always ≥ ``t_fail``; the latency lies in
        ``(timeout − interval, timeout]``.
        """
        cfg = self.config
        phase = self._phase[key]
        k = math.floor((t_fail - phase) / cfg.heartbeat_interval_s)
        last_hb = phase + k * cfg.heartbeat_interval_s
        return max(t_fail, last_hb + cfg.timeout_s)
