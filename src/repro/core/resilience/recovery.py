"""Recovery policies: what the middleware does once a failure is *detected*.

The pipeline for every churn-induced crash is

    fail (ChurnModel) → kill, heartbeats stop (FaultInjector.kill_server)
      → detect (HeartbeatFailureDetector, timeout later)
        → salvage (FaultInjector.salvage_tasks under the armed policies)

Nothing is salvaged at the instant of the fault — orphaned tasks are only
re-routed after the detection latency, which is what makes detection tuning
matter and what experiment A6 measures.

Armed policies (:class:`~repro.core.resilience.config.RecoveryConfig`):

* **retry** — crashed/rejected edge requests resubmit through the gateway
  with exponential backoff + jitter (the gateway owns the backoff; this
  runtime arms it and routes crash salvage through ``gateway.resubmit``);
* **clone** — tight-deadline indirect edge requests are speculatively
  duplicated to the best peer district; first completion wins, the loser is
  cancelled (queued → lazily dropped, running → preempted) and its executed
  cycles are booked as waste.  With ``clone_cancel_on="start"`` the sibling
  is cancelled the instant either member *begins execution* (synchronized-
  service cloning, per the PS-model reproducibility report in PAPERS.md), so
  at most one copy ever burns cycles; ``clone_max_utilisation`` and
  ``clone_max_queue_depth`` additionally gate spawning on the home district's
  paying load — cloning only helps while the system has slack;
* **checkpoint** — a per-district periodic process snapshots every running
  cloud task's remaining work into ``task.metadata["ckpt_remaining"]``; crash
  salvage restarts from the last snapshot instead of from scratch;
* **failover** — a standby master takes over ``failover_takeover_s`` after a
  master outage is detected (``EdgeGateway.master_up`` flips back on);
* **store_and_forward** — vertical offloads buffer in the
  :class:`~repro.core.offloading.Offloader` during WAN partitions and drain
  on heal.

With ``RecoveryConfig.adaptive`` the runtime additionally owns a
:class:`~repro.core.resilience.policy.PolicyController` that re-picks the
discipline per flow class at runtime; every spawn/skip/cancel/switch the
engine makes is recorded as a ``policy.decision`` trace record (threaded
into the request's span tree when it concerns one request) and counted in
``ResilienceLog.policy_decisions``.

Without any policy armed, crashes restart cloud work from scratch (clients
eventually resubmit — full redo, maximal waste) and edge requests die with
the server.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.faults import FaultInjector
from repro.core.requests import EdgeMode, EdgeRequest, RequestStatus
from repro.core.resilience.churn import ChurnModel
from repro.core.resilience.config import ResilienceConfig
from repro.core.resilience.detector import HeartbeatFailureDetector
from repro.core.resilience.policy import PolicyController
from repro.obs import adopt_chain, link_spans

__all__ = ["CloneGroup", "RecoveryRuntime", "ResilienceLog"]


@dataclass
class ResilienceLog:
    """What churn did and what recovery salvaged, for experiment reports."""

    server_failures: int = 0
    server_repairs: int = 0
    master_failures: int = 0
    failovers: int = 0
    wan_flaps: int = 0
    checkpoints_taken: int = 0
    clones_spawned: int = 0
    clone_wins: int = 0            # times the speculative copy finished first
    tasks_salvaged: int = 0
    #: cycles a losing clone executed before cancellation (speculation tax)
    clone_waste_cycles: float = 0.0
    #: cycles lost to crashes: redo-after-restart beyond the last checkpoint
    failure_waste_cycles: float = 0.0
    #: policy-engine decision counters (``spawn_clone``, ``skip_clone``,
    #: ``cancel_sibling``, ``switch_<flow_class>`` …)
    policy_decisions: Dict[str, int] = field(default_factory=dict)
    detection_latencies_s: List[float] = field(default_factory=list)

    @property
    def wasted_cycles(self) -> float:
        """Total cycles executed and thrown away, both attributions summed."""
        return self.clone_waste_cycles + self.failure_waste_cycles

    def detection_latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of detection latency (0 when no failures)."""
        xs = sorted(self.detection_latencies_s)
        if not xs:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * len(xs)))
        return xs[min(rank, len(xs)) - 1]


class CloneGroup:
    """First-completion-wins pair of an edge request and its speculative copy.

    Both members carry this group in ``req.__dict__["_clone_group"]``;
    schedulers/offloaders consult it at completion and terminal rejection:

    * :meth:`on_complete` — returns the **primary** (with the winner's
      attribution copied onto it) for the first finisher, ``None`` for the
      loser (its result is discarded and booked as waste);
    * :meth:`on_failure` — returns ``None`` while the sibling is still in
      flight (the failure is silent: the sibling may yet win) and the primary
      once both members are dead, so exactly one terminal record exists;
    * :meth:`on_start` — with ``cancel_on="start"``, the first member to be
      placed on a server cancels its sibling immediately.  At that instant
      the sibling cannot itself be running (it would have fired its own
      start hook first), so cancel-on-start never preempts mid-execution:
      the loser is still queued or in network flight and is dropped lazily,
      making the speculation's cycle waste essentially zero.
    """

    __slots__ = ("primary", "clone", "runtime", "cancel_on", "started",
                 "resolved", "_dead")

    def __init__(self, primary: EdgeRequest, clone: EdgeRequest, runtime,
                 cancel_on: str = "completion"):
        self.primary = primary
        self.clone = clone
        self.runtime = runtime
        self.cancel_on = cancel_on
        self.started = False
        self.resolved = False
        self._dead = 0  # bit 1 = primary dead, bit 2 = clone dead

    def on_start(self, member: EdgeRequest) -> None:
        """A member was just placed on a server; under ``cancel_on="start"``
        the sibling is cancelled now rather than at first completion."""
        if self.cancel_on != "start" or self.started or self.resolved:
            return
        self.started = True
        loser = self.clone if member is self.primary else self.primary
        # mark the loser dead so a later terminal failure of the starter
        # still yields exactly one terminal record (via the _dead == 3 path)
        self._dead |= 2 if loser is self.clone else 1
        self.runtime._cancel_loser(loser)
        self.runtime.decide(
            "cancel_sibling", ctx=member, id=self.primary.request_id,
            starter="clone" if member is self.clone else "primary")

    def on_complete(self, member: EdgeRequest, now: float):
        if self.resolved or self._dead & (2 if member is self.clone else 1):
            # the loser ran to completion anyway (e.g. in the datacenter,
            # beyond preemption reach): pure speculation waste
            self.runtime.log.clone_waste_cycles += member.cycles
            return None
        self.resolved = True
        winner_is_clone = member is self.clone
        self.runtime._cancel_loser(self.primary if winner_is_clone else self.clone)
        if winner_is_clone:
            # the primary is the caller-visible request: graft the winning
            # copy's execution record onto it
            p, c = self.primary, self.clone
            p.started_at = c.started_at
            p.executed_on = c.executed_on
            p.network_delay_s = c.network_delay_s
            if "_return_delay_s" in c.__dict__:
                p.__dict__["_return_delay_s"] = c.__dict__["_return_delay_s"]
            else:
                p.__dict__.pop("_return_delay_s", None)
            if self.runtime.mw.obs.tracer.enabled:
                # the completion record must parent to the clone's execution
                # — the true cause — not the primary's abandoned attempt
                adopt_chain(p, c)
            self.runtime.log.clone_wins += 1
        return self.primary

    def on_failure(self, member: EdgeRequest):
        bit = 2 if member is self.clone else 1
        if self.resolved or self._dead & bit:
            return None
        self._dead |= bit
        if self._dead == 3:
            self.resolved = True
            return self.primary
        return None


class RecoveryRuntime:
    """Arms the recovery policies on a middleware and reacts to churn."""

    def __init__(self, middleware, config: ResilienceConfig):
        self.mw = middleware
        self.cfg = config
        self.engine = middleware.engine
        self.log = ResilienceLog()
        self.injector = FaultInjector(middleware)
        self.detector = HeartbeatFailureDetector(
            config.detector, middleware.rngs.stream("resilience-detector"))
        # registration order is sorted → deterministic phase draws
        for d in sorted(middleware.clusters):
            for w in middleware.clusters[d].workers:
                self.detector.register(w.name)
        for d in sorted(middleware.edge_gateways):
            self.detector.register(f"master-{d}")

        rec = config.recovery
        if rec.retry:
            for d in sorted(middleware.edge_gateways):
                gw = middleware.edge_gateways[d]
                gw.retry_policy = rec
                gw.retry_rng = middleware.rngs.stream(f"resilience-retry-{d}")
        middleware.offloader.store_and_forward = rec.store_and_forward
        if rec.checkpoint:
            # phase-shifted per district so checkpointers don't pile onto
            # the same event timestamps
            for i, d in enumerate(sorted(middleware.clusters)):
                self.engine.add_process(
                    f"ckpt-{d}", rec.checkpoint_interval_s,
                    self._checkpoint_fn(d), offset=float(i))

        # only built when asked for: non-adaptive configurations register no
        # extra engine process and stay byte-identical to the fixed policies
        self.policy: Optional[PolicyController] = None
        if rec.adaptive:
            self.policy = PolicyController(self, config)

        self.churn: Optional[ChurnModel] = None
        if config.enable_churn:
            self.churn = ChurnModel(middleware, config.churn, self)

    # ------------------------------------------------------------------ #
    # decision provenance
    # ------------------------------------------------------------------ #
    def decide(self, action: str, ctx=None, **fields) -> None:
        """Count a policy decision and emit its ``policy.decision`` record.

        With a request context the record is a *span* threaded into that
        request's causal chain (so ``repro report`` waterfalls show why a
        clone existed); pass ``ctx`` only for requests that already carry
        spans — a pre-submission decision (``skip_clone``) or a controller
        switch emits a plain record instead, so ``edge.received`` stays every
        trace's root.  Counters update unconditionally — they are part of
        the deterministic simulation state, not observability.
        """
        self.log.policy_decisions[action] = \
            self.log.policy_decisions.get(action, 0) + 1
        obs = self.mw.obs
        if obs.active:
            if ctx is not None:
                obs.emit_span("policy", "policy.decision", self.engine.now,
                              ctx=ctx, action=action, **fields)
            else:
                obs.emit("policy", "policy.decision", self.engine.now,
                         action=action, **fields)

    def paying_load(self, district: int):
        """(busy paying cores, live cores) of one district's fleet.

        Filler tasks are excluded from the busy count: filler is displaced
        the instant paying work arrives, so a filler-saturated winter fleet
        is *not* loaded in the PS-model sense.  Dead servers drop out of the
        denominator — their cores are not available to anyone.
        """
        busy = total = 0
        for w in self.mw.clusters[district].workers:
            if not w.enabled:
                continue
            total += w.n_cores
            busy += sum(t.cores for t in w.running_tasks
                        if t.metadata.get("kind") != "filler")
        return busy, total

    def status_dict(self) -> Dict[str, object]:
        """JSON-ready counters for the twin's ``/api/state`` view."""
        log = self.log
        out: Dict[str, object] = {
            "server_failures": log.server_failures,
            "clones_spawned": log.clones_spawned,
            "clone_wins": log.clone_wins,
            "clone_waste_gcycles": round(log.clone_waste_cycles / 1e9, 3),
            "failure_waste_gcycles": round(log.failure_waste_cycles / 1e9, 3),
            "policy_decisions": dict(sorted(log.policy_decisions.items())),
        }
        if self.policy is not None:
            out["controller"] = self.policy.to_dict()
        return out

    # ------------------------------------------------------------------ #
    # churn hooks: failure → detect → salvage
    # ------------------------------------------------------------------ #
    def _record_detection(self, key: str, kind: str, t_fail: float) -> float:
        t_detect = self.detector.detection_time(key, t_fail)
        latency = t_detect - t_fail
        self.log.detection_latencies_s.append(latency)
        obs = self.mw.obs
        if obs.active:
            obs.emit("resilience", "failure.detected", t_detect,
                     component=key, role=kind, latency_s=round(latency, 6))
            obs.histogram("detection_latency_s", kind=kind).observe(latency)
        return t_detect

    def on_server_failure(self, name: str) -> None:
        """A server just died: kill its tasks, schedule detection-time salvage."""
        now = self.engine.now
        killed, district = self.injector.kill_server(name, hard=True)
        self.log.server_failures += 1
        t_detect = self._record_detection(name, "server", now)
        if killed:
            self.engine.schedule_at(
                t_detect, lambda: self._salvage(killed, district),
                label="resilience:salvage")

    def _salvage(self, killed, district: int) -> None:
        rec = self.cfg.recovery
        progress = "checkpoint" if rec.checkpoint else "restart"
        before = self.injector.log.tasks_salvaged
        wasted = self.injector.salvage_tasks(
            killed, district, progress=progress, salvage_edge=rec.retry)
        self.log.failure_waste_cycles += wasted
        self.log.tasks_salvaged += self.injector.log.tasks_salvaged - before

    def on_server_recovery(self, name: str) -> None:
        """Repaired: back on, empty, eligible for placement again."""
        self.injector.recover_server(name)
        self.log.server_repairs += 1

    def on_master_failure(self, district: int) -> None:
        """Master down: indirect path rejects until failover or repair."""
        now = self.engine.now
        self.injector.fail_master(district)
        self.log.master_failures += 1
        t_detect = self._record_detection(f"master-{district}", "master", now)
        if self.cfg.recovery.failover:
            self.engine.schedule_at(
                t_detect + self.cfg.recovery.failover_takeover_s,
                lambda: self._promote_standby(district),
                label="resilience:failover")

    def _promote_standby(self, district: int) -> None:
        gateway = self.mw.edge_gateways[district]
        if not gateway.master_up:
            gateway.master_up = True
            self.log.failovers += 1
            if self.mw.obs.active:
                self.mw.obs.emit("resilience", "master.failover", self.engine.now,
                                 district=district)

    def on_master_recovery(self, district: int) -> None:
        # after a failover the standby already serves; restoring the original
        # master is then a no-op flag flip, but it clears the injector state
        self.injector.restore_master(district)

    def on_wan_down(self) -> None:
        if not self.injector.wan_partitioned:
            self.injector.partition_wan()
            self.log.wan_flaps += 1

    def on_wan_up(self) -> None:
        if self.injector.wan_partitioned:
            self.injector.heal_wan()

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def _checkpoint_fn(self, district: int):
        cluster = self.mw.clusters[district]

        def tick(now: float, dt: float) -> None:
            for w in cluster.workers:
                if not w.running_tasks:
                    continue
                w.sync()
                for task in w.running_tasks:
                    if task.metadata.get("kind") == "cloud":
                        task.metadata["ckpt_remaining"] = task.remaining_cycles
                        self.log.checkpoints_taken += 1

        return tick

    # ------------------------------------------------------------------ #
    # speculative cloning
    # ------------------------------------------------------------------ #
    def wants_clone(self, req) -> bool:
        """Whether this request is *eligible* for speculative duplication."""
        rec = self.cfg.recovery
        return (rec.clone
                and isinstance(req, EdgeRequest)
                and req.mode is EdgeMode.INDIRECT
                and req.deadline_s <= rec.clone_deadline_threshold_s
                and len(self.mw.edge_gateways) > 1)

    def _clone_peer(self, district: int) -> int:
        """The district that takes the speculative copy: most free cores
        among the peers (lowest district id breaks ties)."""
        return min((d for d in sorted(self.mw.clusters) if d != district),
                   key=lambda d: (-self.mw.clusters[d].free_cores(), d))

    def maybe_clone(self, req, district: int) -> bool:
        """Clone ``req`` if eligible and no gate vetoes it.

        Returns True when the request (plus its clone) was submitted; False
        hands the request back to the normal single-copy path.  Three gates,
        cheapest first, each recorded as a ``skip_clone`` decision:

        * the adaptive controller has switched the tight class off cloning;
        * the **peer** district's paying utilisation exceeds
          ``clone_max_utilisation``;
        * the **peer** district's edge queue is deeper than
          ``clone_max_queue_depth``.

        The load gates look at the clone's *target*, not the request's home:
        the PS-model analysis says a clone only helps while spare capacity
        exists to absorb it — a loaded peer makes the copy pure added load,
        while a loaded *home* is exactly when racing an idle peer rescues
        the request.  Gate signals are only computed when the corresponding
        knob is armed, so the legacy always-clone configuration does no
        extra work.
        """
        if not self.wants_clone(req):
            return False
        rec = self.cfg.recovery
        if self.policy is not None:
            self.policy.note_tight_deadline(req.deadline_s)
            if not self.policy.clone_active():
                self.decide("skip_clone", id=req.request_id,
                            reason="policy_off")
                return False
        peer = self._clone_peer(district)
        if rec.clone_max_utilisation < 1.0:
            busy, total = self.paying_load(peer)
            util = busy / total if total else 1.0
            if util > rec.clone_max_utilisation:
                self.decide("skip_clone", id=req.request_id,
                            reason="peer_utilisation", peer=peer,
                            util=round(util, 6))
                return False
        if rec.clone_max_queue_depth >= 0:
            depth = len(self.mw.schedulers[peer].edge_queue)
            if depth > rec.clone_max_queue_depth:
                self.decide("skip_clone", id=req.request_id,
                            reason="peer_queue_depth", peer=peer, depth=depth)
                return False
        self.submit_cloned(req, district, peer)
        return True

    def submit_cloned(self, req: EdgeRequest, district: int,
                      peer: Optional[int] = None) -> None:
        """Submit ``req`` to its district plus a speculative copy to a peer.

        The peer with the most free cores takes the copy (lowest district id
        breaks ties) unless the caller already picked one.  The group is
        attached to *both* members before either submission so a synchronous
        rejection (master down, no retry) stays silent while the sibling is
        in flight.
        """
        if peer is None:
            peer = self._clone_peer(district)
        clone = copy.copy(req)
        clone.request_id = f"{req.request_id}#clone"
        group = CloneGroup(req, clone, self,
                           cancel_on=self.cfg.recovery.clone_cancel_on)
        req.__dict__["_clone_group"] = group
        clone.__dict__["_clone_group"] = group
        self.log.clones_spawned += 1
        if self.mw.obs.active:
            self.mw.obs.emit_span("resilience", "edge.cloned", self.engine.now,
                                  ctx=req, id=req.request_id,
                                  home=district, peer=peer)
        if self.mw.obs.tracer.enabled:
            # the clone's first span hangs off the primary's chain tip so
            # both execution attempts live in one causal tree
            link_spans(clone, req)
        self.mw.edge_gateways[district].submit(req)
        self.mw.edge_gateways[peer].submit(clone)
        # decided *after* submission so the span parents into the request's
        # lifecycle chain (edge.received is already the trace root)
        self.decide("spawn_clone", ctx=req, id=req.request_id,
                    home=district, peer=peer)

    def _cancel_loser(self, loser: EdgeRequest) -> None:
        """Cancel the losing clone; preempt it if it is running on a Q.rad."""
        loser.__dict__["_clone_cancelled"] = True
        if loser.status is not RequestStatus.RUNNING or not loser.executed_on:
            return  # queued or in flight: dropped lazily at the next touch
        for d in sorted(self.mw.clusters):
            try:
                worker = self.mw.clusters[d].worker(loser.executed_on)
            except KeyError:
                continue
            try:
                task = worker.preempt(loser.request_id)
            except KeyError:
                return  # completed in the same instant; on_complete discards
            self.log.clone_waste_cycles += max(
                0.0, loser.cycles - task.remaining_cycles)
            self.mw.schedulers[d].drain()  # the freed cores can serve queues
            return
        # running in the datacenter: out of preemption reach; its completion
        # will be discarded (and booked as waste) by CloneGroup.on_complete
