"""Recovery policies: what the middleware does once a failure is *detected*.

The pipeline for every churn-induced crash is

    fail (ChurnModel) → kill, heartbeats stop (FaultInjector.kill_server)
      → detect (HeartbeatFailureDetector, timeout later)
        → salvage (FaultInjector.salvage_tasks under the armed policies)

Nothing is salvaged at the instant of the fault — orphaned tasks are only
re-routed after the detection latency, which is what makes detection tuning
matter and what experiment A6 measures.

Armed policies (:class:`~repro.core.resilience.config.RecoveryConfig`):

* **retry** — crashed/rejected edge requests resubmit through the gateway
  with exponential backoff + jitter (the gateway owns the backoff; this
  runtime arms it and routes crash salvage through ``gateway.resubmit``);
* **clone** — tight-deadline indirect edge requests are speculatively
  duplicated to the best peer district; first completion wins, the loser is
  cancelled (queued → lazily dropped, running → preempted) and its executed
  cycles are booked as waste;
* **checkpoint** — a per-district periodic process snapshots every running
  cloud task's remaining work into ``task.metadata["ckpt_remaining"]``; crash
  salvage restarts from the last snapshot instead of from scratch;
* **failover** — a standby master takes over ``failover_takeover_s`` after a
  master outage is detected (``EdgeGateway.master_up`` flips back on);
* **store_and_forward** — vertical offloads buffer in the
  :class:`~repro.core.offloading.Offloader` during WAN partitions and drain
  on heal.

Without any policy armed, crashes restart cloud work from scratch (clients
eventually resubmit — full redo, maximal waste) and edge requests die with
the server.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.faults import FaultInjector
from repro.core.requests import EdgeMode, EdgeRequest, RequestStatus
from repro.core.resilience.churn import ChurnModel
from repro.core.resilience.config import ResilienceConfig
from repro.core.resilience.detector import HeartbeatFailureDetector
from repro.obs import adopt_chain, link_spans

__all__ = ["CloneGroup", "RecoveryRuntime", "ResilienceLog"]


@dataclass
class ResilienceLog:
    """What churn did and what recovery salvaged, for experiment reports."""

    server_failures: int = 0
    server_repairs: int = 0
    master_failures: int = 0
    failovers: int = 0
    wan_flaps: int = 0
    checkpoints_taken: int = 0
    clones_spawned: int = 0
    clone_wins: int = 0            # times the speculative copy finished first
    tasks_salvaged: int = 0
    #: cycles executed and thrown away: redo after restart, loser clones
    wasted_cycles: float = 0.0
    detection_latencies_s: List[float] = field(default_factory=list)

    def detection_latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of detection latency (0 when no failures)."""
        xs = sorted(self.detection_latencies_s)
        if not xs:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * len(xs)))
        return xs[min(rank, len(xs)) - 1]


class CloneGroup:
    """First-completion-wins pair of an edge request and its speculative copy.

    Both members carry this group in ``req.__dict__["_clone_group"]``;
    schedulers/offloaders consult it at completion and terminal rejection:

    * :meth:`on_complete` — returns the **primary** (with the winner's
      attribution copied onto it) for the first finisher, ``None`` for the
      loser (its result is discarded and booked as waste);
    * :meth:`on_failure` — returns ``None`` while the sibling is still in
      flight (the failure is silent: the sibling may yet win) and the primary
      once both members are dead, so exactly one terminal record exists.
    """

    __slots__ = ("primary", "clone", "runtime", "resolved", "_dead")

    def __init__(self, primary: EdgeRequest, clone: EdgeRequest, runtime):
        self.primary = primary
        self.clone = clone
        self.runtime = runtime
        self.resolved = False
        self._dead = 0  # bit 1 = primary dead, bit 2 = clone dead

    def on_complete(self, member: EdgeRequest, now: float):
        if self.resolved:
            # the loser ran to completion anyway (e.g. in the datacenter,
            # beyond preemption reach): pure waste
            self.runtime.log.wasted_cycles += member.cycles
            return None
        self.resolved = True
        winner_is_clone = member is self.clone
        self.runtime._cancel_loser(self.primary if winner_is_clone else self.clone)
        if winner_is_clone:
            # the primary is the caller-visible request: graft the winning
            # copy's execution record onto it
            p, c = self.primary, self.clone
            p.started_at = c.started_at
            p.executed_on = c.executed_on
            p.network_delay_s = c.network_delay_s
            if "_return_delay_s" in c.__dict__:
                p.__dict__["_return_delay_s"] = c.__dict__["_return_delay_s"]
            else:
                p.__dict__.pop("_return_delay_s", None)
            if self.runtime.mw.obs.tracer.enabled:
                # the completion record must parent to the clone's execution
                # — the true cause — not the primary's abandoned attempt
                adopt_chain(p, c)
            self.runtime.log.clone_wins += 1
        return self.primary

    def on_failure(self, member: EdgeRequest):
        bit = 2 if member is self.clone else 1
        if self.resolved or self._dead & bit:
            return None
        self._dead |= bit
        if self._dead == 3:
            self.resolved = True
            return self.primary
        return None


class RecoveryRuntime:
    """Arms the recovery policies on a middleware and reacts to churn."""

    def __init__(self, middleware, config: ResilienceConfig):
        self.mw = middleware
        self.cfg = config
        self.engine = middleware.engine
        self.log = ResilienceLog()
        self.injector = FaultInjector(middleware)
        self.detector = HeartbeatFailureDetector(
            config.detector, middleware.rngs.stream("resilience-detector"))
        # registration order is sorted → deterministic phase draws
        for d in sorted(middleware.clusters):
            for w in middleware.clusters[d].workers:
                self.detector.register(w.name)
        for d in sorted(middleware.edge_gateways):
            self.detector.register(f"master-{d}")

        rec = config.recovery
        if rec.retry:
            for d in sorted(middleware.edge_gateways):
                gw = middleware.edge_gateways[d]
                gw.retry_policy = rec
                gw.retry_rng = middleware.rngs.stream(f"resilience-retry-{d}")
        middleware.offloader.store_and_forward = rec.store_and_forward
        if rec.checkpoint:
            # phase-shifted per district so checkpointers don't pile onto
            # the same event timestamps
            for i, d in enumerate(sorted(middleware.clusters)):
                self.engine.add_process(
                    f"ckpt-{d}", rec.checkpoint_interval_s,
                    self._checkpoint_fn(d), offset=float(i))

        self.churn: Optional[ChurnModel] = None
        if config.enable_churn:
            self.churn = ChurnModel(middleware, config.churn, self)

    # ------------------------------------------------------------------ #
    # churn hooks: failure → detect → salvage
    # ------------------------------------------------------------------ #
    def _record_detection(self, key: str, kind: str, t_fail: float) -> float:
        t_detect = self.detector.detection_time(key, t_fail)
        latency = t_detect - t_fail
        self.log.detection_latencies_s.append(latency)
        obs = self.mw.obs
        if obs.active:
            obs.emit("resilience", "failure.detected", t_detect,
                     component=key, role=kind, latency_s=round(latency, 6))
            obs.histogram("detection_latency_s", kind=kind).observe(latency)
        return t_detect

    def on_server_failure(self, name: str) -> None:
        """A server just died: kill its tasks, schedule detection-time salvage."""
        now = self.engine.now
        killed, district = self.injector.kill_server(name, hard=True)
        self.log.server_failures += 1
        t_detect = self._record_detection(name, "server", now)
        if killed:
            self.engine.schedule_at(
                t_detect, lambda: self._salvage(killed, district),
                label="resilience:salvage")

    def _salvage(self, killed, district: int) -> None:
        rec = self.cfg.recovery
        progress = "checkpoint" if rec.checkpoint else "restart"
        before = self.injector.log.tasks_salvaged
        wasted = self.injector.salvage_tasks(
            killed, district, progress=progress, salvage_edge=rec.retry)
        self.log.wasted_cycles += wasted
        self.log.tasks_salvaged += self.injector.log.tasks_salvaged - before

    def on_server_recovery(self, name: str) -> None:
        """Repaired: back on, empty, eligible for placement again."""
        self.injector.recover_server(name)
        self.log.server_repairs += 1

    def on_master_failure(self, district: int) -> None:
        """Master down: indirect path rejects until failover or repair."""
        now = self.engine.now
        self.injector.fail_master(district)
        self.log.master_failures += 1
        t_detect = self._record_detection(f"master-{district}", "master", now)
        if self.cfg.recovery.failover:
            self.engine.schedule_at(
                t_detect + self.cfg.recovery.failover_takeover_s,
                lambda: self._promote_standby(district),
                label="resilience:failover")

    def _promote_standby(self, district: int) -> None:
        gateway = self.mw.edge_gateways[district]
        if not gateway.master_up:
            gateway.master_up = True
            self.log.failovers += 1
            if self.mw.obs.active:
                self.mw.obs.emit("resilience", "master.failover", self.engine.now,
                                 district=district)

    def on_master_recovery(self, district: int) -> None:
        # after a failover the standby already serves; restoring the original
        # master is then a no-op flag flip, but it clears the injector state
        self.injector.restore_master(district)

    def on_wan_down(self) -> None:
        if not self.injector.wan_partitioned:
            self.injector.partition_wan()
            self.log.wan_flaps += 1

    def on_wan_up(self) -> None:
        if self.injector.wan_partitioned:
            self.injector.heal_wan()

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def _checkpoint_fn(self, district: int):
        cluster = self.mw.clusters[district]

        def tick(now: float, dt: float) -> None:
            for w in cluster.workers:
                if not w.running_tasks:
                    continue
                w.sync()
                for task in w.running_tasks:
                    if task.metadata.get("kind") == "cloud":
                        task.metadata["ckpt_remaining"] = task.remaining_cycles
                        self.log.checkpoints_taken += 1

        return tick

    # ------------------------------------------------------------------ #
    # speculative cloning
    # ------------------------------------------------------------------ #
    def wants_clone(self, req) -> bool:
        """Whether this request should be speculatively duplicated."""
        rec = self.cfg.recovery
        return (rec.clone
                and isinstance(req, EdgeRequest)
                and req.mode is EdgeMode.INDIRECT
                and req.deadline_s <= rec.clone_deadline_threshold_s
                and len(self.mw.edge_gateways) > 1)

    def submit_cloned(self, req: EdgeRequest, district: int) -> None:
        """Submit ``req`` to its district plus a speculative copy to a peer.

        The peer with the most free cores takes the copy (lowest district id
        breaks ties).  The group is attached to *both* members before either
        submission so a synchronous rejection (master down, no retry) stays
        silent while the sibling is in flight.
        """
        peer = min((d for d in sorted(self.mw.clusters) if d != district),
                   key=lambda d: (-self.mw.clusters[d].free_cores(), d))
        clone = copy.copy(req)
        clone.request_id = f"{req.request_id}#clone"
        group = CloneGroup(req, clone, self)
        req.__dict__["_clone_group"] = group
        clone.__dict__["_clone_group"] = group
        self.log.clones_spawned += 1
        if self.mw.obs.active:
            self.mw.obs.emit_span("resilience", "edge.cloned", self.engine.now,
                                  ctx=req, id=req.request_id,
                                  home=district, peer=peer)
        if self.mw.obs.tracer.enabled:
            # the clone's first span hangs off the primary's chain tip so
            # both execution attempts live in one causal tree
            link_spans(clone, req)
        self.mw.edge_gateways[district].submit(req)
        self.mw.edge_gateways[peer].submit(clone)

    def _cancel_loser(self, loser: EdgeRequest) -> None:
        """Cancel the losing clone; preempt it if it is running on a Q.rad."""
        loser.__dict__["_clone_cancelled"] = True
        if loser.status is not RequestStatus.RUNNING or not loser.executed_on:
            return  # queued or in flight: dropped lazily at the next touch
        for d in sorted(self.mw.clusters):
            try:
                worker = self.mw.clusters[d].worker(loser.executed_on)
            except KeyError:
                continue
            try:
                task = worker.preempt(loser.request_id)
            except KeyError:
                return  # completed in the same instant; on_complete discards
            self.log.wasted_cycles += max(0.0, loser.cycles - task.remaining_cycles)
            self.mw.schedulers[d].drain()  # the freed cores can serve queues
            return
        # running in the datacenter: out of preemption reach; its completion
        # will be discarded (and booked as waste) by CloneGroup.on_complete
