"""Stochastic churn: who fails when, driven by the engine.

The paper's §III-C availability concern, made quantitative: DF servers sit in
homes — they get unplugged, lose power with their building, and age faster
when run hot (free cooling).  :class:`ChurnModel` turns those hazards into
engine events:

* **individual server churn** — per-server TTF draws (exponential or
  Weibull) from a *per-server named stream*, so adding a server never
  perturbs another server's failure times; repair times are exponential
  around the MTTR.  With ``aging_coupling``, each TTF is divided by the
  server's current Arrhenius acceleration factor
  (:class:`repro.hardware.aging.AgingModel`): a busy board runs hotter and
  fails sooner;
* **correlated domains** — building-level power cuts and district blackouts
  take whole groups down *together* (overlapping outages max-merge their
  heal times), which is what breaks naive redundancy schemes that place
  replicas in the same blast radius;
* **master churn** and **WAN flapping** — sequential up/down processes per
  district master and for the city↔datacenter link.

The model only decides *timing*; the consequences (kill, detect, salvage,
failover) live in :class:`repro.core.resilience.recovery.RecoveryRuntime`,
which this class calls through its ``on_*`` hooks.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.resilience.config import ChurnConfig
from repro.hardware.aging import AgingModel

__all__ = ["ChurnModel"]

_DAY_S = 86400.0
#: ambient a free-cooled Q.rad sees (a heated room, °C)
_ROOM_AMBIENT_C = 21.0


class ChurnModel:
    """Schedules failure/repair events against a :class:`DF3Middleware`."""

    def __init__(self, middleware, config: ChurnConfig, runtime):
        self.mw = middleware
        self.cfg = config
        self.runtime = runtime
        self.engine = middleware.engine
        self.aging = AgingModel()
        #: server name → absolute heal time of the outage currently holding
        #: it down (individual or domain; overlaps max-merge)
        self._down_until: Dict[str, float] = {}
        self._servers = {
            w.name: w
            for d in sorted(middleware.clusters)
            for w in middleware.clusters[d].workers
        }
        self._buildings: List[str] = sorted(middleware.buildings)
        self._districts: List[int] = sorted(middleware.clusters)

        for name in sorted(self._servers):
            self._schedule_server_failure(name)
        if self.cfg.building_cut_rate_per_day > 0 and self._buildings:
            self._schedule_poisson("churn-building", self.cfg.building_cut_rate_per_day,
                                   self._building_cut)
        if self.cfg.district_blackout_rate_per_day > 0:
            self._schedule_poisson("churn-district", self.cfg.district_blackout_rate_per_day,
                                   self._district_blackout)
        if self.cfg.master_mtbf_s > 0:
            for d in self._districts:
                self._schedule_master_failure(d)
        if self.cfg.wan_flap_rate_per_day > 0 and self.mw.offloader.datacenter is not None:
            self._schedule_poisson("churn-wan", self.cfg.wan_flap_rate_per_day,
                                   self._wan_flap)

    # ------------------------------------------------------------------ #
    # draws
    # ------------------------------------------------------------------ #
    def _server_rng(self, name: str):
        return self.mw.rngs.stream(f"churn-server-{name}")

    def _draw_ttf(self, name: str) -> float:
        cfg = self.cfg
        rng = self._server_rng(name)
        if cfg.failure_dist == "weibull":
            # scale so the distribution's mean equals the configured MTBF
            scale = cfg.server_mtbf_s / math.gamma(1.0 + 1.0 / cfg.weibull_shape)
            ttf = scale * float(rng.weibull(cfg.weibull_shape))
        else:
            ttf = float(rng.exponential(cfg.server_mtbf_s))
        if cfg.aging_coupling:
            server = self._servers[name]
            t_j = self.aging.junction_temperature_c(_ROOM_AMBIENT_C, server.utilization)
            ttf /= max(float(self.aging.acceleration_factor(t_j)), 1e-9)
        return max(ttf, 1.0)

    def _draw_ttr(self, name: str) -> float:
        return max(float(self._server_rng(name).exponential(self.cfg.server_mttr_s)), 1.0)

    # ------------------------------------------------------------------ #
    # individual server churn
    # ------------------------------------------------------------------ #
    def _schedule_server_failure(self, name: str) -> None:
        self.engine.schedule(self._draw_ttf(name),
                             lambda: self._server_fail(name), label="churn:fail")

    def _server_fail(self, name: str) -> None:
        if name in self._down_until:
            # already down via a domain outage: this failure is absorbed;
            # draw the next one so the hazard process keeps running
            self._schedule_server_failure(name)
            return
        ttr = self._draw_ttr(name)
        self._down_until[name] = self.engine.now + ttr
        self.runtime.on_server_failure(name)
        self.engine.schedule(ttr, lambda: self._server_heal(name), label="churn:repair")

    def _server_heal(self, name: str) -> None:
        until = self._down_until.get(name)
        if until is None or until > self.engine.now + 1e-9:
            return  # already healed, or a longer outage extended this one
        del self._down_until[name]
        self.runtime.on_server_recovery(name)
        self._schedule_server_failure(name)

    # ------------------------------------------------------------------ #
    # correlated domains
    # ------------------------------------------------------------------ #
    def _schedule_poisson(self, stream: str, rate_per_day: float, fire) -> None:
        gap = float(self.mw.rngs.stream(stream).exponential(_DAY_S / rate_per_day))

        def event() -> None:
            fire()
            self._schedule_poisson(stream, rate_per_day, fire)

        self.engine.schedule(gap, event, label=f"churn:{stream}")

    def _building_cut(self) -> None:
        rng = self.mw.rngs.stream("churn-building")
        target = self._buildings[int(rng.integers(len(self._buildings)))]
        members = sorted(n for n in self._servers if n.startswith(target + "/"))
        self._domain_outage(members, self.cfg.building_cut_duration_s)

    def _district_blackout(self) -> None:
        rng = self.mw.rngs.stream("churn-district")
        d = self._districts[int(rng.integers(len(self._districts)))]
        prefix = f"district-{d}/"
        members = sorted(n for n in self._servers if n.startswith(prefix))
        self._domain_outage(members, self.cfg.district_blackout_duration_s)

    def _domain_outage(self, members: List[str], duration_s: float) -> None:
        heal_at = self.engine.now + duration_s
        for name in members:
            current = self._down_until.get(name)
            if current is None:
                self._down_until[name] = heal_at
                self.runtime.on_server_failure(name)
            elif current < heal_at:
                self._down_until[name] = heal_at  # extend; old heal no-ops
            else:
                continue  # an outage already outlasts this one
            self.engine.schedule(duration_s, lambda n=name: self._server_heal(n),
                                 label="churn:domain-heal")

    # ------------------------------------------------------------------ #
    # master churn + WAN flapping (sequential up/down processes)
    # ------------------------------------------------------------------ #
    def _schedule_master_failure(self, district: int) -> None:
        rng = self.mw.rngs.stream(f"churn-master-{district}")
        ttf = float(rng.exponential(self.cfg.master_mtbf_s))
        self.engine.schedule(max(ttf, 1.0), lambda: self._master_fail(district),
                             label="churn:master")

    def _master_fail(self, district: int) -> None:
        rng = self.mw.rngs.stream(f"churn-master-{district}")
        ttr = max(float(rng.exponential(self.cfg.master_mttr_s)), 1.0)
        self.runtime.on_master_failure(district)
        self.engine.schedule(ttr, lambda: self._master_heal(district),
                             label="churn:master")

    def _master_heal(self, district: int) -> None:
        self.runtime.on_master_recovery(district)
        self._schedule_master_failure(district)

    def _wan_flap(self) -> None:
        self.runtime.on_wan_down()
        self.engine.schedule(self.cfg.wan_flap_duration_s, self.runtime.on_wan_up,
                             label="churn:wan")

    # ------------------------------------------------------------------ #
    @property
    def down_servers(self) -> List[str]:
        """Servers currently held down by churn."""
        return sorted(self._down_until)
