"""Resilience under churn: failure model, detection, recovery policies.

The paper's §III-C names availability of DF servers as an open problem and
§IV claims decentralisation keeps basic services alive through central-point
failures.  This package makes both testable at city scale:

* :mod:`~repro.core.resilience.config` — :class:`ChurnConfig`,
  :class:`DetectorConfig`, :class:`RecoveryConfig`, bundled into
  :class:`ResilienceConfig` (hand it to ``MiddlewareConfig.resilience``);
* :mod:`~repro.core.resilience.churn` — :class:`ChurnModel`, stochastic
  failures (per-server MTBF/MTTR, correlated domains, master/WAN churn);
* :mod:`~repro.core.resilience.detector` —
  :class:`HeartbeatFailureDetector`, analytic heartbeat-timeout detection;
* :mod:`~repro.core.resilience.recovery` — :class:`RecoveryRuntime` wiring
  retries, speculative clones (cancel-on-completion or cancel-on-start,
  load-gated), checkpoints, master failover and store-and-forward into the
  middleware; :class:`ResilienceLog` for reports;
* :mod:`~repro.core.resilience.policy` — :class:`PolicyController`, adaptive
  per-flow policy selection from measured detection latency and rolling
  utilisation, deterministic under a fixed seed.

Experiment ``A6`` (:mod:`repro.experiments.a6_churn`) compares the recovery
bundles across MTBF levels and reports the waste-vs-deadline Pareto frontier.
"""

from repro.core.resilience.churn import ChurnModel
from repro.core.resilience.config import (
    ChurnConfig,
    DetectorConfig,
    RecoveryConfig,
    ResilienceConfig,
)
from repro.core.resilience.detector import HeartbeatFailureDetector
from repro.core.resilience.policy import PolicyController
from repro.core.resilience.recovery import CloneGroup, RecoveryRuntime, ResilienceLog

__all__ = [
    "ChurnConfig",
    "ChurnModel",
    "CloneGroup",
    "DetectorConfig",
    "HeartbeatFailureDetector",
    "PolicyController",
    "RecoveryConfig",
    "RecoveryRuntime",
    "ResilienceConfig",
    "ResilienceLog",
]
