"""Adaptive per-flow recovery policy selection (the A6 policy engine).

The PS-model analysis of request cloning ("Modeling of Request Cloning in
Cloud Server Systems using Processor Sharing", PAPERS.md) shows speculative
cloning helps exactly while the system has slack: a clone is a free second
chance at low load and pure added load near saturation.  The
:class:`PolicyController` operationalises that at runtime: a periodic engine
process re-picks the recovery discipline of each flow class from two
measured signals —

* the **detection-latency distribution** the heartbeat detector has actually
  delivered so far (before any failure was observed, the detector's analytic
  bound ``timeout_s`` stands in as the prior), and
* the **rolling paying utilisation** of the city (filler work excluded:
  filler is displaced instantly, so those cores are really available).

Decision rule for the *tight* edge class (deadline at or below the clone
threshold): cloning is required whenever one detected failure plus one retry
backoff cannot fit inside the tightest deadline seen so far — retry simply
cannot bridge a crash for such requests — and is otherwise shed when the
rolling utilisation crosses ``adaptive_util_high`` (clones would only add
load), rearming below ``adaptive_util_low``.  The hysteresis band plus a
minimum dwell time make the switch sequence a pure function of simulated
state at eval ticks: the controller consumes no RNG, so adaptive runs stay
byte-reproducible under a fixed seed.

The *loose* edge class keeps retry (its deadlines leave room for backoff)
and the *cloud* class keeps checkpointing (restart-from-scratch is the
dominant waste term of A6).  Every switch is recorded as a ``policy.decision``
trace record and counted in ``ResilienceLog.policy_decisions``; per-request
spawn/skip/cancel decisions are emitted by the
:class:`~repro.core.resilience.recovery.RecoveryRuntime` with the same kind,
threaded into the request's span tree.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.core.resilience.config import ResilienceConfig

__all__ = ["PolicyController", "FLOW_CLASSES"]

#: the flow classes the controller assigns a discipline to
FLOW_CLASSES = ("edge_tight", "edge_loose", "cloud")


class PolicyController:
    """Deterministic per-flow policy selection with hysteresis.

    Owned by the :class:`~repro.core.resilience.recovery.RecoveryRuntime`;
    only constructed when ``RecoveryConfig.adaptive`` is set, so non-adaptive
    configurations register no extra engine process and stay byte-identical
    to the pre-engine behaviour.
    """

    def __init__(self, runtime, config: ResilienceConfig):
        self.runtime = runtime
        self.mw = runtime.mw
        self.cfg = config
        rec = config.recovery
        #: flow class → current discipline
        self.assignment: Dict[str, str] = {
            "edge_tight": "clone" if rec.clone else "retry",
            "edge_loose": "retry" if rec.retry else "none",
            "cloud": "checkpoint" if rec.checkpoint else "restart",
        }
        self._last_switch: Dict[str, float] = {c: float("-inf")
                                               for c in FLOW_CLASSES}
        self._util_window: Deque[float] = deque(maxlen=rec.adaptive_window)
        #: tightest edge deadline the clone path has seen (drives the
        #: retry-can-bridge feasibility check); inf until traffic arrives,
        #: which conservatively keeps cloning armed
        self.min_tight_deadline_s = float("inf")
        self.switches = 0
        self.evals = 0
        self.mw.engine.add_process(
            "policy-controller", rec.adaptive_eval_interval_s, self._evaluate)

    # ------------------------------------------------------------------ #
    # measured inputs
    # ------------------------------------------------------------------ #
    def detection_p99_s(self) -> float:
        """p99 detection latency: measured when failures exist, else the
        detector's analytic worst case (its heartbeat timeout)."""
        log = self.runtime.log
        if log.detection_latencies_s:
            return log.detection_latency_percentile(99)
        return self.runtime.detector.latency_bound_s()

    def city_utilisation(self) -> float:
        """Instantaneous paying utilisation over the whole fleet."""
        busy = total = 0
        for d in sorted(self.mw.clusters):
            b, t = self.runtime.paying_load(d)
            busy += b
            total += t
        return busy / total if total else 1.0

    def rolling_utilisation(self) -> float:
        """Mean of the utilisation window (current sample included)."""
        w = self._util_window
        return sum(w) / len(w) if w else 0.0

    def note_tight_deadline(self, deadline_s: float) -> None:
        """Record the tightest deadline routed through the clone path."""
        if deadline_s < self.min_tight_deadline_s:
            self.min_tight_deadline_s = deadline_s

    def retry_can_bridge(self) -> bool:
        """Whether retry alone covers the tight class: one detected failure
        plus one base backoff must still fit the tightest deadline seen."""
        rec = self.cfg.recovery
        if not rec.retry:
            return False
        budget = self.detection_p99_s() + rec.retry_base_backoff_s
        return budget <= self.min_tight_deadline_s

    # ------------------------------------------------------------------ #
    # the periodic evaluation (engine process; no RNG, state-pure)
    # ------------------------------------------------------------------ #
    def _evaluate(self, now: float, dt: float) -> None:
        self.evals += 1
        self._util_window.append(self.city_utilisation())
        util = self.rolling_utilisation()
        rec = self.cfg.recovery
        cur = self.assignment["edge_tight"]
        if cur == "clone":
            if util > rec.adaptive_util_high:
                self._switch("edge_tight", "retry", now, util,
                             reason="overload")
            elif self.retry_can_bridge():
                self._switch("edge_tight", "retry", now, util,
                             reason="retry_bridges")
        elif cur == "retry" and rec.clone:
            if util < rec.adaptive_util_low and not self.retry_can_bridge():
                self._switch("edge_tight", "clone", now, util,
                             reason="slack")

    def _switch(self, flow_class: str, to: str, now: float, util: float,
                reason: str) -> None:
        rec = self.cfg.recovery
        if now - self._last_switch[flow_class] < rec.adaptive_min_dwell_s:
            return
        frm = self.assignment[flow_class]
        self.assignment[flow_class] = to
        self._last_switch[flow_class] = now
        self.switches += 1
        self.runtime.decide(f"switch_{flow_class}",
                            flow_class=flow_class, frm=frm, to=to,
                            reason=reason, util=round(util, 6),
                            detect_p99_s=round(self.detection_p99_s(), 6))

    # ------------------------------------------------------------------ #
    def clone_active(self) -> bool:
        """Whether the tight edge class is currently assigned cloning."""
        return self.assignment["edge_tight"] == "clone"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot for the twin's ``/api/state`` view."""
        return {
            "assignment": dict(self.assignment),
            "switches": self.switches,
            "evals": self.evals,
            "rolling_utilisation": round(self.rolling_utilisation(), 6),
            "detection_p99_s": round(self.detection_p99_s(), 6),
        }
