"""Architecture class 2: a dedicated edge worker pool (paper §III-B).

"In the second class of DF3 architecture ... a dedicated number of workers
within the set of all workers.  With a dedicated number of workers, we can
guarantee a minimal quality of service ... we can envision to put the
dedicated edge servers in a (virtual) private network to ensure that the
isolation with DCC workers is guaranteed."

Strict partition: edge requests run only on the dedicated pool (the VPN
boundary), DCC only on the rest.  The class's open questions — "How do we
decide on the number of workers?  How do we manage peak of requests?" — are
exactly what experiment E4 sweeps (pool size × load).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.scheduling.base import BaseScheduler
from repro.hardware.server import ComputeServer

__all__ = ["DedicatedWorkersScheduler"]


class DedicatedWorkersScheduler(BaseScheduler):
    """Edge flow confined to the cluster's dedicated pool."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if not self.cluster.edge_dedicated_workers:
            raise ValueError(
                f"cluster {self.cluster.name!r} has no edge-dedicated workers; "
                "dedicate some before using the class-2 architecture"
            )

    def edge_workers(self) -> Sequence[ComputeServer]:
        """Only the dedicated pool (the VPN-isolated edge servers)."""
        return self.cluster.edge_dedicated_workers

    def cloud_workers(self) -> Sequence[ComputeServer]:
        """Only the general pool: DCC never touches edge workers."""
        return self.cluster.general_workers
