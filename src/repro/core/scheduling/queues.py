"""Queue disciplines: FCFS for the cloud flow, EDF for the edge flow.

The cloud flow is throughput work — first-come-first-served is the fair
baseline (and what BOINC-class middleware does).  The edge flow is deadline
work — earliest-deadline-first is the canonical discipline for it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, List, Optional, TypeVar

from repro.core.requests import CloudRequest, EdgeRequest

__all__ = ["FCFSQueue", "EDFQueue"]

T = TypeVar("T")


class FCFSQueue(Generic[T]):
    """A plain FIFO with an urgent-front slot for preempted work.

    Preempted cloud tasks re-enter at the *front* (they already waited their
    turn once) — ``push_front`` — while fresh arrivals append.
    """

    def __init__(self) -> None:
        self._items: List[T] = []

    def push(self, item: T) -> None:
        """Append a fresh arrival."""
        self._items.append(item)

    def push_front(self, item: T) -> None:
        """Re-insert preempted work at the head."""
        self._items.insert(0, item)

    def pop(self) -> T:
        """Remove and return the head; raises IndexError when empty."""
        return self._items.pop(0)

    def peek(self) -> Optional[T]:
        """Head without removal, or None."""
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class EDFQueue:
    """Earliest-absolute-deadline-first priority queue of edge requests."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = itertools.count()

    def push(self, req: EdgeRequest) -> None:
        """Insert by absolute deadline (arrival time + relative deadline)."""
        heapq.heappush(self._heap, (req.time + req.deadline_s, next(self._seq), req))

    def pop(self) -> EdgeRequest:
        """Remove and return the most urgent request."""
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Optional[EdgeRequest]:
        """Most urgent request without removal, or None."""
        return self._heap[0][2] if self._heap else None

    def pop_expired(self, now: float) -> List[EdgeRequest]:
        """Remove every request whose absolute deadline already passed."""
        out: List[EdgeRequest] = []
        while self._heap and self._heap[0][0] < now:
            out.append(heapq.heappop(self._heap)[2])
        return out

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
