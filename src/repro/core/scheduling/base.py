"""Common scheduler machinery for both architecture classes.

A scheduler owns a cluster's queues and the request↔task mapping.  Subclasses
only define which workers are eligible for each flow; saturation handling
(what to do when an edge request finds no free cores — paper §III-B's
preemption / offloading / delay menu) is implemented here once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Sequence

from repro.core.cluster import Cluster
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.core.scheduling.queues import EDFQueue, FCFSQueue
from repro.hardware.server import ComputeServer, Task
from repro.obs import get_obs

__all__ = ["SaturationPolicy", "SchedulerStats", "BaseScheduler"]


class SaturationPolicy(str, Enum):
    """What to do with an edge request when eligible workers are full."""

    QUEUE = "queue"          # EDF-queue it and hope (the 'delay' option)
    PREEMPT = "preempt"      # preempt DCC work (§III-B solution 1)
    VERTICAL = "vertical"    # offload to the datacenter (§III-B solution 2a)
    HORIZONTAL = "horizontal"  # offload to a peer cluster (§III-B solution 2b)
    DECISION = "decision"    # delegate to the automated decision system


@dataclass
class SchedulerStats:
    """Counters exposed for experiments."""

    edge_submitted: int = 0
    edge_placed_immediately: int = 0
    edge_queued: int = 0
    edge_expired: int = 0
    edge_preemptions_triggered: int = 0
    edge_offloaded_vertical: int = 0
    edge_offloaded_horizontal: int = 0
    cloud_submitted: int = 0
    cloud_queued: int = 0
    cloud_preempted: int = 0
    cloud_offloaded_vertical: int = 0


class BaseScheduler(ABC):
    """Queues + placement for one cluster.

    Parameters
    ----------
    cluster: the worker pool.
    engine: simulation engine.
    policy: saturation policy for the edge flow.
    offloader: required for VERTICAL/HORIZONTAL/DECISION policies.
    decision_system: required for the DECISION policy.
    worker_priority: optional key function ordering candidate workers
        (the middleware passes heat-wanted-first so compute lands where heat
        is requested).
    incremental_scans: vector-kernel switch — placement scans run as a
        single first-fit-by-priority pass that only evaluates the priority
        key for workers with free capacity, instead of the scalar
        reference's sort-the-whole-pool rescan.  The chosen worker is
        identical (see :meth:`_best_worker`); only the scan work changes.
    obs: optional :class:`repro.obs.Observability` bundle; defaults to the
        process-wide current one (inactive unless installed).
    """

    def __init__(
        self,
        cluster: Cluster,
        engine,
        policy: SaturationPolicy = SaturationPolicy.QUEUE,
        offloader=None,
        decision_system=None,
        worker_priority: Optional[Callable[[ComputeServer], float]] = None,
        incremental_scans: bool = False,
        obs=None,
    ):
        if policy in (SaturationPolicy.VERTICAL, SaturationPolicy.HORIZONTAL) and offloader is None:
            raise ValueError(f"policy {policy.value} requires an offloader")
        if policy is SaturationPolicy.DECISION and (offloader is None or decision_system is None):
            raise ValueError("DECISION policy requires offloader and decision system")
        self.cluster = cluster
        self.engine = engine
        self.policy = policy
        self.offloader = offloader
        self.decision_system = decision_system
        self.worker_priority = worker_priority
        self.incremental_scans = incremental_scans
        self.obs = obs if obs is not None else get_obs()
        self.cloud_queue: FCFSQueue[CloudRequest] = FCFSQueue()
        self.edge_queue = EDFQueue()
        self.stats = SchedulerStats()
        self.completed_edge: List[EdgeRequest] = []
        self.completed_cloud: List[CloudRequest] = []
        self.expired_edge: List[EdgeRequest] = []
        #: priority-key evaluations performed by placement scans.  The key
        #: function is the expensive part of a scan (dict lookups + regulator
        #: reads per worker); the perf-regression guard asserts this grows
        #: with the number of workers *with free capacity*, not fleet size.
        self.scan_key_evals = 0

    # ------------------------------------------------------------------ #
    # worker eligibility (architecture classes differ here)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def edge_workers(self) -> Sequence[ComputeServer]:
        """Workers eligible for edge requests."""

    @abstractmethod
    def cloud_workers(self) -> Sequence[ComputeServer]:
        """Workers eligible for cloud requests."""

    def _ordered(self, workers: Sequence[ComputeServer]) -> List[ComputeServer]:
        if self.worker_priority is None:
            return list(workers)
        self.scan_key_evals += len(workers)
        return sorted(workers, key=self.worker_priority)

    def _best_worker(self, workers: Sequence[ComputeServer], cores: int):
        """First worker, in priority order, with ``cores`` free.

        Equivalent to ``self._ordered(workers)`` followed by a first-fit
        probe — ``sorted`` is stable and a strict ``<`` keeps the earliest
        minimum, so the chosen worker is identical — but the priority key is
        only evaluated for workers that can actually host the request, which
        keeps placement scans O(workers with capacity) instead of
        O(fleet · log fleet) in key work.
        """
        key_fn = self.worker_priority
        if key_fn is None:
            for w in workers:
                if w.free_cores >= cores:
                    return w
            return None
        best = None
        best_key = None
        for w in workers:
            if w.free_cores < cores:
                continue
            self.scan_key_evals += 1
            key = key_fn(w)
            if best is None or key < best_key:
                best, best_key = w, key
        return best

    # ------------------------------------------------------------------ #
    # placement primitives
    # ------------------------------------------------------------------ #
    def _make_task(self, req, kind: str) -> Task:
        return Task(
            task_id=req.request_id,
            work_cycles=req.cycles,
            cores=req.cores,
            on_complete=lambda task, now: self._on_task_complete(req, kind, now),
            metadata={"request": req, "kind": kind},
        )

    def _note_placed(self, req, kind: str, worker_name: str) -> None:
        """Record a successful placement on the request and the trace."""
        req.status = RequestStatus.RUNNING
        req.started_at = self.engine.now
        req.executed_on = worker_name
        if kind == "edge":
            group = req.__dict__.get("_clone_group")
            if group is not None:
                # cancel-on-start discipline: the first member to reach a
                # server cancels its sibling before it can burn cycles
                group.on_start(req)
        obs = self.obs
        if obs.active:
            obs.emit_span("request", f"{kind}.scheduled", self.engine.now,
                          ctx=req, id=req.request_id, worker=worker_name,
                          cluster=self.cluster.name)
            obs.counter("requests_scheduled", flow=kind,
                        cluster=self.cluster.name).inc()
            obs.histogram("placement_wait_s", flow=kind).observe(
                self.engine.now - req.time)

    def _try_place(self, req, kind: str, workers: Sequence[ComputeServer]) -> bool:
        ordered = None
        if self.incremental_scans:
            w = self._best_worker(workers, req.cores)
            if w is not None and w.submit(self._make_task(req, kind)):
                self._note_placed(req, kind, w.name)
                return True
        else:
            ordered = self._ordered(workers)
            for w in ordered:
                if w.free_cores >= req.cores:
                    if w.submit(self._make_task(req, kind)):
                        self._note_placed(req, kind, w.name)
                        return True
        # no plain room: evict filler chunks (BOINC-class heat work is always
        # displaceable by paying requests) and retry
        if ordered is None:
            ordered = self._ordered(workers)
        for w in ordered:
            if not w.enabled:
                continue
            filler = [t for t in w.running_tasks if t.metadata.get("kind") == "filler"]
            filler_cores = sum(t.cores for t in filler)
            if w.free_cores + filler_cores < req.cores:
                continue
            for t in filler:
                if w.free_cores >= req.cores:
                    break
                w.preempt(t.task_id)
            if w.free_cores >= req.cores and w.submit(self._make_task(req, kind)):
                self._note_placed(req, kind, w.name)
                return True
        return False

    def _on_task_complete(self, req, kind: str, now: float) -> None:
        if kind == "edge":
            group = req.__dict__.get("_clone_group")
            if group is not None:
                req = group.on_complete(req, now)
                if req is None:  # the losing clone: result discarded
                    self.drain()
                    return
        ret = float(req.__dict__.get("_return_delay_s", 0.0))
        if ret > 0:
            self.engine.schedule(ret, lambda: req.mark_completed(self.engine.now))
        else:
            req.mark_completed(now)
        if kind == "edge":
            self.completed_edge.append(req)
        else:
            self.completed_cloud.append(req)
        obs = self.obs
        if obs.active:
            service = now - req.started_at if req.started_at >= 0 else 0.0
            done_at = now + ret  # == completed_at once any return delay lands
            extra = {}
            if kind == "edge":
                extra = {"resp_s": done_at - req.time,
                         "ok": done_at - req.time <= req.deadline_s + 1e-12}
            obs.emit_span("request", f"{kind}.completed", now, ctx=req,
                          dur=service, id=req.request_id,
                          worker=req.executed_on, cluster=self.cluster.name,
                          **extra)
            obs.counter("requests_completed", flow=kind,
                        cluster=self.cluster.name).inc()
            obs.histogram("service_time_s", flow=kind).observe(service)
        self.drain()

    # ------------------------------------------------------------------ #
    # submission API
    # ------------------------------------------------------------------ #
    def _note_admitted(self, req, kind: str) -> None:
        obs = self.obs
        if obs.active:
            obs.emit_span("request", f"{kind}.admitted", self.engine.now,
                          ctx=req, id=req.request_id, cluster=self.cluster.name)
            obs.counter("requests_admitted", flow=kind,
                        cluster=self.cluster.name).inc()

    def submit_cloud(self, req: CloudRequest) -> None:
        """Admit a cloud request: place now or FCFS-queue."""
        self.stats.cloud_submitted += 1
        self._note_admitted(req, "cloud")
        if not self._try_place(req, "cloud", self.cloud_workers()):
            req.status = RequestStatus.QUEUED
            self.cloud_queue.push(req)
            self.stats.cloud_queued += 1
            if self.obs.active:
                self.obs.emit_span("request", "cloud.queued", self.engine.now,
                                   ctx=req, id=req.request_id,
                                   cluster=self.cluster.name)
                self.obs.counter("requests_queued", flow="cloud",
                                 cluster=self.cluster.name).inc()

    def reject_edge(self, req: EdgeRequest, reason: str = "rejected") -> None:
        """Terminally fail an edge request (expiry, outage, decision reject).

        Clone-aware: a member of a speculative-clone pair only lands in
        ``expired_edge`` once its sibling is also dead; while the sibling is
        still in flight the failure is silent (first completion may yet win).
        """
        group = req.__dict__.get("_clone_group")
        if group is not None:
            req = group.on_failure(req)
            if req is None:
                return
        req.mark_rejected()
        self.expired_edge.append(req)
        self.stats.edge_expired += 1
        if self.obs.active:
            name = "edge.expired" if reason == "expired" else "edge.rejected"
            self.obs.emit_span("request", name, self.engine.now,
                               ctx=req, id=req.request_id, reason=reason,
                               cluster=self.cluster.name)
            self.obs.counter("requests_expired", flow="edge",
                             cluster=self.cluster.name).inc()

    def submit_edge(self, req: EdgeRequest) -> None:
        """Admit an edge request: place now or apply the saturation policy."""
        if req.__dict__.get("_clone_cancelled"):
            return  # its sibling already won while this copy was in flight
        self.stats.edge_submitted += 1
        self._note_admitted(req, "edge")
        if self._try_place(req, "edge", self.edge_workers()):
            self.stats.edge_placed_immediately += 1
            return
        self._handle_edge_saturation(req)

    # ------------------------------------------------------------------ #
    # saturation handling (§III-B)
    # ------------------------------------------------------------------ #
    def _handle_edge_saturation(self, req: EdgeRequest) -> None:
        policy = self.policy
        if policy is SaturationPolicy.DECISION:
            self._apply_decision(req)
            return
        if policy is SaturationPolicy.PREEMPT and self._preempt_for(req):
            return
        if policy is SaturationPolicy.VERTICAL and self._offload_vertical(req):
            return
        if policy is SaturationPolicy.HORIZONTAL and self._offload_horizontal(req):
            return
        self._enqueue_edge(req)

    def _enqueue_edge(self, req: EdgeRequest) -> None:
        req.status = RequestStatus.QUEUED
        self.edge_queue.push(req)
        self.stats.edge_queued += 1
        if self.obs.active:
            self.obs.emit_span("request", "edge.queued", self.engine.now,
                               ctx=req, id=req.request_id,
                               cluster=self.cluster.name)
            self.obs.counter("requests_queued", flow="edge",
                             cluster=self.cluster.name).inc()

    def _preempt_for(self, req: EdgeRequest) -> bool:
        """Free ``req.cores`` on one edge-eligible worker by preempting DCC.

        Chooses the worker where preempting the *fewest* cloud tasks
        suffices; preempted requests re-enter the cloud queue head with their
        remaining work preserved.
        """
        best: Optional[tuple] = None
        for w in self.edge_workers():
            if not w.enabled:
                continue
            victims = self._select_victims(w, req.cores - w.free_cores)
            if victims is not None:
                cand = (len(victims), w, victims)
                if best is None or cand[0] < best[0]:
                    best = cand
        if best is None:
            return False
        _, worker, victims = best
        for task in victims:
            preempted = worker.preempt(task.task_id)
            creq: CloudRequest = preempted.metadata["request"]
            creq.status = RequestStatus.QUEUED
            creq.cycles = max(preempted.remaining_cycles, 1.0)
            self.cloud_queue.push_front(creq)
            self.stats.cloud_preempted += 1
            if self.obs.active:
                self.obs.emit_span("request", "cloud.preempted", self.engine.now,
                                   ctx=creq, id=creq.request_id,
                                   worker=worker.name,
                                   for_request=req.request_id)
                self.obs.counter("requests_preempted", flow="cloud",
                                 cluster=self.cluster.name).inc()
        self.stats.edge_preemptions_triggered += 1
        placed = self._try_place(req, "edge", [worker])
        if not placed:  # pragma: no cover - defensive; victims freed the cores
            self._enqueue_edge(req)
        return placed

    @staticmethod
    def _select_victims(worker: ComputeServer, cores_needed: int):
        """Smallest set of preemptible cloud tasks freeing ``cores_needed``."""
        if cores_needed <= 0:
            return []
        candidates = [
            t
            for t in worker.running_tasks
            if t.metadata.get("kind") == "cloud"
            and t.metadata["request"].preemptible
        ]
        candidates.sort(key=lambda t: -t.cores)  # big victims first: fewest kills
        victims, freed = [], 0
        for t in candidates:
            victims.append(t)
            freed += t.cores
            if freed >= cores_needed:
                return victims
        return None

    def _offload_vertical(self, req: EdgeRequest) -> bool:
        if self.offloader is None or not self.offloader.can_vertical(req):
            return False
        self.offloader.vertical(req, self)
        self.stats.edge_offloaded_vertical += 1
        return True

    def _offload_horizontal(self, req: EdgeRequest) -> bool:
        if self.offloader is None:
            return False
        if req.__dict__.get("_offloaded_once"):
            return False  # no ping-pong between clusters
        if not self.offloader.horizontal(req, self):
            return False
        self.stats.edge_offloaded_horizontal += 1
        return True

    def _apply_decision(self, req: EdgeRequest) -> None:
        from repro.core.decision import Decision

        choice = self.decision_system.decide(req, self)
        if choice is Decision.PREEMPT and self._preempt_for(req):
            return
        if choice is Decision.HORIZONTAL and self._offload_horizontal(req):
            return
        if choice is Decision.VERTICAL and self._offload_vertical(req):
            return
        if choice is Decision.REJECT:
            self.reject_edge(req, reason="decision")
            return
        self._enqueue_edge(req)  # LOCAL-but-full, QUEUE, DELAY all land here

    # ------------------------------------------------------------------ #
    # queue draining
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Serve queued work after capacity freed up (EDF first, then FCFS)."""
        now = self.engine.now
        for stale in self.edge_queue.pop_expired(now):
            if stale.__dict__.get("_clone_cancelled"):
                continue  # sibling already completed; nothing to record
            self.reject_edge(stale, reason="expired")
        while self.edge_queue:
            head = self.edge_queue.peek()
            if head.__dict__.get("_clone_cancelled"):
                self.edge_queue.pop()
                continue
            if not self._try_place(head, "edge", self.edge_workers()):
                break
            self.edge_queue.pop()
        while self.cloud_queue:
            head = self.cloud_queue.peek()
            if not self._try_place(head, "cloud", self.cloud_workers()):
                break
            self.cloud_queue.pop()

    # ------------------------------------------------------------------ #
    def edge_deadline_miss_rate(self) -> float:
        """Fraction of finished edge requests that missed their deadline.

        Expired (never-served) requests count as misses.
        """
        served = self.completed_edge
        finished = len(served) + len(self.expired_edge)
        if finished == 0:
            return 0.0
        misses = sum(1 for r in served if not r.deadline_met()) + len(self.expired_edge)
        return misses / finished
