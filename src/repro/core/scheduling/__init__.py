"""Cluster scheduling: the paper's two architecture classes and peak policies.

* :class:`~repro.core.scheduling.shared.SharedWorkersScheduler` — architecture
  **class 1**: every worker may serve edge or DCC requests; saturation is
  handled by a configurable policy (queue / preempt / offload / delay /
  decision-system).
* :class:`~repro.core.scheduling.dedicated.DedicatedWorkersScheduler` —
  architecture **class 2**: a reserved worker pool guarantees edge QoS; DCC
  runs on the rest.

Queue disciplines live in :mod:`repro.core.scheduling.queues` (FCFS for the
cloud flow, EDF for the edge flow).
"""

from repro.core.scheduling.base import BaseScheduler, SaturationPolicy, SchedulerStats
from repro.core.scheduling.dedicated import DedicatedWorkersScheduler
from repro.core.scheduling.queues import EDFQueue, FCFSQueue
from repro.core.scheduling.shared import SharedWorkersScheduler

__all__ = [
    "BaseScheduler",
    "DedicatedWorkersScheduler",
    "EDFQueue",
    "FCFSQueue",
    "SaturationPolicy",
    "SchedulerStats",
    "SharedWorkersScheduler",
]
