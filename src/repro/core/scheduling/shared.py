"""Architecture class 1: shared workers (paper §III-B).

"In the first class of DF3 architecture, workers can either service edge or
DCC requests."  Maximum utilisation, contended QoS: every worker is eligible
for both flows, and the saturation policy decides what happens when an edge
request meets a full cluster.

The paper also raises **context switching** ("the environment deployed on
nodes must cover the need of edge and DCC requests.  Otherwise, we should be
able to reboot workers") — modelled as an optional per-worker switch cost paid
whenever a worker changes the *kind* of task it runs.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.scheduling.base import BaseScheduler
from repro.hardware.server import ComputeServer

__all__ = ["SharedWorkersScheduler"]


class SharedWorkersScheduler(BaseScheduler):
    """Every worker serves both flows.

    Parameters
    ----------
    context_switch_s:
        Cost (seconds of extra work-time, modelled as added cycles at the
        worker's top frequency) paid when a worker that last ran one flow
        starts a task of the other flow.  0 disables the model — e.g. when
        a single container environment covers both flows.
    """

    def __init__(self, *args, context_switch_s: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        if context_switch_s < 0:
            raise ValueError("context switch cost must be >= 0")
        self.context_switch_s = float(context_switch_s)
        self._last_kind: Dict[str, str] = {}
        self.context_switches = 0

    def edge_workers(self) -> Sequence[ComputeServer]:
        """All cluster workers."""
        return self.cluster.workers

    def cloud_workers(self) -> Sequence[ComputeServer]:
        """All cluster workers."""
        return self.cluster.workers

    def _try_place(self, req, kind: str, workers) -> bool:
        if self.context_switch_s == 0.0:
            return super()._try_place(req, kind, workers)
        for w in self._ordered(workers):
            if w.free_cores >= req.cores:
                penalty_cycles = 0.0
                if self._last_kind.get(w.name, kind) != kind:
                    top = w.spec.ladder.top.freq_ghz * 1e9
                    penalty_cycles = self.context_switch_s * top * req.cores
                    self.context_switches += 1
                task = self._make_task(req, kind)
                task.work_cycles += penalty_cycles
                task.remaining_cycles += penalty_cycles
                if w.submit(task):
                    self._last_kind[w.name] = kind
                    self._note_placed(req, kind, w.name)
                    return True
        return False
