"""Heat-demand / thermosensitivity prediction (paper §III-C).

"A solution to manage the variability in heat demand is to build a predictive
computing platform, with a model to predict the heat demand and the
thermosensitivity in houses equipped with DF servers.  Several studies reveal
that the thermosensitivity is in general correlated to the external weather."

The standard utility-industry model is piecewise linear in outdoor
temperature: demand is zero above a base temperature and grows linearly as it
gets colder,

.. math:: \\hat D(T) = s \\cdot \\max(T_{base} - T, 0)

where ``s`` (W/°C) is the **thermosensitivity**.  :class:`ThermosensitivityModel`
fits ``(s, T_base)`` from observed (temperature, demand) pairs by a grid
search on the base temperature with a closed-form least-squares slope — small,
dependency-free, and exactly the shape the smart-grid manager needs to
forecast tomorrow's compute capacity from a weather forecast.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["ThermosensitivityModel"]


class ThermosensitivityModel:
    """Piecewise-linear heat-demand predictor.

    Use :meth:`fit` on history, then :meth:`predict` on forecast temperatures.
    """

    def __init__(self) -> None:
        self.sensitivity_w_per_c: float = 0.0
        self.base_temp_c: float = 18.0
        self.r2: float = 0.0
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, outdoor_temps_c, demands_w,
            base_grid=None) -> Tuple[float, float]:
        """Fit ``(sensitivity, base_temp)`` to observations.

        Parameters
        ----------
        outdoor_temps_c, demands_w:
            Paired observations (arrays of equal length >= 3).
        base_grid:
            Candidate base temperatures; default 10..24 °C by 0.5.

        Returns
        -------
        ``(sensitivity_w_per_c, base_temp_c)``.
        """
        t = np.asarray(outdoor_temps_c, dtype=float)
        d = np.asarray(demands_w, dtype=float)
        if t.shape != d.shape or t.size < 3:
            raise ValueError("need >= 3 paired observations")
        if np.any(d < 0):
            raise ValueError("demand cannot be negative")
        if base_grid is None:
            base_grid = np.arange(10.0, 24.01, 0.5)

        best = (0.0, float(base_grid[0]), -np.inf)
        ss_tot = float(np.sum((d - d.mean()) ** 2))
        for base in base_grid:
            x = np.maximum(base - t, 0.0)
            xx = float(x @ x)
            if xx == 0.0:
                continue
            slope = float(x @ d) / xx  # LS through origin
            if slope < 0:
                continue
            resid = d - slope * x
            ss_res = float(resid @ resid)
            r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
            if r2 > best[2]:
                best = (slope, float(base), r2)
        self.sensitivity_w_per_c, self.base_temp_c, self.r2 = best
        if not np.isfinite(self.r2):
            self.r2 = 0.0
        self._fitted = True
        return self.sensitivity_w_per_c, self.base_temp_c

    def predict(self, outdoor_temps_c):
        """Predicted demand (W) for forecast temperature(s)."""
        if not self._fitted:
            raise RuntimeError("fit() the model first")
        t = np.asarray(outdoor_temps_c, dtype=float)
        out = self.sensitivity_w_per_c * np.maximum(self.base_temp_c - t, 0.0)
        return float(out) if out.ndim == 0 else out

    # ------------------------------------------------------------------ #
    def predict_capacity_cores(self, outdoor_temps_c, watts_per_core: float,
                               fleet_cores: int):
        """Compute capacity (cores) unlocked by the predicted heat demand.

        The DF3 coupling: heat demand caps how much server power may run, so
        ``cores = min(demand / watts_per_core, fleet)``.  Used by E3/E8.
        """
        if watts_per_core <= 0 or fleet_cores < 0:
            raise ValueError("watts_per_core must be > 0, fleet >= 0")
        demand = np.asarray(self.predict(outdoor_temps_c), dtype=float)
        cores = np.minimum(demand / watts_per_core, float(fleet_cores))
        return float(cores) if cores.ndim == 0 else cores
