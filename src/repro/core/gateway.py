"""Edge and DCC gateways (paper Fig. 5).

"In both classes each DF server could either run: an edge gateway system, a
DCC gateway system or a worker system.  The gateways receive external
computing requests and assign them to workers ...  The edge gateway will
differ from the DCC gateway on the network interface it supports."

* :class:`EdgeGateway` — fronts one cluster on the **low-power network**:
  a request pays its radio delivery delay, then (indirect mode) the master's
  handling overhead, before reaching the scheduler.  Direct requests go
  straight to a named server's local LAN, skipping the master but losing
  placement choice (and raising the §II-C security flags, which we record).
* :class:`DCCGateway` — fronts the cluster on the **Internet**: WAN delivery,
  then the scheduler's cloud queue.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.requests import CloudRequest, EdgeMode, EdgeRequest, RequestStatus
from repro.hardware.server import ComputeServer, Task
from repro.network.link import Link
from repro.network.lowpower import LowPowerLink, LowPowerProtocol, ZIGBEE
from repro.obs import get_obs

__all__ = ["EdgeGateway", "DCCGateway"]

#: LAN delay of the direct device→server path (one Ethernet/WiFi hop)
_DIRECT_LAN_S = 0.001


class EdgeGateway:
    """Low-power-network front door of one cluster.

    Parameters
    ----------
    scheduler: the cluster's scheduler (either architecture class).
    engine: simulation engine.
    protocol: low-power protocol of the building fabric (default Zigbee).
    rng: optional jitter stream for the radio links.
    """

    def __init__(self, scheduler, engine, protocol: LowPowerProtocol = ZIGBEE,
                 rng=None, obs=None):
        self.scheduler = scheduler
        self.engine = engine
        self.protocol = protocol
        self.rng = rng
        self.obs = obs if obs is not None else get_obs()
        self._links: Dict[str, LowPowerLink] = {}
        self.received = 0
        self.direct_requests = 0
        self.direct_rejections = 0
        #: first-class master state: while False the indirect path rejects
        #: (the §IV central-point failure), but obs instrumentation keeps
        #: recording and the direct path keeps working.
        self.master_up = True
        #: optional retry policy (``repro.core.resilience.RecoveryConfig``-like
        #: object with retry_* fields) + jitter stream, installed by the
        #: resilience runtime; None = reject immediately, the legacy behaviour.
        self.retry_policy = None
        self.retry_rng = None
        self.retries = 0

    def _link_for(self, source: str) -> LowPowerLink:
        link = self._links.get(source)
        if link is None:
            link = LowPowerLink(self.protocol, rng=self.rng,
                                jitter_std_s=0.002 if self.rng is not None else 0.0)
            self._links[source] = link
        return link

    # ------------------------------------------------------------------ #
    def submit(self, req: EdgeRequest, direct_target: Optional[ComputeServer] = None) -> None:
        """Accept an edge request from a device.

        Indirect requests ride the radio to the gateway, pay the master
        overhead and enter the scheduler.  Direct requests need a
        ``direct_target`` server; if it cannot take the task immediately the
        request is rejected (no master to queue it — the §II-C trade-off).
        """
        self.received += 1
        if self.obs.active:
            self.obs.emit_span("request", "edge.received", self.engine.now,
                               ctx=req, id=req.request_id, mode=req.mode.value,
                               cluster=self.scheduler.cluster.name)
            self.obs.counter("gateway_received", flow="edge",
                             cluster=self.scheduler.cluster.name).inc()
        if req.mode is not EdgeMode.DIRECT and not self.master_up:
            # the master is the indirect path's single point of failure
            # (§IV); the request never reaches the radio link
            self._reject_or_retry(req)
            return
        link = self._link_for(req.source or "unknown")
        delivered = link.send(self.engine.now, int(req.input_bytes))
        radio_delay = delivered - self.engine.now
        req.network_delay_s += radio_delay

        if req.mode is EdgeMode.DIRECT:
            if direct_target is None:
                raise ValueError("direct edge request needs a target server")
            self.direct_requests += 1
            self.engine.schedule(radio_delay + _DIRECT_LAN_S,
                                 lambda: self._direct_place(req, direct_target))
        else:
            overhead = self.scheduler.cluster.config.master_overhead_s
            req.network_delay_s += overhead
            self.engine.schedule(radio_delay + overhead,
                                 lambda: self.scheduler.submit_edge(req))

    def resubmit(self, req: EdgeRequest) -> None:
        """Re-enter a request that already paid its delivery delays.

        Used for crash salvage and retries: the request reaches the scheduler
        synchronously (no second radio trip), but a down master still rejects
        it — outages apply to salvage exactly as to fresh traffic.
        """
        if req.__dict__.get("_clone_cancelled"):
            return
        if not self.master_up:
            self._reject_or_retry(req, via_resubmit=True)
            return
        self.scheduler.submit_edge(req)

    def _reject_or_retry(self, req: EdgeRequest, via_resubmit: bool = False) -> None:
        """Master-down handling: back off and retry when configured, else reject."""
        pol = self.retry_policy
        if pol is not None and pol.retry:
            attempt = req.__dict__.get("_retry_attempts", 0)
            delay = pol.retry_base_backoff_s * (2.0 ** attempt)
            if self.retry_rng is not None and pol.retry_jitter_s > 0:
                delay += float(self.retry_rng.random()) * pol.retry_jitter_s
            deadline_at = req.time + req.deadline_s
            if (attempt < pol.retry_max_attempts
                    and self.engine.now + delay <= deadline_at):
                req.__dict__["_retry_attempts"] = attempt + 1
                self.retries += 1
                if self.obs.active:
                    self.obs.emit_span("request", "edge.retry", self.engine.now,
                                       ctx=req, id=req.request_id,
                                       attempt=attempt + 1,
                                       backoff_s=round(delay, 6))
                    self.obs.counter("edge_retries",
                                     cluster=self.scheduler.cluster.name).inc()
                resub = self.resubmit if via_resubmit else self.submit
                self.engine.schedule(delay, lambda: resub(req),
                                     label="gateway:retry")
                return
        self.scheduler.reject_edge(req, reason="master_down")

    def _direct_place(self, req: EdgeRequest, server: ComputeServer) -> None:
        task = Task(
            task_id=req.request_id,
            work_cycles=req.cycles,
            cores=req.cores,
            on_complete=lambda t, now: self._direct_done(req, now),
            metadata={"request": req, "kind": "edge"},
        )
        if server.free_cores >= req.cores and server.submit(task):
            req.status = RequestStatus.RUNNING
            req.started_at = self.engine.now
            req.executed_on = server.name
            if self.obs.active:
                self.obs.emit_span("request", "edge.scheduled", self.engine.now,
                                   ctx=req, id=req.request_id,
                                   worker=server.name,
                                   cluster=self.scheduler.cluster.name)
                self.obs.counter("requests_scheduled", flow="edge",
                                 cluster=self.scheduler.cluster.name).inc()
                self.obs.histogram("placement_wait_s", flow="edge").observe(
                    self.engine.now - req.time)
        else:
            self.direct_rejections += 1
            self.scheduler.reject_edge(req, reason="direct_full")

    def _direct_done(self, req: EdgeRequest, now: float) -> None:
        req.mark_completed(now + _DIRECT_LAN_S)
        self.scheduler.completed_edge.append(req)
        obs = self.obs
        if obs.active:
            service = now - req.started_at if req.started_at >= 0 else 0.0
            obs.emit_span("request", "edge.completed", now, ctx=req, dur=service,
                          id=req.request_id, worker=req.executed_on,
                          cluster=self.scheduler.cluster.name,
                          resp_s=req.completed_at - req.time,
                          ok=req.deadline_met())
            obs.counter("requests_completed", flow="edge",
                        cluster=self.scheduler.cluster.name).inc()
            obs.histogram("service_time_s", flow="edge").observe(service)
        self.scheduler.drain()


class DCCGateway:
    """Internet front door of one cluster."""

    def __init__(self, scheduler, engine, wan: Link, obs=None):
        self.scheduler = scheduler
        self.engine = engine
        self.wan = wan
        self.obs = obs if obs is not None else get_obs()
        self.received = 0

    def submit(self, req: CloudRequest) -> None:
        """Accept a cloud request from the Internet (uplink delay applies)."""
        self.received += 1
        if self.obs.active:
            self.obs.emit_span("request", "cloud.received", self.engine.now,
                               ctx=req, id=req.request_id,
                               cluster=self.scheduler.cluster.name)
            self.obs.counter("gateway_received", flow="cloud",
                             cluster=self.scheduler.cluster.name).inc()
        delay = self.wan.delay(req.input_bytes)
        req.network_delay_s += delay
        req.__dict__["_return_delay_s"] = (
            float(req.__dict__.get("_return_delay_s", 0.0))
            + self.wan.expected_delay(req.output_bytes)
        )
        self.engine.schedule(delay, lambda: self.scheduler.submit_cloud(req))
