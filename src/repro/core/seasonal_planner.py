"""Seasonal campaign planning (paper §IV).

"With data furnace, the variability is also on the number of computing
capacity: in winter, the heat demand increases the computing power that is
then reduced in the summer."  A batch customer with a deadline months away
should therefore *schedule around the seasons*: run in cheap, abundant winter
capacity and avoid the scarce summer.

:func:`plan_campaign` allocates a campaign's core-hours across the months
before its deadline, greedily filling the cheapest months first under the
capacity profile — the planning primitive a §IV-style SLA designer would
expose to customers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.pricing import SeasonalPricing

__all__ = ["CampaignPlan", "plan_campaign"]


@dataclass(frozen=True)
class CampaignPlan:
    """Result of planning one campaign."""

    allocation: Dict[int, float]   # month → core-hours
    total_cost_eur: float
    feasible: bool
    unplaced_core_hours: float

    @property
    def months_used(self) -> List[int]:
        """Months with non-zero allocation, chronological."""
        return [m for m in sorted(self.allocation) if self.allocation[m] > 0]

    def mean_price(self) -> float:
        """€ per core-hour actually paid."""
        placed = sum(self.allocation.values())
        return self.total_cost_eur / placed if placed > 0 else 0.0


def plan_campaign(
    core_hours: float,
    months: Tuple[int, ...],
    pricing: SeasonalPricing,
    capacity_share: float = 0.5,
) -> CampaignPlan:
    """Allocate ``core_hours`` over ``months``, cheapest-first.

    Parameters
    ----------
    core_hours: campaign demand.
    months: admissible months (ordered as the customer's window, e.g.
        ``(10, 11, 12, 1, 2)`` for an autumn-to-winter window).
    pricing: seasonal capacity + price model (one sellable capacity per month).
    capacity_share: fraction of each month's capacity one campaign may take
        (an operator never sells a whole month to one customer).

    Returns
    -------
    :class:`CampaignPlan`; ``feasible`` is False when the window cannot hold
    the demand, with the shortfall in ``unplaced_core_hours``.
    """
    if core_hours < 0:
        raise ValueError("core_hours must be >= 0")
    if not months:
        raise ValueError("need at least one admissible month")
    if not 0 < capacity_share <= 1:
        raise ValueError("capacity_share must be in (0, 1]")
    seen = set()
    for m in months:
        if m in seen:
            raise ValueError(f"month {m} listed twice")
        seen.add(m)

    by_price = sorted(months, key=lambda m: (pricing.spot_price(m), m))
    remaining = float(core_hours)
    allocation: Dict[int, float] = {m: 0.0 for m in months}
    cost = 0.0
    for m in by_price:
        if remaining <= 0:
            break
        sellable = pricing.capacity[m] * capacity_share
        take = min(sellable, remaining)
        if take > 0:
            allocation[m] = take
            cost += pricing.monthly_revenue(m, take)
            remaining -= take
    return CampaignPlan(
        allocation=allocation,
        total_cost_eur=cost,
        feasible=remaining <= 1e-9,
        unplaced_core_hours=max(remaining, 0.0),
    )
