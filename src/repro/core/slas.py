"""SLA classes for a seasonal cloud (paper §IV).

"We are convinced that for SLAs designers, data furnace is a field of research
that can still lead to very innovative proposals."  The innovation the paper
points at: capacity is *seasonal*, so guarantees must be too.  This module
provides the vocabulary:

* :class:`SLATerm` — a latency-percentile guarantee for a flow (e.g. "95% of
  edge requests within 1 s"), optionally restricted to a month set, with a
  per-violated-request penalty;
* :class:`SLAContract` — a set of terms plus an availability floor;
* :class:`SLAAuditor` — checks a finished run's request lists against a
  contract and prices the violations.

The seasonal restriction is what makes DF SLAs novel: a contract can promise
hard guarantees November–March (capacity is physically guaranteed by heat
demand) and only best-effort in July.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.requests import EdgeRequest, RequestStatus
from repro.sim.calendar import SimCalendar

__all__ = ["SLATerm", "SLAContract", "SLAViolation", "SLAAuditor"]


@dataclass(frozen=True)
class SLATerm:
    """One guarantee: ``percentile`` of requests complete within ``latency_s``.

    ``months`` restricts the term's applicability (None = year-round) — the
    §IV seasonality knob.
    """

    name: str
    latency_s: float
    percentile: float = 95.0
    months: Optional[Tuple[int, ...]] = None
    penalty_eur_per_violation: float = 0.01

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise ValueError("latency bound must be > 0")
        if not 0 < self.percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.penalty_eur_per_violation < 0:
            raise ValueError("penalty must be >= 0")
        if self.months is not None and any(not 1 <= m <= 12 for m in self.months):
            raise ValueError("months must be in 1..12")

    def applies_at(self, t: float, cal: SimCalendar) -> bool:
        """Whether the term covers a request arriving at ``t``."""
        return self.months is None or cal.month(t) in self.months


@dataclass(frozen=True)
class SLAContract:
    """A named bundle of terms plus a completion-rate floor."""

    name: str
    terms: Tuple[SLATerm, ...]
    min_completion_rate: float = 0.99

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("contract needs at least one term")
        if not 0 < self.min_completion_rate <= 1:
            raise ValueError("completion-rate floor must be in (0, 1]")

    @staticmethod
    def winter_edge() -> "SLAContract":
        """The canonical DF3 seasonal contract: hard in winter, soft in summer."""
        return SLAContract(
            name="seasonal-edge",
            terms=(
                SLATerm("winter-hard", latency_s=0.5, percentile=95.0,
                        months=(11, 12, 1, 2, 3), penalty_eur_per_violation=0.05),
                SLATerm("year-soft", latency_s=2.0, percentile=90.0,
                        months=None, penalty_eur_per_violation=0.01),
            ),
            min_completion_rate=0.98,
        )


@dataclass(frozen=True)
class SLAViolation:
    """One breached term with its evidence."""

    term: str
    achieved_latency_s: float
    bound_s: float
    violating_requests: int
    penalty_eur: float


class SLAAuditor:
    """Audits request outcomes against a contract."""

    def __init__(self, contract: SLAContract):
        self.contract = contract
        self._cal = SimCalendar()

    # ------------------------------------------------------------------ #
    def audit(self, completed: Sequence, failed: Iterable = ()) -> "SLAReport":
        """Check every term; returns a :class:`SLAReport`.

        ``completed`` are requests with terminal COMPLETED status; ``failed``
        are rejected/expired ones (they count against the completion floor and
        as violations of every applicable term).
        """
        completed = [r for r in completed if r.status is RequestStatus.COMPLETED]
        failed = list(failed)
        total = len(completed) + len(failed)
        violations: List[SLAViolation] = []
        for term in self.contract.terms:
            in_scope = [r for r in completed if term.applies_at(r.time, self._cal)]
            failed_scope = [r for r in failed if term.applies_at(r.time, self._cal)]
            n = len(in_scope) + len(failed_scope)
            if n == 0:
                continue
            lat = np.array([r.response_time() for r in in_scope]) if in_scope else np.array([])
            achieved = (
                float(np.percentile(lat, term.percentile)) if lat.size else float("inf")
            )
            over = int(np.sum(lat > term.latency_s)) + len(failed_scope)
            allowed = int(np.floor(n * (1 - term.percentile / 100.0)))
            if over > allowed:
                violations.append(
                    SLAViolation(
                        term=term.name,
                        achieved_latency_s=achieved,
                        bound_s=term.latency_s,
                        violating_requests=over,
                        penalty_eur=(over - allowed) * term.penalty_eur_per_violation,
                    )
                )
        completion_rate = len(completed) / total if total else 1.0
        return SLAReport(
            contract=self.contract.name,
            total_requests=total,
            completion_rate=completion_rate,
            completion_ok=completion_rate >= self.contract.min_completion_rate,
            violations=tuple(violations),
        )


@dataclass(frozen=True)
class SLAReport:
    """Audit outcome."""

    contract: str
    total_requests: int
    completion_rate: float
    completion_ok: bool
    violations: Tuple[SLAViolation, ...]

    @property
    def compliant(self) -> bool:
        """True when every term held and the completion floor was met."""
        return self.completion_ok and not self.violations

    @property
    def total_penalty_eur(self) -> float:
        """Sum of term penalties (€)."""
        return sum(v.penalty_eur for v in self.violations)

    def __str__(self) -> str:
        status = "COMPLIANT" if self.compliant else "BREACHED"
        lines = [
            f"SLA {self.contract}: {status} "
            f"({self.total_requests} requests, completion {self.completion_rate:.1%})"
        ]
        for v in self.violations:
            lines.append(
                f"  breach {v.term}: p-latency {v.achieved_latency_s:.3f}s "
                f"> {v.bound_s}s ({v.violating_requests} over, €{v.penalty_eur:.2f})"
            )
        return "\n".join(lines)
