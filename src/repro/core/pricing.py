"""Seasonal pricing and SLA economics (paper §IV).

"Data furnace introduces another dimension to classical cloud pricing models:
the seasonality ... in winter, the heat demand increases the computing power
that is then reduced in the summer."

:class:`SeasonalPricing` turns a monthly capacity profile into spot prices
with a constant-elasticity rule: scarce summer capacity prices high, abundant
winter capacity prices low.  It also accounts the host-side incentive the
paper describes in §III-C — "the hosts of DF servers do not pay electricity" —
as the euros of heating electricity the operator absorbs per host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

__all__ = ["PricingModel", "SeasonalPricing"]


@dataclass(frozen=True)
class PricingModel:
    """Spot-pricing parameters.

    ``base_price_per_core_hour`` is charged when capacity equals the annual
    mean; the price scales as ``(mean_capacity / capacity) ** elasticity``,
    bounded to ``[floor_factor, cap_factor] × base``.
    """

    base_price_per_core_hour: float = 0.02  # €, Qarnot-render ballpark
    elasticity: float = 0.7
    floor_factor: float = 0.5
    cap_factor: float = 3.0
    electricity_price_per_kwh: float = 0.17  # French residential tariff

    def __post_init__(self) -> None:
        if self.base_price_per_core_hour <= 0:
            raise ValueError("base price must be > 0")
        if self.elasticity < 0:
            raise ValueError("elasticity must be >= 0")
        if not 0 < self.floor_factor <= 1 <= self.cap_factor:
            raise ValueError("need floor <= 1 <= cap")


class SeasonalPricing:
    """Monthly spot prices from a monthly capacity profile.

    Parameters
    ----------
    monthly_capacity_core_hours:
        Mapping month (1..12) → available capacity.  Typically produced by
        experiment E3's seasonal-capacity run.
    model:
        Pricing parameters.
    """

    def __init__(self, monthly_capacity_core_hours: Mapping[int, float],
                 model: PricingModel = PricingModel()):
        caps = dict(monthly_capacity_core_hours)
        if not caps:
            raise ValueError("need at least one month of capacity")
        for m, c in caps.items():
            if not 1 <= m <= 12:
                raise ValueError(f"month {m} out of range")
            if c < 0:
                raise ValueError(f"capacity of month {m} is negative")
        self.capacity = caps
        self.model = model
        self._mean = sum(caps.values()) / len(caps)

    # ------------------------------------------------------------------ #
    def spot_price(self, month: int) -> float:
        """€ per core-hour in ``month``."""
        if month not in self.capacity:
            raise KeyError(f"no capacity recorded for month {month}")
        m = self.model
        cap = self.capacity[month]
        if cap <= 0:
            return m.base_price_per_core_hour * m.cap_factor
        raw = m.base_price_per_core_hour * (self._mean / cap) ** m.elasticity
        lo = m.base_price_per_core_hour * m.floor_factor
        hi = m.base_price_per_core_hour * m.cap_factor
        return max(lo, min(hi, raw))

    def price_table(self) -> Dict[int, float]:
        """Spot price per recorded month."""
        return {m: self.spot_price(m) for m in sorted(self.capacity)}

    def monthly_revenue(self, month: int, sold_core_hours: float) -> float:
        """Revenue of selling ``sold_core_hours`` in ``month`` (€)."""
        if sold_core_hours < 0:
            raise ValueError("sold volume must be >= 0")
        if sold_core_hours > self.capacity[month] * (1 + 1e-9):
            raise ValueError(
                f"cannot sell {sold_core_hours} core-hours: month {month} has "
                f"only {self.capacity[month]}"
            )
        return self.spot_price(month) * sold_core_hours

    def winter_summer_ratio(self) -> float:
        """Capacity ratio (Dec+Jan+Feb) / (Jun+Jul+Aug) — the §IV seasonality."""
        winter = [self.capacity.get(m) for m in (12, 1, 2)]
        summer = [self.capacity.get(m) for m in (6, 7, 8)]
        if any(v is None for v in winter + summer):
            raise ValueError("need all of Dec/Jan/Feb and Jun/Jul/Aug recorded")
        s = sum(summer)
        return sum(winter) / s if s > 0 else float("inf")

    # ------------------------------------------------------------------ #
    def host_subsidy_eur(self, heating_kwh: float) -> float:
        """Electricity cost absorbed by the operator for one host (€).

        The §III-C incentive: hosts get their heating electricity for free,
        which is why winter setpoints — and hence capacity — stay stable.
        """
        if heating_kwh < 0:
            raise ValueError("energy must be >= 0")
        return heating_kwh * self.model.electricity_price_per_kwh
