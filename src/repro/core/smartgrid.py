"""The smart-grid manager (paper §III-A, closing).

"An obvious task of the smart-grid manager is to ensure that the heat
processing of computing requests produces the heat requested by customers.
The manager must also negotiate with external systems (e.g. energy operators,
edge computing services, smart-cities services) to calibrate its energy
consumption and service delivery to the demand."

The manager aggregates every server's regulator state into fleet-level
signals — how much power the heat demand authorises, how many cores that
unlocks — and applies grid-operator constraints (demand-response caps) by
scaling regulator budgets down.  Experiment E3's seasonal-capacity series is
the manager's :attr:`capacity_log` accumulated over a year.

Vector fast path: when the fleet's regulators live in a
:class:`~repro.core.regulation.FleetRegulatorBank` (see
:meth:`SmartGridManager.attach_bank`), the per-tick fleet signals are
computed from the bank's arrays instead of walking ``(server, regulator)``
pairs in Python.  Float sums that land in logged outputs are performed as
sequential left-folds over the elementwise-computed products — never as
numpy reductions, whose pairwise association would change low-order bits —
so the vector path stays byte-identical to the scalar one (DESIGN.md §2.13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sim.calendar import SimCalendar

__all__ = ["SmartGridManager"]


@dataclass
class _FleetEntry:
    server: object           # ComputeServer
    regulator: object        # HeatRegulator


class SmartGridManager:
    """Fleet-level heat/compute coordination.

    Register each (server, regulator) pair; boilers register with their water
    loop's ``headroom`` as a pseudo-regulator via :meth:`register_boiler`.
    Call :meth:`tick` on the thermal tick, *after* regulators updated.
    """

    def __init__(self, engine):
        self.engine = engine
        self._fleet: List[_FleetEntry] = []
        self._boilers: List[object] = []
        self.grid_cap_w: Optional[float] = None
        self._cal = SimCalendar()
        #: month → accumulated available core-seconds (E3's series)
        self.capacity_log: Dict[int, float] = {}
        #: month → accumulated authorised energy (J)
        self.energy_budget_log: Dict[int, float] = {}
        self.curtailment_events = 0
        self._bank = None               # FleetRegulatorBank, vector kernel only
        self._pmax_w: Optional[np.ndarray] = None
        self._ncores: Optional[np.ndarray] = None
        self._min_on: Optional[np.ndarray] = None
        #: surrogate kernel only: False entries are quiesced (their district
        #: is aggregate-modelled) — excluded from actuation and filler
        self._actuation_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def register(self, server, regulator) -> None:
        """Track a heater-class server with its heat regulator."""
        self._fleet.append(_FleetEntry(server=server, regulator=regulator))

    def register_boiler(self, boiler) -> None:
        """Track a digital boiler (heat demand = its tank headroom)."""
        self._boilers.append(boiler)

    def attach_bank(self, bank) -> None:
        """Enable the vector fast path: fleet regulators live in ``bank``.

        The bank's attach order must match this manager's registration order
        (entry *i*'s regulator is ``bank.regulators[i]``) — the middleware
        builds both in the same loop, and this method verifies it.
        """
        if len(bank) != len(self._fleet):
            raise ValueError(
                f"bank holds {len(bank)} regulators, fleet has {len(self._fleet)}"
            )
        for e, reg in zip(self._fleet, bank.regulators):
            if e.regulator is not reg:
                raise ValueError("bank order does not match fleet registration order")
        self._bank = bank
        self._pmax_w = np.asarray(
            [e.server.spec.p_max_w for e in self._fleet], dtype=np.float64)
        self._ncores = np.asarray(
            [e.server.n_cores for e in self._fleet], dtype=np.int64)
        self._min_on = np.asarray(
            [e.regulator.config.min_on_fraction for e in self._fleet],
            dtype=np.float64)
        # one shared DVFS ladder (the usual fleet: one Q.rad model) lets the
        # per-tick budget→P-state lookups collapse into a single searchsorted
        ladders = {id(e.server.spec.ladder) for e in self._fleet}
        self._shared_scales: Optional[np.ndarray] = None
        if len(ladders) == 1:
            self._shared_scales = np.asarray(
                self._fleet[0].server.spec.ladder._power_scales, dtype=np.float64)

    @property
    def fleet_size(self) -> int:
        """Number of registered heater servers."""
        return len(self._fleet)

    # ------------------------------------------------------------------ #
    # fleet signals
    # ------------------------------------------------------------------ #
    def authorized_power_w(self) -> float:
        """Power the current heat demand authorises across the fleet (W)."""
        if self._bank is not None:
            # elementwise products are bit-identical to the scalar terms; the
            # sequential sum over the list matches the scalar left-fold
            p = sum((self._bank.power_fraction * self._pmax_w).tolist())
        else:
            p = sum(
                e.regulator.power_fraction * e.server.spec.p_max_w for e in self._fleet
            )
        p += sum(min(b.heat_demand_w(), b.spec.p_max_w) for b in self._boilers)
        return p

    def available_cores(self) -> int:
        """Cores on servers whose room currently wants heat (+ boiler cores).

        Boiler cores count whenever the tank has meaningful headroom — the
        §III-C observation that boilers decouple compute from space-heating
        seasons.
        """
        if self._bank is not None:
            cores = int((self._ncores * self._bank.heat_wanted_mask()).sum())
        else:
            cores = sum(e.server.n_cores for e in self._fleet if e.regulator.heat_wanted)
        cores += sum(
            b.n_cores for b in self._boilers if b.heat_demand_w() > 0.05 * b.spec.p_max_w
        )
        return cores

    def heat_wanted_servers(self) -> List[object]:
        """Heater servers whose regulator currently requests heat.

        Quiesced servers (actuation mask False) never appear: their heat is
        aggregate-modelled, so they must not attract filler compute.
        """
        if self._bank is not None:
            fleet = self._fleet
            mask = self._bank.heat_wanted_mask()
            if self._actuation_mask is not None:
                mask = mask & self._actuation_mask
            return [fleet[i].server for i in np.flatnonzero(mask).tolist()]
        return [e.server for e in self._fleet if e.regulator.heat_wanted]

    # ------------------------------------------------------------------ #
    # grid negotiation
    # ------------------------------------------------------------------ #
    def set_actuation_mask(self, mask: Optional[np.ndarray]) -> None:
        """Limit per-server actuation to the True entries of ``mask``.

        The surrogate kernel masks aggregate districts out of DVFS/power
        actuation and filler targeting while it models their heat; passing
        ``None`` clears the mask.  Fleet-level signals (authorised power,
        capacity logs) intentionally keep covering the whole fleet — they are
        aggregate views, and the bank rows of masked districts carry the
        aggregate command.
        """
        if mask is not None and len(mask) != len(self._fleet):
            raise ValueError(
                f"mask has {len(mask)} entries, fleet has {len(self._fleet)}"
            )
        self._actuation_mask = mask

    def set_grid_cap(self, cap_w: Optional[float]) -> None:
        """Apply (or clear) a demand-response power cap from the operator."""
        if cap_w is not None and cap_w < 0:
            raise ValueError("grid cap must be >= 0")
        self.grid_cap_w = cap_w

    def _apply_cap(self) -> float:
        """Scale regulator outputs down to the grid cap; returns the scale."""
        if self.grid_cap_w is None:
            return 1.0
        p = self.authorized_power_w()
        if p <= self.grid_cap_w or p == 0:
            return 1.0
        scale = self.grid_cap_w / p
        self.curtailment_events += 1
        if self._bank is not None:
            self._bank.scale_power(scale)
        else:
            for e in self._fleet:
                e.regulator.power_fraction *= scale
        return scale

    # ------------------------------------------------------------------ #
    def tick(self, now: float, dt: float) -> None:
        """Fleet bookkeeping for one thermal tick.

        Applies the grid cap, re-actuates every server from its (possibly
        scaled) regulator output, and accumulates the monthly capacity and
        energy-budget logs.
        """
        self._apply_cap()
        if self._bank is not None:
            self._actuate_vector()
        else:
            for e in self._fleet:
                e.regulator.apply_to_server(e.server)
        month = self._cal.month(now)
        self.capacity_log[month] = (
            self.capacity_log.get(month, 0.0) + self.available_cores() * dt
        )
        self.energy_budget_log[month] = (
            self.energy_budget_log.get(month, 0.0) + self.authorized_power_w() * dt
        )

    def _actuate_vector(self) -> None:
        """Vectorised equivalent of per-entry ``apply_to_server`` calls.

        The heat-wanted test and the power budget are computed for the whole
        fleet in two array ops; the per-server actuation (``set_freq_cap``
        with its sync and completion reschedule) stays per-server because the
        scalar path performs it per-server — skipping an "unchanged" cap
        would recompute completion horizons at different times and drift the
        event stream (DESIGN.md §2.13).
        """
        bank = self._bank
        act = self._actuation_mask
        fleet = self._fleet
        wanted = bank.heat_wanted_mask().tolist()
        # masked entries take neither branch, so iterating only the True
        # indices (ascending, same visit order) is behaviour-identical and
        # keeps the per-tick loop O(live) under the surrogate tier
        indices = (range(len(fleet)) if act is None
                   else np.flatnonzero(act).tolist())
        # scalar: max(power_fraction, min_on_fraction) per regulator
        budget = np.maximum(bank.power_fraction, self._min_on)
        if self._shared_scales is not None:
            # index_for_power_budget = largest i with scale[i] <= budget+1e-12
            # (scales ascend); searchsorted(side="right") counts exactly the
            # elements <= the probe, so count-1 (floored at state 0) matches
            caps = np.maximum(
                np.searchsorted(self._shared_scales, budget + 1e-12,
                                side="right") - 1,
                0,
            ).tolist()
            for i in indices:
                server = fleet[i].server
                if wanted[i]:
                    if not server.enabled:
                        server.power_on()
                    server.set_freq_cap(caps[i])
                elif server.enabled and server.idle:
                    server.power_off()
            return
        budget = budget.tolist()
        for i in indices:
            server = fleet[i].server
            if wanted[i]:
                if not server.enabled:
                    server.power_on()
                server.set_freq_cap(
                    server.spec.ladder.index_for_power_budget(budget[i]))
            elif server.enabled and server.idle:
                server.power_off()

    # ------------------------------------------------------------------ #
    def monthly_capacity_core_hours(self) -> Dict[int, float]:
        """Month → available core-hours (the E3 table / §IV seasonality)."""
        return {m: v / 3600.0 for m, v in sorted(self.capacity_log.items())}

    def heat_match_error(self) -> float:
        """|consumed − authorised| / authorised, instantaneous.

        The §III-B regulator goal: energy consumed should track heat demand.
        """
        auth = self.authorized_power_w()
        used = sum(e.server.power_w() for e in self._fleet) + sum(
            b.power_w() for b in self._boilers
        )
        if auth <= 0:
            return 0.0 if used == 0 else float("inf")
        return abs(used - auth) / auth
