"""The smart-grid manager (paper §III-A, closing).

"An obvious task of the smart-grid manager is to ensure that the heat
processing of computing requests produces the heat requested by customers.
The manager must also negotiate with external systems (e.g. energy operators,
edge computing services, smart-cities services) to calibrate its energy
consumption and service delivery to the demand."

The manager aggregates every server's regulator state into fleet-level
signals — how much power the heat demand authorises, how many cores that
unlocks — and applies grid-operator constraints (demand-response caps) by
scaling regulator budgets down.  Experiment E3's seasonal-capacity series is
the manager's :attr:`capacity_log` accumulated over a year.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.calendar import SimCalendar

__all__ = ["SmartGridManager"]


@dataclass
class _FleetEntry:
    server: object           # ComputeServer
    regulator: object        # HeatRegulator


class SmartGridManager:
    """Fleet-level heat/compute coordination.

    Register each (server, regulator) pair; boilers register with their water
    loop's ``headroom`` as a pseudo-regulator via :meth:`register_boiler`.
    Call :meth:`tick` on the thermal tick, *after* regulators updated.
    """

    def __init__(self, engine):
        self.engine = engine
        self._fleet: List[_FleetEntry] = []
        self._boilers: List[object] = []
        self.grid_cap_w: Optional[float] = None
        self._cal = SimCalendar()
        #: month → accumulated available core-seconds (E3's series)
        self.capacity_log: Dict[int, float] = {}
        #: month → accumulated authorised energy (J)
        self.energy_budget_log: Dict[int, float] = {}
        self.curtailment_events = 0

    # ------------------------------------------------------------------ #
    def register(self, server, regulator) -> None:
        """Track a heater-class server with its heat regulator."""
        self._fleet.append(_FleetEntry(server=server, regulator=regulator))

    def register_boiler(self, boiler) -> None:
        """Track a digital boiler (heat demand = its tank headroom)."""
        self._boilers.append(boiler)

    @property
    def fleet_size(self) -> int:
        """Number of registered heater servers."""
        return len(self._fleet)

    # ------------------------------------------------------------------ #
    # fleet signals
    # ------------------------------------------------------------------ #
    def authorized_power_w(self) -> float:
        """Power the current heat demand authorises across the fleet (W)."""
        p = sum(
            e.regulator.power_fraction * e.server.spec.p_max_w for e in self._fleet
        )
        p += sum(min(b.heat_demand_w(), b.spec.p_max_w) for b in self._boilers)
        return p

    def available_cores(self) -> int:
        """Cores on servers whose room currently wants heat (+ boiler cores).

        Boiler cores count whenever the tank has meaningful headroom — the
        §III-C observation that boilers decouple compute from space-heating
        seasons.
        """
        cores = sum(e.server.n_cores for e in self._fleet if e.regulator.heat_wanted)
        cores += sum(
            b.n_cores for b in self._boilers if b.heat_demand_w() > 0.05 * b.spec.p_max_w
        )
        return cores

    def heat_wanted_servers(self) -> List[object]:
        """Heater servers whose regulator currently requests heat."""
        return [e.server for e in self._fleet if e.regulator.heat_wanted]

    # ------------------------------------------------------------------ #
    # grid negotiation
    # ------------------------------------------------------------------ #
    def set_grid_cap(self, cap_w: Optional[float]) -> None:
        """Apply (or clear) a demand-response power cap from the operator."""
        if cap_w is not None and cap_w < 0:
            raise ValueError("grid cap must be >= 0")
        self.grid_cap_w = cap_w

    def _apply_cap(self) -> float:
        """Scale regulator outputs down to the grid cap; returns the scale."""
        if self.grid_cap_w is None:
            return 1.0
        p = self.authorized_power_w()
        if p <= self.grid_cap_w or p == 0:
            return 1.0
        scale = self.grid_cap_w / p
        self.curtailment_events += 1
        for e in self._fleet:
            e.regulator.power_fraction *= scale
        return scale

    # ------------------------------------------------------------------ #
    def tick(self, now: float, dt: float) -> None:
        """Fleet bookkeeping for one thermal tick.

        Applies the grid cap, re-actuates every server from its (possibly
        scaled) regulator output, and accumulates the monthly capacity and
        energy-budget logs.
        """
        self._apply_cap()
        for e in self._fleet:
            e.regulator.apply_to_server(e.server)
        month = self._cal.month(now)
        self.capacity_log[month] = (
            self.capacity_log.get(month, 0.0) + self.available_cores() * dt
        )
        self.energy_budget_log[month] = (
            self.energy_budget_log.get(month, 0.0) + self.authorized_power_w() * dt
        )

    # ------------------------------------------------------------------ #
    def monthly_capacity_core_hours(self) -> Dict[int, float]:
        """Month → available core-hours (the E3 table / §IV seasonality)."""
        return {m: v / 3600.0 for m, v in sorted(self.capacity_log.items())}

    def heat_match_error(self) -> float:
        """|consumed − authorised| / authorised, instantaneous.

        The §III-B regulator goal: energy consumed should track heat demand.
        """
        auth = self.authorized_power_w()
        used = sum(e.server.power_w() for e in self._fleet) + sum(
            b.power_w() for b in self._boilers
        )
        if auth <= 0:
            return 0.0 if used == 0 else float("inf")
        return abs(used - auth) / auth
