"""Worker clusters (paper §III-B).

"Both considered architectures imply to define clusters of nodes that state
what are the workers controlled by the gateways.  To decide on the components
of clusters, we can either use clustering techniques developed in wireless
sensor networks or define clusters as the set of DF servers of a physical
building or district."

A :class:`Cluster` is the unit of scheduling and offloading: the DF servers of
one district (the canonical rule), a subset of which may be *dedicated* to the
edge flow (architecture class 2).  The WSN-style alternative clustering rule
is provided as :meth:`Cluster.partition_wsn` for the ablation called out in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hardware.server import ComputeServer

__all__ = ["ClusterConfig", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static identity of a cluster."""

    name: str
    district: int = 0
    master_overhead_s: float = 0.002  # master-node request handling time


class Cluster:
    """A named group of DF servers with an optional edge-dedicated subset."""

    def __init__(self, config: ClusterConfig, workers: Optional[Sequence[ComputeServer]] = None):
        self.config = config
        self._workers: Dict[str, ComputeServer] = {}
        self._dedicated_edge: set[str] = set()
        for w in workers or []:
            self.add_worker(w)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Cluster name."""
        return self.config.name

    def add_worker(self, server: ComputeServer, dedicated_edge: bool = False) -> None:
        """Register a worker; optionally reserve it for the edge flow."""
        if server.name in self._workers:
            raise ValueError(f"worker {server.name!r} already in cluster {self.name}")
        self._workers[server.name] = server
        if dedicated_edge:
            self._dedicated_edge.add(server.name)

    def dedicate_to_edge(self, server_name: str) -> None:
        """Move an existing worker into the edge-dedicated pool."""
        if server_name not in self._workers:
            raise KeyError(f"no worker {server_name!r} in cluster {self.name}")
        self._dedicated_edge.add(server_name)

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> List[ComputeServer]:
        """All workers, in insertion order."""
        return list(self._workers.values())

    @property
    def edge_dedicated_workers(self) -> List[ComputeServer]:
        """Workers reserved for the edge flow (architecture class 2)."""
        return [w for w in self._workers.values() if w.name in self._dedicated_edge]

    @property
    def general_workers(self) -> List[ComputeServer]:
        """Workers available to the DCC flow."""
        return [w for w in self._workers.values() if w.name not in self._dedicated_edge]

    def worker(self, name: str) -> ComputeServer:
        """Look up a worker by name."""
        try:
            return self._workers[name]
        except KeyError:
            raise KeyError(f"no worker {name!r} in cluster {self.name}") from None

    def __len__(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------------ #
    def total_cores(self) -> int:
        """Cores across all workers."""
        return sum(w.n_cores for w in self._workers.values())

    def free_cores(self) -> int:
        """Currently free cores across all powered-on workers."""
        return sum(w.free_cores for w in self._workers.values())

    def utilization(self) -> float:
        """Busy-core fraction of the whole cluster."""
        total = self.total_cores()
        return (total - self.free_cores()) / total if total else 0.0

    # ------------------------------------------------------------------ #
    @staticmethod
    def partition_wsn(
        servers: Sequence[ComputeServer],
        positions: Sequence[tuple],
        k: int,
        master_overhead_s: float = 0.002,
    ) -> List["Cluster"]:
        """WSN-style clustering alternative (paper ref [13]).

        A deterministic k-means-like grouping of servers by physical position
        (farthest-point seeding, then nearest-centroid assignment) — the
        "clustering techniques developed in wireless sensor networks" option,
        used by the cluster-formation ablation.
        """
        import numpy as np

        if k < 1 or k > len(servers):
            raise ValueError(f"k must be in 1..{len(servers)}, got {k}")
        if len(positions) != len(servers):
            raise ValueError("one position per server required")
        pts = np.asarray(positions, dtype=float)
        # farthest-point seeding from the centroid-nearest point
        centroid = pts.mean(axis=0)
        seeds = [int(np.argmin(((pts - centroid) ** 2).sum(axis=1)))]
        while len(seeds) < k:
            d = np.min(
                [((pts - pts[s]) ** 2).sum(axis=1) for s in seeds], axis=0
            )
            seeds.append(int(np.argmax(d)))
        centers = pts[seeds]
        for _ in range(10):  # few Lloyd iterations; deterministic
            assign = np.argmin(
                ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2), axis=1
            )
            for j in range(k):
                members = pts[assign == j]
                if len(members):
                    centers[j] = members.mean(axis=0)
        clusters = [
            Cluster(ClusterConfig(name=f"wsn-{j}", district=j,
                                  master_overhead_s=master_overhead_s))
            for j in range(k)
        ]
        for i, srv in enumerate(servers):
            clusters[int(assign[i])].add_worker(srv)
        return [c for c in clusters if len(c) > 0]
