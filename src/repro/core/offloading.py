"""Vertical and horizontal offloading (paper §III-B).

"Offloading can be of two kinds: vertical and horizontal.  Vertical
offloadings are the ones done towards datacenter nodes.  Horizontal
offloadings are done towards another cluster of DF servers.  This latter case
implies to define coordination mechanisms between edge gateways.  This case
also raises questions about the fairness of cooperation between clusters."

* **vertical** — ship the request over the WAN to the classical datacenter
  (privacy-sensitive edge data is refused unless explicitly allowed: raw home
  audio should not leave the local network, §I);
* **horizontal** — ship it over metro fiber to the peer cluster with the most
  free capacity; a :class:`CooperationLedger` books who helped whom, in
  cycles, and reduces to Jain's fairness index (the paper's ref [16] concern).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.hardware.server import Task
from repro.network.link import Link
from repro.obs import get_obs

__all__ = ["OffloadDirection", "CooperationLedger", "Offloader"]


class OffloadDirection(str, Enum):
    """The two offload kinds of §III-B."""

    VERTICAL = "vertical"
    HORIZONTAL = "horizontal"


class CooperationLedger:
    """Cycles each cluster executed on behalf of each other cluster."""

    def __init__(self) -> None:
        self._given: Dict[Tuple[str, str], float] = {}

    def record(self, helper: str, beneficiary: str, cycles: float) -> None:
        """Book ``cycles`` executed by ``helper`` for ``beneficiary``."""
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        if helper == beneficiary:
            raise ValueError("a cluster cannot offload to itself")
        key = (helper, beneficiary)
        self._given[key] = self._given.get(key, 0.0) + cycles

    def given_by(self, cluster: str) -> float:
        """Total cycles ``cluster`` executed for others."""
        return sum(v for (h, _), v in self._given.items() if h == cluster)

    def received_by(self, cluster: str) -> float:
        """Total cycles others executed for ``cluster``."""
        return sum(v for (_, b), v in self._given.items() if b == cluster)

    def net_balance(self, cluster: str) -> float:
        """given − received; positive = net helper."""
        return self.given_by(cluster) - self.received_by(cluster)

    def clusters(self) -> List[str]:
        """All clusters appearing in the ledger."""
        names = set()
        for h, b in self._given:
            names.update((h, b))
        return sorted(names)

    def jain_fairness(self) -> float:
        """Jain's index over per-cluster *given* volumes (1 = perfectly fair).

        Measures whether the help burden is evenly spread — the cooperation
        fairness question of the paper's ref [16].
        """
        xs = [self.given_by(c) for c in self.clusters()]
        if not xs or sum(xs) == 0:
            return 1.0
        n = len(xs)
        return sum(xs) ** 2 / (n * sum(x * x for x in xs))


class Offloader:
    """Executes offload decisions for a set of cluster schedulers.

    Parameters
    ----------
    engine: simulation engine.
    datacenter: vertical target (:class:`repro.hardware.datacenter.Datacenter`),
        optional.
    wan: WAN link to the datacenter; required with ``datacenter``.
    allow_privacy_vertical: permit privacy-sensitive edge data to leave for
        the datacenter (default False, per the paper's privacy motivation).
    """

    def __init__(self, engine, datacenter=None, wan: Optional[Link] = None,
                 allow_privacy_vertical: bool = False, obs=None):
        if datacenter is not None and wan is None:
            raise ValueError("vertical offloading needs a WAN link")
        self.engine = engine
        self.datacenter = datacenter
        self.wan = wan
        self.allow_privacy_vertical = allow_privacy_vertical
        self.obs = obs if obs is not None else get_obs()
        self.ledger = CooperationLedger()
        self._peers: Dict[str, Tuple[object, Link]] = {}
        self.vertical_count = 0
        self.horizontal_count = 0
        #: WAN link state: False during a partition (fault injection/churn)
        self.wan_up = True
        #: buffer vertical offloads during a partition and drain them on heal
        #: (the store-and-forward recovery policy) instead of refusing them
        self.store_and_forward = False
        self._sf_buffer: List[Tuple[object, object]] = []
        self.sf_buffered = 0
        self.sf_drained = 0

    # ------------------------------------------------------------------ #
    def register_peer(self, name: str, scheduler, link: Link) -> None:
        """Make ``scheduler`` reachable for horizontal offloads over ``link``."""
        if name in self._peers:
            raise ValueError(f"peer {name!r} already registered")
        self._peers[name] = (scheduler, link)

    # ------------------------------------------------------------------ #
    # vertical
    # ------------------------------------------------------------------ #
    def set_wan_up(self, up: bool) -> None:
        """Flip the WAN state; healing drains the store-and-forward buffer."""
        was_up, self.wan_up = self.wan_up, bool(up)
        if up and not was_up and self._sf_buffer:
            pending, self._sf_buffer = self._sf_buffer, []
            for req, sched in pending:
                self.sf_drained += 1
                self.vertical(req, sched)

    def can_vertical(self, req) -> bool:
        """True when the datacenter may legally take this request.

        During a WAN partition this is False unless store-and-forward is on,
        in which case the offloader *accepts* the request and buffers it
        until the link heals.
        """
        if self.datacenter is None:
            return False
        if not self.wan_up and not self.store_and_forward:
            return False
        if isinstance(req, EdgeRequest) and req.privacy_sensitive:
            return self.allow_privacy_vertical
        return True

    def vertical(self, req, from_scheduler) -> None:
        """Ship ``req`` to the datacenter (WAN delay both ways).

        With the WAN down and store-and-forward enabled the request parks in
        the offloader's buffer; it rides the first uplink after heal.
        """
        if not self.can_vertical(req):
            raise PermissionError(
                f"request {req.request_id} may not be offloaded vertically"
            )
        if not self.wan_up:
            req.status = RequestStatus.OFFLOADED
            self._sf_buffer.append((req, from_scheduler))
            self.sf_buffered += 1
            if self.obs.active:
                self.obs.emit_span("request", "offload.buffered", self.engine.now,
                                   ctx=req, id=req.request_id,
                                   src=from_scheduler.cluster.name)
                self.obs.counter("offloads", direction="buffered",
                                 flow="edge" if isinstance(req, EdgeRequest) else "cloud").inc()
            return
        self.vertical_count += 1
        req.status = RequestStatus.OFFLOADED
        uplink_delay = self.wan.delay(req.input_bytes)
        req.network_delay_s += uplink_delay
        is_edge = isinstance(req, EdgeRequest)
        if self.obs.active:
            flow = "edge" if is_edge else "cloud"
            self.obs.emit_span("request", f"{flow}.offloaded", self.engine.now,
                               ctx=req, id=req.request_id,
                               direction=OffloadDirection.VERTICAL.value,
                               src=from_scheduler.cluster.name,
                               dst=self.datacenter.name)
            self.obs.counter("offloads", direction="vertical", flow=flow).inc()

        def arrive() -> None:
            if req.__dict__.get("_clone_cancelled"):
                return  # sibling won while this copy crossed the WAN

            def done(task: Task, now: float) -> None:
                result = req
                if is_edge:
                    group = req.__dict__.get("_clone_group")
                    if group is not None:
                        result = group.on_complete(req, now)
                        if result is None:
                            return
                ret = self.wan.delay(req.output_bytes)
                result.network_delay_s += ret
                self.engine.schedule(
                    ret, lambda: result.mark_completed(self.engine.now))
                if is_edge:
                    from_scheduler.completed_edge.append(result)
                else:
                    from_scheduler.completed_cloud.append(result)
                if self.obs.active:
                    flow = "edge" if is_edge else "cloud"
                    service = (now - result.started_at
                               if result.started_at >= 0 else 0.0)
                    done_at = now + ret
                    extra = {}
                    if is_edge:
                        extra = {"resp_s": done_at - result.time,
                                 "ok": (done_at - result.time
                                        <= result.deadline_s + 1e-12)}
                    self.obs.emit_span(
                        "request", f"{flow}.completed", now, ctx=result,
                        dur=service, id=result.request_id,
                        worker=result.executed_on,
                        cluster=from_scheduler.cluster.name, **extra)
                    self.obs.counter("requests_completed", flow=flow,
                                     cluster=from_scheduler.cluster.name).inc()
                    self.obs.histogram("service_time_s", flow=flow).observe(service)

            req.status = RequestStatus.RUNNING
            req.started_at = self.engine.now
            req.executed_on = f"{self.datacenter.name}"
            if is_edge:
                group = req.__dict__.get("_clone_group")
                if group is not None:
                    # cancel-on-start: a datacenter placement counts as the
                    # sibling-cancelling start just like a Q.rad placement
                    group.on_start(req)
            self.datacenter.submit(
                Task(
                    task_id=req.request_id,
                    work_cycles=req.cycles,
                    cores=req.cores,
                    on_complete=done,
                    metadata={"request": req, "kind": "edge" if is_edge else "cloud"},
                )
            )

        self.engine.schedule(uplink_delay, arrive)

    # ------------------------------------------------------------------ #
    # horizontal
    # ------------------------------------------------------------------ #
    def best_peer(self, req, exclude: str) -> Optional[str]:
        """Peer (≠ exclude) with the most free cores that fit ``req``."""
        best_name, best_free = None, -1
        for name, (sched, _link) in sorted(self._peers.items()):
            if name == exclude:
                continue
            free = sched.cluster.free_cores()
            fits = any(w.free_cores >= req.cores for w in sched.edge_workers())
            if fits and free > best_free:
                best_name, best_free = name, free
        return best_name

    def horizontal(self, req: EdgeRequest, from_scheduler) -> bool:
        """Ship an edge request to the best peer cluster, if any fits."""
        me = from_scheduler.cluster.name
        peer_name = self.best_peer(req, exclude=me)
        if peer_name is None:
            return False
        peer_sched, link = self._peers[peer_name]
        self.horizontal_count += 1
        req.__dict__["_offloaded_once"] = True
        req.status = RequestStatus.OFFLOADED
        if self.obs.active:
            self.obs.emit_span("request", "edge.offloaded", self.engine.now,
                               ctx=req, id=req.request_id,
                               direction=OffloadDirection.HORIZONTAL.value,
                               src=me, dst=peer_name)
            self.obs.counter("offloads", direction="horizontal", flow="edge").inc()
        hop = link.delay(req.input_bytes)
        req.network_delay_s += hop
        req.__dict__["_return_delay_s"] = (
            float(req.__dict__.get("_return_delay_s", 0.0)) + link.expected_delay(req.output_bytes)
        )
        self.ledger.record(helper=peer_name, beneficiary=me, cycles=req.cycles)
        # completion lands in the peer's lists; experiments aggregate across
        # schedulers via the middleware, so nothing is lost
        self.engine.schedule(hop, lambda: peer_sched.submit_edge(req))
        return True
