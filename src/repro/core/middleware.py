"""`DF3Middleware`: one middleware for district heating, edge and DCC.

The paper's thesis (§II-C): "With DF3, we propose to operate distributed cloud
and edge on the same platform.  We also suggest to have a single middleware
both for district heating, edge and DCC."  This class is that middleware,
assembled from the substrates:

* a city (:class:`~repro.network.topology.CityTopology`) of districts, each a
  :class:`~repro.core.cluster.Cluster` of Q.rads — one per room of each
  building — plus optional digital boilers;
* per-cluster schedulers (architecture class 1 or 2) behind edge/DCC gateways;
* an :class:`~repro.core.offloading.Offloader` wired to peer clusters and to
  a classical :class:`~repro.hardware.datacenter.Datacenter`;
* a :class:`~repro.core.regulation.HeatRegulator` per server bound to its
  room, coordinated by a :class:`~repro.core.smartgrid.SmartGridManager`;
* the thermal fabric (buildings + weather) stepped on a fixed tick, with
  comfort and heat-island accounting.

The **filler** mechanism keeps rooms warm when paying work is scarce: the
seasonal/opportunistic application class of Liu et al. (paper ref [6], e.g.
BOINC batches) is modelled as preemptible chunk tasks injected wherever heat
is wanted and cores are idle — evicted instantly when real work arrives.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.collective import CollectiveController
from repro.core.decision import DecisionConfig, DecisionSystem
from repro.core.gateway import DCCGateway, EdgeGateway
from repro.core.offloading import Offloader
from repro.core.regulation import FleetRegulatorBank, HeatRegulator, RegulatorConfig
from repro.core.requests import CloudRequest, EdgeRequest, HeatingRequest
from repro.core.resilience.config import ResilienceConfig
from repro.core.resilience.recovery import RecoveryRuntime
from repro.core.scheduling.base import SaturationPolicy
from repro.core.scheduling.dedicated import DedicatedWorkersScheduler
from repro.core.scheduling.shared import SharedWorkersScheduler
from repro.core.smartgrid import SmartGridManager
from repro.hardware.boiler import STIMERGY_SMALL, DigitalBoiler
from repro.hardware.datacenter import Datacenter
from repro.hardware.qrad import QRAD_SPEC, QRad
from repro.hardware.server import Task
from repro.network.internet import WANLink, WANProfile
from repro.network.link import Link
from repro.network.lowpower import ZIGBEE, LowPowerProtocol
from repro.network.topology import CityTopology
from repro.obs import get_obs
from repro.sim.calendar import SimCalendar
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.thermal.building import Building, RoomConfig, ThermostatSchedule
from repro.thermal.comfort import ComfortTracker
from repro.thermal.fused import FusedCityThermal
from repro.thermal.surrogate import SurrogateConfig, SurrogateController
from repro.thermal.heat_island import HeatIslandLedger, OutdoorHeatSource
from repro.thermal.hydronics import WaterLoop, WaterLoopConfig
from repro.thermal.rc_model import RoomThermalParams
from repro.thermal.weather import Weather, WeatherConfig

__all__ = ["MiddlewareConfig", "DF3Middleware", "resolve_kernel"]

_GHZ = 1e9

_KERNELS = ("scalar", "vector", "surrogate")


def resolve_kernel(value: Optional[str] = None) -> str:
    """Resolve the simulation kernel: explicit config > env > default.

    ``value`` is :attr:`MiddlewareConfig.kernel`; when None the
    ``REPRO_KERNEL`` environment variable applies (how the CLI's ``--kernel``
    flag reaches pool workers), and the default is ``"vector"``.  The scalar
    and vector kernels are byte-identical by contract (DESIGN.md §2.13);
    ``"scalar"`` is the reference implementation.  The ``"surrogate"`` tier
    (DESIGN.md §2.18) trades a declared tolerance budget
    (:mod:`repro.thermal.budget`) for district-aggregate speed.
    """
    kernel = value or os.environ.get("REPRO_KERNEL") or "vector"
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {_KERNELS}")
    return kernel


@dataclass(frozen=True)
class MiddlewareConfig:
    """Deployment + policy knobs of a DF3 city.

    The defaults describe a small laptop-scale city: 2 districts × 2 buildings
    × 3 rooms, one 500 W Q.rad per room, one 8-node datacenter for vertical
    offloading.
    """

    n_districts: int = 2
    buildings_per_district: int = 2
    rooms_per_building: int = 3
    boilers_per_district: int = 0
    architecture: str = "shared"          # "shared" (class 1) | "dedicated" (class 2)
    dedicated_per_cluster: int = 1        # edge-reserved Q.rads (class 2 only)
    saturation_policy: SaturationPolicy = SaturationPolicy.QUEUE
    context_switch_s: float = 0.0
    dc_nodes: int = 8
    thermal_tick_s: float = 300.0
    enable_filler: bool = True
    filler_chunk_s: float = 300.0
    hybrid_migration: bool = True
    allow_privacy_vertical: bool = False
    regulator: RegulatorConfig = field(default_factory=RegulatorConfig)
    decision: DecisionConfig = field(default_factory=DecisionConfig)
    edge_protocol: LowPowerProtocol = ZIGBEE
    weather: WeatherConfig = field(default_factory=WeatherConfig)
    wan: WANProfile = field(default_factory=WANProfile.national_internet)
    start_time: float = 0.0
    weather_horizon: float = 2 * 365 * 86400.0
    seed: int = 0
    initial_setpoint_c: float = 20.0
    room_thermal: RoomThermalParams = field(default_factory=RoomThermalParams)
    #: arm churn + recovery (None = no resilience machinery at all; runs are
    #: byte-identical to builds without the subsystem)
    resilience: Optional[ResilienceConfig] = None
    #: simulation kernel: "scalar" | "vector" | "surrogate" | None
    #: (= ``REPRO_KERNEL`` env or the "vector" default).  Scalar and vector
    #: outputs are byte-identical; surrogate is tolerance-budgeted.
    kernel: Optional[str] = None
    #: surrogate-tier knobs (warm-up window, sample size, checkpoint cadence);
    #: only consulted when the resolved kernel is "surrogate"
    surrogate: Optional[SurrogateConfig] = None

    def __post_init__(self) -> None:
        if self.kernel is not None and self.kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}; expected one of {_KERNELS}")
        if self.architecture not in ("shared", "dedicated"):
            raise ValueError(f"unknown architecture {self.architecture!r}")
        if self.architecture == "dedicated" and not (
            0 < self.dedicated_per_cluster
            <= self.buildings_per_district * self.rooms_per_building
        ):
            raise ValueError("dedicated pool size out of range")
        if self.thermal_tick_s <= 0 or self.filler_chunk_s <= 0:
            raise ValueError("tick and filler chunk must be > 0")


class DF3Middleware:
    """The single middleware for the three flows.  See module docstring.

    ``obs`` is the :class:`repro.obs.Observability` bundle instrumenting this
    city; it defaults to the process-wide current one (inactive unless the
    CLI or a test installed an active bundle), so uninstrumented construction
    and runs are byte-identical to pre-observability behaviour.
    """

    def __init__(self, config: MiddlewareConfig = MiddlewareConfig(), obs=None):
        self.config = config
        cfg = config
        self.obs = obs if obs is not None else get_obs()
        self.engine = Engine(
            start=cfg.start_time,
            tracer=self.obs.tracer if self.obs.tracer.enabled else None,
            profiler=self.obs.profiler,
        )
        #: resolved kernel for this city ("scalar" | "vector" | "surrogate");
        #: resolved before any server exists, because servers adopt the
        #: engine's incremental-accounting mode at construction time.  The
        #: surrogate tier runs on the vector substrate (bank + fused arrays).
        self.kernel = resolve_kernel(cfg.kernel)
        self.engine.incremental_accounting = self.kernel != "scalar"
        self.rngs = RngRegistry(cfg.seed)
        self.cal = SimCalendar()
        self.weather = Weather(
            self.rngs.stream("weather"), cfg.weather, horizon=cfg.weather_horizon
        )
        self.topology = CityTopology.build(
            cfg.n_districts, cfg.buildings_per_district, wan=cfg.wan
        )
        self.ledger = HeatIslandLedger()
        self.comfort = ComfortTracker(band_c=1.0)

        self.datacenter: Optional[Datacenter] = None
        if cfg.dc_nodes > 0:
            self.datacenter = Datacenter(
                "dc", cfg.dc_nodes, self.engine, ledger=self.ledger
            )
        wan_link = WANLink(cfg.wan, rng=self.rngs.stream("wan"))
        self.offloader = Offloader(
            self.engine,
            datacenter=self.datacenter,
            wan=wan_link if self.datacenter else None,
            allow_privacy_vertical=cfg.allow_privacy_vertical,
            obs=self.obs,
        )

        # --- districts: buildings, rooms, Q.rads, regulators, clusters ----
        self.buildings: Dict[str, Building] = {}
        self.clusters: Dict[int, Cluster] = {}
        self.schedulers: Dict[int, object] = {}
        self.edge_gateways: Dict[int, EdgeGateway] = {}
        self.dcc_gateways: Dict[int, DCCGateway] = {}
        self.regulators: Dict[str, HeatRegulator] = {}   # room name → regulator
        self.collectives: Dict[str, CollectiveController] = {}  # building → ctrl
        self._server_room: Dict[str, str] = {}           # server name → room name
        self._room_server: Dict[str, QRad] = {}
        self.boilers: List[DigitalBoiler] = []
        self.smartgrid = SmartGridManager(self.engine)
        self._filler_ids = itertools.count()
        self.filler_completed = 0

        bank = FleetRegulatorBank() if self.kernel != "scalar" else None
        self._bank: Optional[FleetRegulatorBank] = bank
        #: bank index → (qrad, district); only populated on the vector kernel
        self._bank_entries: List[Tuple[QRad, int]] = []
        self._district_qrad_idx: Dict[int, List[int]] = {}
        self._district_boilers: Dict[int, List[DigitalBoiler]] = {}
        #: (bank version, {qrad name → heat wanted}) for _qrad_wanted_map
        self._wanted_cache: Tuple[int, Dict[str, bool]] = (-1, {})
        self._bank_entry_names: Optional[Tuple[str, ...]] = None

        for d in range(cfg.n_districts):
            cluster = Cluster(ClusterConfig(name=f"district-{d}", district=d))
            self._district_qrad_idx[d] = []
            self._district_boilers[d] = []
            dedicated_left = (
                cfg.dedicated_per_cluster if cfg.architecture == "dedicated" else 0
            )
            for b in range(cfg.buildings_per_district):
                bname = f"district-{d}/building-{b}"
                rooms = [
                    RoomConfig(
                        name=f"{bname}/room-{r}",
                        thermal=cfg.room_thermal,
                        schedule=ThermostatSchedule(),
                    )
                    for r in range(cfg.rooms_per_building)
                ]
                building = Building(rooms, self.weather, t_init_c=18.0)
                self.buildings[bname] = building
                building_regs = []
                for r, room in enumerate(building.rooms):
                    qrad = QRad(f"{bname}/qrad-{r}", self.engine, QRAD_SPEC)
                    room.attach(qrad)
                    reg = HeatRegulator(cfg.regulator)
                    reg.set_target(cfg.initial_setpoint_c)
                    if self.obs.active:
                        reg.observer = self._regulator_observer(room.name, d)
                    self.regulators[room.name] = reg
                    building_regs.append(reg)
                    self._server_room[qrad.name] = room.name
                    self._room_server[room.name] = qrad
                    self.smartgrid.register(qrad, reg)
                    if bank is not None:
                        self._district_qrad_idx[d].append(bank.attach(reg))
                        self._bank_entries.append((qrad, d))
                    cluster.add_worker(qrad, dedicated_edge=dedicated_left > 0)
                    dedicated_left -= 1
                self.collectives[bname] = CollectiveController(building_regs)
            for bi in range(cfg.boilers_per_district):
                loop = WaterLoop(WaterLoopConfig(), t_init_c=40.0)
                boiler = DigitalBoiler(
                    f"district-{d}/boiler-{bi}", self.engine, loop,
                    spec=STIMERGY_SMALL, ledger=self.ledger,
                )
                self.boilers.append(boiler)
                self._district_boilers[d].append(boiler)
                self.smartgrid.register_boiler(boiler)
                cluster.add_worker(boiler)
            self.clusters[d] = cluster

            decision = (
                DecisionSystem(cfg.decision)
                if cfg.saturation_policy is SaturationPolicy.DECISION
                else None
            )
            sched_kwargs = dict(
                cluster=cluster,
                engine=self.engine,
                policy=cfg.saturation_policy,
                offloader=self.offloader,
                decision_system=decision,
                worker_priority=self._worker_priority,
                incremental_scans=self.kernel != "scalar",
                obs=self.obs,
            )
            if cfg.architecture == "shared":
                sched = SharedWorkersScheduler(
                    context_switch_s=cfg.context_switch_s, **sched_kwargs
                )
            else:
                sched = DedicatedWorkersScheduler(**sched_kwargs)
            self.schedulers[d] = sched
            self.edge_gateways[d] = EdgeGateway(
                sched, self.engine, protocol=cfg.edge_protocol,
                rng=self.rngs.stream(f"edge-net-{d}"), obs=self.obs,
            )
            self.dcc_gateways[d] = DCCGateway(sched, self.engine, wan_link,
                                              obs=self.obs)

        for d, sched in self.schedulers.items():
            self.offloader.register_peer(
                f"district-{d}", sched, Link(f"metro-{d}", 0.004, 1e9)
            )

        # fleet membership is fixed after construction (churn fails/repairs
        # servers in place); cache the flat list so the hot aggregate helpers
        # stop rebuilding it on every call
        self._all_servers: List = [
            w for c in self.clusters.values() for w in c.workers
        ]

        #: city-fused thermal stepping (vector kernel only; None when the
        #: city's buildings cannot be fused — the tick then falls back to
        #: per-building stepping, still byte-identical)
        self._fused_thermal: Optional[FusedCityThermal] = None
        if bank is not None:
            bank.freeze()
            self.smartgrid.attach_bank(bank)
            fused = FusedCityThermal(list(self.buildings.values()))
            if fused.compatible and fused.n == len(bank):
                self._fused_thermal = fused
            # the three tick stages share one fused heap event per period —
            # the same single "df3-tick" dispatch the scalar kernel schedules,
            # so event counts, sequence numbers and labels stay identical
            self.engine.add_process(
                "df3-regulation", cfg.thermal_tick_s, self._tick_regulation,
                group="df3-tick")
            self.engine.add_process(
                "df3-workload", cfg.thermal_tick_s, self._tick_workload,
                group="df3-tick")
            self.engine.add_process(
                "df3-thermal", cfg.thermal_tick_s, self._tick_thermal,
                group="df3-tick")
        else:
            self.engine.add_process("df3-tick", cfg.thermal_tick_s, self._tick)

        #: reduced-order tier (kernel == "surrogate" only); constructed after
        #: the fused substrate so it can validate fleet homogeneity
        self.surrogate: Optional[SurrogateController] = None
        if self.kernel == "surrogate":
            if self._fused_thermal is None:
                raise ValueError(
                    "surrogate kernel requires a fusable city "
                    "(uncoupled rooms, one weather, uniform sub-stepping)"
                )
            self.surrogate = SurrogateController(self, cfg.surrogate)

        self.resilience: Optional[RecoveryRuntime] = None
        if cfg.resilience is not None:
            self.resilience = RecoveryRuntime(self, cfg.resilience)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _regulator_observer(self, room: str, district: int):
        """Per-room hook emitting ``regulator`` records + power gauges.

        Heat-wanted transitions are the regulator's *actions* (they flip the
        filler/power-off admission flag), so only those become trace records;
        the continuous power fraction lands in a gauge.
        """
        state = {"wanted": None}

        def observe(reg) -> None:
            obs = self.obs
            if not obs.active:
                return
            wanted = reg.heat_wanted
            if wanted is not state["wanted"]:
                state["wanted"] = wanted
                obs.emit(
                    "regulator",
                    "regulator.heat_on" if wanted else "regulator.heat_off",
                    self.engine.now, room=room,
                    power_fraction=round(reg.power_fraction, 6),
                    setpoint_c=reg.setpoint_c,
                )
                obs.counter("regulator_transitions", district=district).inc()
            obs.gauge("regulator_power_fraction", room=room).set(reg.power_fraction)

        return observe

    def _tick_metrics(self, now: float) -> None:
        """Fleet-level gauges + sample records, once per thermal tick.

        The ``sample`` records give the SLO engine and run reports a time
        series of the paper's two service-level quantities (comfort in-band
        fraction, fleet availability) that no request record carries.
        """
        obs = self.obs
        for d, cluster in self.clusters.items():
            obs.gauge("cluster_free_cores", district=d).set(cluster.free_cores())
        for bname, building in self.buildings.items():
            temps = building.temperatures
            obs.gauge("building_mean_temp_c", building=bname).set(
                float(sum(temps)) / len(temps))
        obs.gauge("filler_completed").set(self.filler_completed)
        if not (obs.tracer.enabled and obs.tracer.wants("sample")):
            return
        band = self.comfort.band_c
        in_band = total_rooms = 0
        for bname, building in self.buildings.items():
            temps = building.temperatures
            for room in building.rooms:
                sp = self.regulators[room.name].setpoint_c
                if abs(float(temps[room.index]) - sp) <= band:
                    in_band += 1
                total_rooms += 1
        if total_rooms:
            obs.emit("sample", "comfort.sample", now,
                     in_band=in_band / total_rooms, rooms=total_rooms)
        up = free = cores = 0
        for w in self._all_servers:
            cores += w.n_cores
            if w.enabled and not w.failed:
                up += 1
                free += w.free_cores
        n = len(self._all_servers)
        if n:
            util = {}
            for d in sorted(self.clusters):
                cluster = self.clusters[d]
                total = cluster.total_cores()
                if total:
                    util[cluster.name] = 1.0 - cluster.free_cores() / total
            obs.emit("sample", "fleet.sample", now, up=up / n,
                     free_cores=free, total_cores=cores, util=util)

    # ------------------------------------------------------------------ #
    # placement priority: servers whose room wants heat go first
    # ------------------------------------------------------------------ #
    def _worker_priority(self, server) -> tuple:
        if self._bank is not None:
            wanted = self._qrad_wanted_map().get(server.name)
            if wanted is None:  # boiler: tank state changes continuously
                wanted = any(
                    b.name == server.name and b.heat_demand_w() > 0
                    for b in self.boilers
                )
            return (0 if wanted else 1, -server.free_cores)
        room = self._server_room.get(server.name)
        if room is None:  # boiler: wants heat while the tank has headroom
            wanted = any(
                b.name == server.name and b.heat_demand_w() > 0 for b in self.boilers
            )
        else:
            wanted = self.regulators[room].heat_wanted
        return (0 if wanted else 1, -server.free_cores)

    def _qrad_wanted_map(self) -> Dict[str, bool]:
        """Per-Q.rad heat-wanted flags, cached against the bank's version.

        Placement priorities query the flag for every candidate worker of
        every placement; the underlying fractions only change when the bank
        mutates (PI pass, demand-response scaling), so one dict rebuild per
        version replaces thousands of per-query bank reads.  Values equal
        :attr:`HeatRegulator.heat_wanted` by construction.
        """
        bank = self._bank
        if self._wanted_cache[0] != bank.version:
            names = self._bank_entry_names
            if names is None:
                names = self._bank_entry_names = tuple(
                    e[0].name for e in self._bank_entries)
            self._wanted_cache = (
                bank.version,
                dict(zip(names, bank.heat_wanted_mask().tolist())),
            )
        return self._wanted_cache[1]

    # ------------------------------------------------------------------ #
    # the periodic tick: regulation, migration, filler, thermal stepping
    # ------------------------------------------------------------------ #
    def _tick(self, now: float, dt: float) -> None:
        """Scalar kernel: all six tick stages as one process callback."""
        # 1) regulators observe their rooms (collective controllers first:
        #    they rebalance per-room targets toward the requested mean)
        for bname, building in self.buildings.items():
            temps = building.temperatures
            ctrl = self.collectives.get(bname)
            if ctrl is not None and ctrl.active:
                ctrl.update(temps)
            for room in building.rooms:
                self.regulators[room.name].update(dt, float(temps[room.index]))
        # 2) fleet coordination actuates DVFS caps / power states
        self.smartgrid.tick(now, dt)
        # 3+4) migration and filler
        self._tick_workload(now, dt)
        # 5+6) thermal fabric + metric sampling
        self._tick_thermal(now, dt)

    def _tick_regulation(self, now: float, dt: float) -> None:
        """Vector kernel, stage 1+2: PI bank step + fleet coordination.

        Collective controllers run first, building by building, exactly as
        the scalar tick interleaves them; they only write setpoints (through
        the attached regulators into the bank arrays), so hoisting the PI
        updates out of the per-building loop into one bank pass observes the
        same setpoints — and fires the observers in the same attach order the
        scalar loop would.
        """
        sur = self.surrogate
        if sur is not None and sur.begin_tick(now):
            sur.tick_regulation(now, dt)
            self.smartgrid.tick(now, dt)
            return
        temps_parts = []
        for bname, building in self.buildings.items():
            temps = building.temperatures
            ctrl = self.collectives.get(bname)
            if ctrl is not None and ctrl.active:
                ctrl.update(temps)
            temps_parts.append(temps)
        self._bank.update_all(dt, np.concatenate(temps_parts))
        self.smartgrid.tick(now, dt)

    def _tick_workload(self, now: float, dt: float) -> None:
        """Stage 3+4: hybrid migration off cold servers, then filler."""
        if self.surrogate is not None and self.surrogate.switched:
            # drain + power off newly aggregated districts; quiesced servers
            # report 0 free cores, so migration/filler skip them naturally
            self.surrogate.quiesce_pending()
        vec = self._bank is not None
        if self.config.hybrid_migration:
            if vec:
                self._migrate_cold_servers_vec()
            else:
                self._migrate_cold_servers()
        if self.config.enable_filler:
            if vec:
                self._inject_filler_vec()
            else:
                self._inject_filler()

    def _tick_thermal(self, now: float, dt: float) -> None:
        """Stage 5+6: thermal fabric advances, then metric sampling."""
        sur = self.surrogate
        if sur is not None and sur.switched:
            sur.tick_thermal(now, dt)
            hod = self.cal.hour_of_day(now)
            for boiler in self.boilers:
                boiler.thermal_step(now, dt, hod)
            if self.datacenter is not None:
                self.datacenter.account_heat(dt)
            if self.obs.active:
                self._tick_metrics(now)
            return
        if self._fused_thermal is not None:
            self._tick_thermal_vec(now, dt)
            return
        hod = self.cal.hour_of_day(now)
        for bname, building in self.buildings.items():
            building.step(now, dt)
            setpoints = [self.regulators[r.name].setpoint_c for r in building.rooms]
            self.comfort.add(dt, building.temperatures, setpoints,
                             month=self.cal.month(now))
            for room in building.rooms:
                p = room.heater_power_w()
                if p > 0 and self.regulators[room.name].heat_wanted:
                    self.ledger.add_useful_heat(p * dt)
        for boiler in self.boilers:
            boiler.thermal_step(now, dt, hod)
        if self.datacenter is not None:
            self.datacenter.account_heat(dt)
        if self.obs.active:
            self._tick_metrics(now)

    def _tick_thermal_vec(self, now: float, dt: float) -> None:
        """Vector kernel stage 5+6: one fused RC step for the whole city.

        Per-building comfort samples and the room-order useful-heat ledger
        walk are preserved exactly (same accumulators, same fold order), so
        the resulting statistics are bitwise those of the scalar loop.
        """
        fused = self._fused_thermal
        p_heat = fused.step(now, dt)
        if self.surrogate is not None:
            self.surrogate.record_warmup(p_heat)
        month = self.cal.month(now)
        setpoints = self._bank.setpoints
        if fused.uniform:
            nb = len(fused.buildings)
            self.comfort.add_rows(dt, fused.t_air.reshape(nb, -1),
                                  setpoints.reshape(nb, -1), month=month)
        else:
            for sl in fused.slices:
                self.comfort.add(dt, fused.t_air[sl], setpoints[sl], month=month)
        wanted = self._bank.heat_wanted_mask().tolist()
        add_useful = self.ledger.add_useful_heat
        for p, w in zip(p_heat, wanted):
            if p > 0 and w:
                add_useful(p * dt)
        hod = self.cal.hour_of_day(now)
        for boiler in self.boilers:
            boiler.thermal_step(now, dt, hod)
        if self.datacenter is not None:
            self.datacenter.account_heat(dt)
        if self.obs.active:
            self._tick_metrics(now)

    def _migrate_cold_servers(self) -> None:
        """Move preemptible cloud work off servers whose room rejects heat.

        The Qarnot hybrid infrastructure (§III-A): boards turn off when no
        heat is requested, and pending Internet work continues in the
        datacenter.
        """
        for d, sched in self.schedulers.items():
            for w in self.clusters[d].workers:
                room = self._server_room.get(w.name)
                if room is None or self.regulators[room].heat_wanted:
                    continue
                for task in list(w.running_tasks):
                    kind = task.metadata.get("kind")
                    if kind == "filler":
                        w.preempt(task.task_id)
                    elif kind == "cloud" and task.metadata["request"].preemptible:
                        t = w.preempt(task.task_id)
                        creq = t.metadata["request"]
                        creq.cycles = max(t.remaining_cycles, 1.0)
                        if self.offloader.can_vertical(creq):
                            self.offloader.vertical(creq, sched)
                            sched.stats.cloud_offloaded_vertical += 1
                        else:
                            sched.cloud_queue.push_front(creq)

    def _migrate_cold_servers_vec(self) -> None:
        """Vector kernel: visit only the cold, non-idle Q.rads.

        The scalar loop walks every worker of every district and skips the
        heat-wanted ones; here the cold set comes straight off the bank's
        mask.  Bank order is district-major and matches the scalar visit
        order, so preemptions and vertical offloads happen in the same
        sequence.
        """
        entries = self._bank_entries
        for i in np.flatnonzero(~self._bank.heat_wanted_mask()).tolist():
            server, d = entries[i]
            if server.idle:
                continue
            sched = self.schedulers[d]
            for task in list(server.running_tasks):
                kind = task.metadata.get("kind")
                if kind == "filler":
                    server.preempt(task.task_id)
                elif kind == "cloud" and task.metadata["request"].preemptible:
                    t = server.preempt(task.task_id)
                    creq = t.metadata["request"]
                    creq.cycles = max(t.remaining_cycles, 1.0)
                    if self.offloader.can_vertical(creq):
                        self.offloader.vertical(creq, sched)
                        sched.stats.cloud_offloaded_vertical += 1
                    else:
                        sched.cloud_queue.push_front(creq)

    def _inject_filler(self) -> None:
        for server in self.smartgrid.heat_wanted_servers():
            while server.free_cores > 0:
                chunk = Task(
                    task_id=f"filler-{next(self._filler_ids)}",
                    work_cycles=(
                        server.core_rate_cycles_per_s() or server.spec.ladder.top.freq_ghz * _GHZ
                    )
                    * self.config.filler_chunk_s,
                    cores=1,
                    on_complete=lambda t, now: self._filler_done(),
                    metadata={"kind": "filler"},
                )
                if not server.submit(chunk):
                    break
                if self.obs.active:
                    self.obs.counter("filler_injected").inc()

    def _inject_filler_vec(self) -> None:
        """Vector kernel: one batched submit per heat-wanted server.

        The scalar loop submits chunk by chunk, each paying a sync and a
        completion cancel/reschedule; a powered-on server with ``f`` free
        cores accepts exactly ``f`` one-core chunks, so pre-building the
        batch consumes the same filler ids and :meth:`ComputeServer.
        submit_batch` reserves the sequence numbers the per-chunk path would
        have burned — the surviving completion event is bit-identical.
        """
        chunk_s = self.config.filler_chunk_s
        obs_active = self.obs.active
        for server in self.smartgrid.heat_wanted_servers():
            free = server.free_cores
            if free <= 0:
                continue
            work = (
                server.core_rate_cycles_per_s() or server.spec.ladder.top.freq_ghz * _GHZ
            ) * chunk_s
            mk = Task.prevalidated
            done = self._filler_chunk_done
            ids = self._filler_ids
            tasks = [
                mk(f"filler-{next(ids)}", work, 1, done, {"kind": "filler"})
                for _ in range(free)
            ]
            accepted = server.submit_batch(tasks)
            if obs_active and accepted:
                self.obs.counter("filler_injected").inc(accepted)

    def _filler_chunk_done(self, task: Task, now: float) -> None:
        self._filler_done()

    def _filler_done(self) -> None:
        self.filler_completed += 1

    # ------------------------------------------------------------------ #
    # the three flows
    # ------------------------------------------------------------------ #
    def _district_of(self, source: str) -> int:
        try:
            return int(source.split("/")[0].split("-")[1])
        except (IndexError, ValueError):
            raise ValueError(f"cannot infer district from source {source!r}") from None

    def submit_heating(self, req: HeatingRequest) -> None:
        """First flow: update comfort targets of the rooms in scope.

        A collective request covering *all* rooms of one building activates
        that building's mean-temperature controller (§II-C); individual
        requests set single regulators and release collective control there.
        """
        for room in req.rooms:
            if room not in self.regulators:
                raise KeyError(f"unknown room {room!r}")
        if self.obs.active:
            self.obs.emit("regulator", "regulator.set_target", self.engine.now,
                          id=req.request_id, rooms=list(req.rooms),
                          target_c=req.target_temp_c, collective=req.collective)
            self.obs.counter("requests_admitted", flow="heating").inc()
        if req.collective:
            building = req.rooms[0].rsplit("/", 1)[0]
            ctrl = self.collectives.get(building)
            if ctrl is not None and building in self.buildings:
                rooms_of_building = {r.name for r in self.buildings[building].rooms}
                if set(req.rooms) == rooms_of_building:
                    ctrl.set_mean_target(req.target_temp_c)
                    return
        for room in req.rooms:
            self.regulators[room].set_target(req.target_temp_c)
            building = room.rsplit("/", 1)[0]
            ctrl = self.collectives.get(building)
            if ctrl is not None:
                ctrl.clear()

    def submit_cloud(self, req: CloudRequest, district: Optional[int] = None) -> None:
        """Second flow: Internet request through a district's DCC gateway.

        Routed to the district whose cluster currently has the most
        heat-authorised free capacity (the smart-grid goal: compute lands
        where heat is requested); falls back to round-robin on ties.
        """
        if district is None:
            if self._bank is not None:
                district = self._route_cloud_vec()
            else:
                district = max(
                    self.clusters,
                    key=lambda d: sum(
                        w.free_cores
                        for w in self.clusters[d].workers
                        if self._wants_heat(w)
                    ),
                )
        if self.surrogate is not None:
            self.surrogate.ensure_live(district, reason="cloud")
        self.dcc_gateways[district].submit(req)

    def _route_cloud_vec(self) -> int:
        """Vector kernel: heat-authorised-capacity routing off the bank mask.

        Same argmax as the scalar ``max(...)`` — integer core sums, first
        district wins ties (``>`` keeps the earliest maximum, as ``max`` over
        the dict's insertion order does).
        """
        wanted = self._bank.heat_wanted_mask().tolist()
        entries = self._bank_entries
        best_d = -1
        best = -1
        for d in self.clusters:
            total = 0
            for i in self._district_qrad_idx[d]:
                if wanted[i]:
                    total += entries[i][0].free_cores
            for b in self._district_boilers[d]:
                if b.heat_demand_w() > 0:
                    total += b.free_cores
            if total > best:
                best_d, best = d, total
        return best_d

    def _wants_heat(self, server) -> bool:
        room = self._server_room.get(server.name)
        if room is None:
            return any(b.name == server.name and b.heat_demand_w() > 0 for b in self.boilers)
        return self.regulators[room].heat_wanted

    def submit_edge(self, req: EdgeRequest, direct_target: Optional[str] = None) -> None:
        """Third flow: local request through its district's edge gateway."""
        d = self._district_of(req.source)
        if d not in self.edge_gateways:
            raise ValueError(f"no such district {d}")
        if self.surrogate is not None:
            self.surrogate.ensure_live(d, reason="edge")
        target = None
        if direct_target is not None:
            target = self.clusters[d].worker(direct_target)
        if (target is None and self.resilience is not None
                and self.resilience.maybe_clone(req, d)):
            return  # submitted as a clone pair (policy engine said yes)
        self.edge_gateways[d].submit(req, direct_target=target)

    # ------------------------------------------------------------------ #
    # experiment helpers
    # ------------------------------------------------------------------ #
    def inject(self, requests, direct_targets: Optional[Dict[str, str]] = None) -> None:
        """Schedule a batch of requests at their arrival times."""
        for req in requests:
            if isinstance(req, HeatingRequest):
                self.engine.schedule_at(req.time, lambda r=req: self.submit_heating(r),
                                        label="inject:heating")
            elif isinstance(req, EdgeRequest):
                tgt = (direct_targets or {}).get(req.request_id)
                self.engine.schedule_at(
                    req.time, lambda r=req, t=tgt: self.submit_edge(r, direct_target=t),
                    label="inject:edge",
                )
            elif isinstance(req, CloudRequest):
                self.engine.schedule_at(req.time, lambda r=req: self.submit_cloud(r),
                                        label="inject:cloud")
            else:
                raise TypeError(f"cannot inject {type(req).__name__}")

    def run_until(self, t: float) -> None:
        """Advance the whole city to simulated time ``t``."""
        self.engine.run_until(t)

    # ------------------------------------------------------------------ #
    # aggregated results
    # ------------------------------------------------------------------ #
    @property
    def all_servers(self) -> List:
        """Every DF server in the city (Q.rads + boilers).

        The list is cached at construction — cluster membership never changes
        afterwards (churn fails and repairs servers in place) — and a copy is
        returned so callers may mutate their snapshot freely.
        """
        return list(self._all_servers)

    def completed_edge(self) -> List[EdgeRequest]:
        """Edge requests completed anywhere in the city."""
        return [r for s in self.schedulers.values() for r in s.completed_edge]

    def completed_cloud(self) -> List[CloudRequest]:
        """Cloud requests completed anywhere (including vertical offloads)."""
        return [r for s in self.schedulers.values() for r in s.completed_cloud]

    def expired_edge(self) -> List[EdgeRequest]:
        """Edge requests dropped past their deadline."""
        return [r for s in self.schedulers.values() for r in s.expired_edge]

    def edge_deadline_miss_rate(self) -> float:
        """City-wide edge deadline miss rate (expired count as misses)."""
        done = self.completed_edge()
        expired = self.expired_edge()
        n = len(done) + len(expired)
        if n == 0:
            return 0.0
        misses = sum(1 for r in done if not r.deadline_met()) + len(expired)
        return misses / n

    def fleet_energy_j(self) -> float:
        """Electrical energy of all DF servers so far (J).

        Under the surrogate kernel, quiesced districts draw no metered power;
        their calibrated modelled energy is added so the fleet total stays a
        like-for-like aggregate (within the declared budget).
        """
        servers = self._all_servers
        for s in servers:
            s.sync()
        total = sum(s.energy_j for s in servers)
        if self.surrogate is not None:
            total += self.surrogate.modeled_energy_j
        return total

    def total_cycles_executed(self) -> float:
        """Cycles executed by the DF fleet so far."""
        servers = self._all_servers
        for s in servers:
            s.sync()
        return sum(s.cycles_executed for s in servers)

    def audit_isolation(self):
        """Audit executed placements against the natural segmentation policy.

        Architecture class 2 implies the §III-B isolated policy (edge VPN +
        DCC net per the dedication split); class 1 implies the flat policy.
        Returns the list of :class:`~repro.network.segmentation.Violation`.
        """
        from repro.network.segmentation import IsolationAuditor, SegmentationPolicy

        shared = self.config.architecture == "shared"
        policy = SegmentationPolicy.flat() if shared else SegmentationPolicy.isolated()
        segment_of = {}
        for cluster in self.clusters.values():
            segment_of.update(
                IsolationAuditor.segments_for_cluster(cluster, shared=shared)
            )
        auditor = IsolationAuditor(policy, segment_of)
        return auditor.audit(self.completed_edge() + self.completed_cloud())
