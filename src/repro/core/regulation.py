"""The per-server heat regulator (paper §III-B, last paragraph).

"To make sure that the expectations will be complied, we propose to add a heat
regulator system in each DF server.  The heat regulator implements a DVFS
based technique (voltage and frequency regulation) to guarantee that the
energy consumed corresponds to the heat demand."

The regulator is a PI controller on room-temperature error:

* **input** — the room's thermostat setpoint and measured air temperature;
* **output** — a *power-budget fraction* in [0, 1] of the server's envelope,
  actuated as (a) a DVFS frequency cap chosen with
  :meth:`~repro.hardware.cpu.DVFSLadder.index_for_power_budget` and (b) a
  ``heat_wanted`` admission flag the middleware uses to decide whether this
  server should receive filler compute (and whether idle motherboards may be
  powered off — the Qarnot hybrid-infrastructure behaviour of §III-A).

Anti-windup: the integral term is clamped so a long cold spell cannot latch
the controller at saturation for hours after the error clears.

Observability: the regulator itself knows neither time nor room name, so it
exposes an :attr:`HeatRegulator.observer` hook — a callable invoked with the
regulator after every :meth:`HeatRegulator.update`.  The middleware binds one
per room to emit ``regulator.*`` trace records and power-fraction gauges; the
default (``None``) costs a single attribute check per tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["RegulatorConfig", "HeatRegulator"]


@dataclass(frozen=True)
class RegulatorConfig:
    """PI gains and actuation limits.

    ``kp`` is in power-fraction per °C; ``ki`` in power-fraction per °C·hour.
    ``off_threshold`` — below this commanded fraction the server's boards may
    be switched off (no heat wanted at all); ``min_on_fraction`` — floor
    fraction when on (idle power exists anyway).
    """

    kp: float = 0.5
    ki: float = 0.4
    integral_limit: float = 2.5
    off_threshold: float = 0.05
    min_on_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0:
            raise ValueError("gains must be >= 0")
        if self.integral_limit <= 0:
            raise ValueError("integral limit must be > 0")
        if not 0 <= self.off_threshold <= 1 or not 0 <= self.min_on_fraction <= 1:
            raise ValueError("thresholds must be in [0, 1]")


class HeatRegulator:
    """PI controller binding one server to one room.

    Call :meth:`update` on the thermal tick; read :attr:`power_fraction` and
    :attr:`heat_wanted`, and let it drive the server's DVFS cap via
    :meth:`apply_to_server`.
    """

    def __init__(self, config: RegulatorConfig = RegulatorConfig()):
        self.config = config
        self.setpoint_c = 20.0
        self._integral = 0.0
        self.power_fraction = 0.0
        self.last_error_c = 0.0
        #: observability hook, called as ``observer(self)`` after each update
        self.observer: Optional[Callable[["HeatRegulator"], None]] = None

    def set_target(self, setpoint_c: float) -> None:
        """Update the comfort target (a heating request landing)."""
        if not 5.0 <= setpoint_c <= 30.0:
            raise ValueError(f"setpoint {setpoint_c} outside sane range")
        self.setpoint_c = float(setpoint_c)

    def update(self, dt_s: float, room_temp_c: float) -> float:
        """Advance the controller by ``dt_s``; returns the power fraction."""
        if dt_s <= 0:
            raise ValueError(f"dt must be > 0, got {dt_s}")
        cfg = self.config
        err = self.setpoint_c - room_temp_c
        self.last_error_c = err
        self._integral += err * dt_s / 3600.0
        self._integral = max(min(self._integral, cfg.integral_limit), -cfg.integral_limit)
        u = cfg.kp * err + cfg.ki * self._integral
        self.power_fraction = max(0.0, min(1.0, u))
        if self.observer is not None:
            self.observer(self)
        return self.power_fraction

    @property
    def heat_wanted(self) -> bool:
        """True when the room needs heat (server should receive compute)."""
        return self.power_fraction > self.config.off_threshold

    def apply_to_server(self, server) -> None:
        """Actuate the server: DVFS cap, and power on/off when safe.

        A server with running tasks is never powered off here — draining and
        migration are the scheduler's job; the regulator only gates idle
        boards (the §III-A "motherboards are turned off when no heat is
        requested" behaviour).
        """
        if self.heat_wanted:
            if not server.enabled:
                server.power_on()
            budget = max(self.power_fraction, self.config.min_on_fraction)
            server.set_freq_cap(server.spec.ladder.index_for_power_budget(budget))
        else:
            if server.enabled and not server.running_tasks:
                server.power_off()

    def reset(self) -> None:
        """Clear integral state (e.g. on season change)."""
        self._integral = 0.0
        self.power_fraction = 0.0
