"""The per-server heat regulator (paper §III-B, last paragraph).

"To make sure that the expectations will be complied, we propose to add a heat
regulator system in each DF server.  The heat regulator implements a DVFS
based technique (voltage and frequency regulation) to guarantee that the
energy consumed corresponds to the heat demand."

The regulator is a PI controller on room-temperature error:

* **input** — the room's thermostat setpoint and measured air temperature;
* **output** — a *power-budget fraction* in [0, 1] of the server's envelope,
  actuated as (a) a DVFS frequency cap chosen with
  :meth:`~repro.hardware.cpu.DVFSLadder.index_for_power_budget` and (b) a
  ``heat_wanted`` admission flag the middleware uses to decide whether this
  server should receive filler compute (and whether idle motherboards may be
  powered off — the Qarnot hybrid-infrastructure behaviour of §III-A).

Anti-windup: the integral term is clamped so a long cold spell cannot latch
the controller at saturation for hours after the error clears.

Observability: the regulator itself knows neither time nor room name, so it
exposes an :attr:`HeatRegulator.observer` hook — a callable invoked with the
regulator after every :meth:`HeatRegulator.update`.  The middleware binds one
per room to emit ``regulator.*`` trace records and power-fraction gauges; the
default (``None``) costs a single attribute check per tick.

Fleet-scale fast path: a city of thousands of regulators all tick on the same
period, so the per-tick PI arithmetic is embarrassingly data-parallel.
:class:`FleetRegulatorBank` holds the mutable state of many regulators in
numpy arrays and steps them all in one :meth:`FleetRegulatorBank.update_all`
pass.  An *attached* regulator keeps its full scalar API — every attribute
read/write is redirected into the bank's arrays — so collective controllers,
the smart-grid manager, faults and tests keep working unchanged, while the
scalar :meth:`HeatRegulator.update` remains the reference implementation the
vector pass is tested byte-for-byte against (see DESIGN.md §2.13 for the
float-order discipline that makes byte-identity achievable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["RegulatorConfig", "HeatRegulator", "FleetRegulatorBank"]


@dataclass(frozen=True)
class RegulatorConfig:
    """PI gains and actuation limits.

    ``kp`` is in power-fraction per °C; ``ki`` in power-fraction per °C·hour.
    ``off_threshold`` — below this commanded fraction the server's boards may
    be switched off (no heat wanted at all); ``min_on_fraction`` — floor
    fraction when on (idle power exists anyway).
    """

    kp: float = 0.5
    ki: float = 0.4
    integral_limit: float = 2.5
    off_threshold: float = 0.05
    min_on_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0:
            raise ValueError("gains must be >= 0")
        if self.integral_limit <= 0:
            raise ValueError("integral limit must be > 0")
        if not 0 <= self.off_threshold <= 1 or not 0 <= self.min_on_fraction <= 1:
            raise ValueError("thresholds must be in [0, 1]")


class HeatRegulator:
    """PI controller binding one server to one room.

    Call :meth:`update` on the thermal tick; read :attr:`power_fraction` and
    :attr:`heat_wanted`, and let it drive the server's DVFS cap via
    :meth:`apply_to_server`.

    A regulator is either *detached* (state lives in plain attributes — the
    scalar reference implementation) or *attached* to a
    :class:`FleetRegulatorBank` (state lives at one index of the bank's
    arrays, stepped by the vectorised pass).  The public API is identical in
    both modes.
    """

    __slots__ = ("config", "observer", "_bank", "_idx",
                 "_sp", "_int", "_pf", "_err")

    def __init__(self, config: RegulatorConfig = RegulatorConfig()):
        self.config = config
        self._bank: Optional["FleetRegulatorBank"] = None
        self._idx = -1
        self._sp = 20.0
        self._int = 0.0
        self._pf = 0.0
        self._err = 0.0
        #: observability hook, called as ``observer(self)`` after each update
        self.observer: Optional[Callable[["HeatRegulator"], None]] = None

    # ------------------------------------------------------------------ #
    # state accessors: plain attributes when detached, bank slots when
    # attached.  Getters convert to builtin float so formatting/rounding of
    # downstream consumers never sees a numpy scalar.
    # ------------------------------------------------------------------ #
    @property
    def setpoint_c(self) -> float:
        """Comfort target (°C)."""
        b = self._bank
        return self._sp if b is None else float(b._setpoint[self._idx])

    @setpoint_c.setter
    def setpoint_c(self, value: float) -> None:
        if self._bank is None:
            self._sp = value
        else:
            self._bank._setpoint[self._idx] = value

    @property
    def _integral(self) -> float:
        b = self._bank
        return self._int if b is None else float(b._integral[self._idx])

    @_integral.setter
    def _integral(self, value: float) -> None:
        if self._bank is None:
            self._int = value
        else:
            self._bank._integral[self._idx] = value

    @property
    def power_fraction(self) -> float:
        """Commanded power-budget fraction in [0, 1]."""
        b = self._bank
        return self._pf if b is None else float(b._power_fraction[self._idx])

    @power_fraction.setter
    def power_fraction(self, value: float) -> None:
        if self._bank is None:
            self._pf = value
        else:
            self._bank._power_fraction[self._idx] = value
            self._bank.version += 1

    @property
    def last_error_c(self) -> float:
        """Temperature error (°C) observed by the most recent update."""
        b = self._bank
        return self._err if b is None else float(b._last_error[self._idx])

    @last_error_c.setter
    def last_error_c(self, value: float) -> None:
        if self._bank is None:
            self._err = value
        else:
            self._bank._last_error[self._idx] = value

    # ------------------------------------------------------------------ #
    def set_target(self, setpoint_c: float) -> None:
        """Update the comfort target (a heating request landing)."""
        if not 5.0 <= setpoint_c <= 30.0:
            raise ValueError(f"setpoint {setpoint_c} outside sane range")
        self.setpoint_c = float(setpoint_c)

    def update(self, dt_s: float, room_temp_c: float) -> float:
        """Advance the controller by ``dt_s``; returns the power fraction.

        This scalar path is the reference implementation;
        :meth:`FleetRegulatorBank.update_all` performs the same operations in
        the same per-element order and is asserted byte-identical to it.
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be > 0, got {dt_s}")
        cfg = self.config
        err = self.setpoint_c - room_temp_c
        self.last_error_c = err
        integral = self._integral + err * dt_s / 3600.0
        self._integral = max(min(integral, cfg.integral_limit), -cfg.integral_limit)
        u = cfg.kp * err + cfg.ki * self._integral
        self.power_fraction = max(0.0, min(1.0, u))
        if self.observer is not None:
            self.observer(self)
        return self.power_fraction

    @property
    def heat_wanted(self) -> bool:
        """True when the room needs heat (server should receive compute)."""
        return self.power_fraction > self.config.off_threshold

    def apply_to_server(self, server) -> None:
        """Actuate the server: DVFS cap, and power on/off when safe.

        A server with running tasks is never powered off here — draining and
        migration are the scheduler's job; the regulator only gates idle
        boards (the §III-A "motherboards are turned off when no heat is
        requested" behaviour).
        """
        if self.heat_wanted:
            if not server.enabled:
                server.power_on()
            budget = max(self.power_fraction, self.config.min_on_fraction)
            server.set_freq_cap(server.spec.ladder.index_for_power_budget(budget))
        else:
            if server.enabled and not server.running_tasks:
                server.power_off()

    def reset(self) -> None:
        """Clear integral state (e.g. on season change)."""
        self._integral = 0.0
        self.power_fraction = 0.0


class FleetRegulatorBank:
    """Steps every attached :class:`HeatRegulator` in one numpy pass.

    Usage: :meth:`attach` regulators in a fixed order (the order defines the
    array layout and the observer call order), :meth:`freeze` once the fleet
    is complete, then call :meth:`update_all` on the thermal tick with the
    per-regulator room temperatures in attach order.

    **Byte-identity contract** — for any temperature sequence, the arrays
    after :meth:`update_all` hold exactly the floats the scalar
    :meth:`HeatRegulator.update` would have produced regulator by regulator:
    every elementwise numpy operation below mirrors the scalar expression's
    association order, and reductions are never used (IEEE-754 float64
    arithmetic is deterministic per element; only re-association changes
    bits).  ``tests/test_kernel_equivalence.py`` enforces this.
    """

    def __init__(self) -> None:
        self.regulators: List[HeatRegulator] = []
        self._setpoint: "np.ndarray | list" = []
        self._integral: "np.ndarray | list" = []
        self._power_fraction: "np.ndarray | list" = []
        self._last_error: "np.ndarray | list" = []
        self._kp: "np.ndarray | list" = []
        self._ki: "np.ndarray | list" = []
        self._int_limit: "np.ndarray | list" = []
        self._off_threshold: "np.ndarray | list" = []
        self._frozen = False
        #: bumped on every power-fraction mutation; consumers may cache any
        #: heat-wanted derived view for as long as the version stands still
        self.version = 0

    def __len__(self) -> int:
        return len(self.regulators)

    # ------------------------------------------------------------------ #
    def attach(self, reg: HeatRegulator) -> int:
        """Adopt a regulator's state into the bank; returns its index."""
        if self._frozen:
            raise RuntimeError("cannot attach to a frozen bank")
        if reg._bank is not None:
            raise ValueError("regulator is already attached to a bank")
        idx = len(self.regulators)
        # copy current scalar state before redirecting the accessors
        self._setpoint.append(reg.setpoint_c)
        self._integral.append(reg._integral)
        self._power_fraction.append(reg.power_fraction)
        self._last_error.append(reg.last_error_c)
        cfg = reg.config
        self._kp.append(cfg.kp)
        self._ki.append(cfg.ki)
        self._int_limit.append(cfg.integral_limit)
        self._off_threshold.append(cfg.off_threshold)
        self.regulators.append(reg)
        reg._bank = self
        reg._idx = idx
        return idx

    def freeze(self) -> None:
        """Convert the staging lists to arrays; no more attachments after."""
        if self._frozen:
            return
        self._setpoint = np.asarray(self._setpoint, dtype=np.float64)
        self._integral = np.asarray(self._integral, dtype=np.float64)
        self._power_fraction = np.asarray(self._power_fraction, dtype=np.float64)
        self._last_error = np.asarray(self._last_error, dtype=np.float64)
        self._kp = np.asarray(self._kp, dtype=np.float64)
        self._ki = np.asarray(self._ki, dtype=np.float64)
        self._int_limit = np.asarray(self._int_limit, dtype=np.float64)
        self._neg_int_limit = -self._int_limit
        self._off_threshold = np.asarray(self._off_threshold, dtype=np.float64)
        self._frozen = True

    # ------------------------------------------------------------------ #
    @property
    def power_fraction(self) -> np.ndarray:
        """Per-regulator power fractions (attach order).  Read-only view."""
        return self._power_fraction

    @property
    def setpoints(self) -> np.ndarray:
        """Per-regulator comfort targets (°C, attach order).  Read-only view."""
        return self._setpoint

    def heat_wanted_mask(self) -> np.ndarray:
        """Boolean array: which regulators currently request heat."""
        if not self._frozen:
            raise RuntimeError("freeze() the bank before bulk queries")
        return self._power_fraction > self._off_threshold

    def heat_wanted_indices(self) -> np.ndarray:
        """Indices of heat-requesting regulators, ascending (attach order)."""
        return np.flatnonzero(self.heat_wanted_mask())

    def scale_power(self, scale: float) -> None:
        """Multiply every power fraction by ``scale`` (demand-response cap)."""
        if not self._frozen:
            raise RuntimeError("freeze() the bank before bulk updates")
        self._power_fraction *= scale
        self.version += 1

    # ------------------------------------------------------------------ #
    def update_all(self, dt_s: float, room_temps_c: Sequence[float]) -> None:
        """One PI step for every regulator; mirrors the scalar float order.

        ``room_temps_c`` must align with the attach order.  Observers are
        invoked afterwards in attach order — the same sequence the scalar
        loop produces — and must not mutate regulator state.
        """
        if not self._frozen:
            raise RuntimeError("freeze() the bank before update_all")
        if dt_s <= 0:
            raise ValueError(f"dt must be > 0, got {dt_s}")
        temps = np.asarray(room_temps_c, dtype=np.float64)
        if temps.shape != self._setpoint.shape:
            raise ValueError(
                f"expected {self._setpoint.shape[0]} temperatures, got {temps.shape}"
            )
        err = self._setpoint - temps
        self._last_error[:] = err
        # integral += err * dt / 3600, then the anti-windup clamp — the
        # multiply/divide/add association matches HeatRegulator.update
        self._integral += err * dt_s / 3600.0
        np.minimum(self._integral, self._int_limit, out=self._integral)
        np.maximum(self._integral, self._neg_int_limit, out=self._integral)
        u = self._kp * err
        u += self._ki * self._integral
        np.minimum(u, 1.0, out=u)
        np.maximum(u, 0.0, out=u)
        self._power_fraction[:] = u
        self.version += 1
        for reg in self.regulators:
            if reg.observer is not None:
                reg.observer(reg)

    def update_subset(self, dt_s: float, room_temps_c: Sequence[float],
                      idx: "np.ndarray") -> None:
        """One PI step for the regulators at ``idx`` only (attach order).

        The surrogate kernel's live districts tick through this path while
        aggregate districts are advanced by the reduced-order model.  Every
        gathered elementwise expression mirrors :meth:`update_all` — numpy
        fancy indexing preserves per-element IEEE-754 results — so a subset
        update produces, at those indices, exactly the floats a full
        :meth:`update_all` (and hence the scalar reference) would have.
        """
        if not self._frozen:
            raise RuntimeError("freeze() the bank before update_subset")
        if dt_s <= 0:
            raise ValueError(f"dt must be > 0, got {dt_s}")
        idx = np.asarray(idx, dtype=np.intp)
        temps = np.asarray(room_temps_c, dtype=np.float64)
        if temps.shape != idx.shape:
            raise ValueError(
                f"expected {idx.shape[0]} temperatures, got {temps.shape}"
            )
        err = self._setpoint[idx] - temps
        self._last_error[idx] = err
        integral = self._integral[idx] + err * dt_s / 3600.0
        np.minimum(integral, self._int_limit[idx], out=integral)
        np.maximum(integral, self._neg_int_limit[idx], out=integral)
        self._integral[idx] = integral
        u = self._kp[idx] * err
        u += self._ki[idx] * integral
        np.minimum(u, 1.0, out=u)
        np.maximum(u, 0.0, out=u)
        self._power_fraction[idx] = u
        self.version += 1
        regs = self.regulators
        for i in idx.tolist():
            reg = regs[i]
            if reg.observer is not None:
                reg.observer(reg)
