"""Fault injection: crashes, master outages, WAN partitions (§III-C, §IV).

The paper raises availability twice:

* §III-C — "the availability and stability of DF servers could also be a
  problem", including physical security of servers deployed in homes;
* §IV — the resource-oriented-computing argument: "such an approach can
  easily guarantee that the basic services delivered by the resources (heat
  for instance) will continue to be delivered even if there are problems in
  the central point."

:class:`FaultInjector` provides the failure vocabulary experiments need to
test those claims against the actual middleware:

* **server crash** — kills running tasks (they are re-queued or offloaded per
  the scheduler's policy via :meth:`crash_server`'s salvage hook) and powers
  the board off until :meth:`recover_server`;
* **master outage** — the cluster's indirect-request path is down: the edge
  gateway rejects indirect submissions, while *heat regulation continues*
  (regulators are local to each server — the §IV decentralisation property);
* **WAN partition** — vertical offloading is disconnected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.hardware.server import ComputeServer, Task

__all__ = ["FaultInjector", "FaultLog"]


@dataclass
class FaultLog:
    """What the injector did, for experiment reports."""

    server_crashes: int = 0
    server_recoveries: int = 0
    tasks_killed: int = 0
    tasks_salvaged: int = 0
    master_outages: int = 0
    wan_partitions: int = 0
    events: List[str] = field(default_factory=list)

    def note(self, t: float, what: str) -> None:
        """Append a timestamped log line."""
        self.events.append(f"t={t:.0f}s {what}")


class FaultInjector:
    """Injects faults into a :class:`~repro.core.middleware.DF3Middleware`.

    All methods are safe to call from scheduled engine events.
    """

    def __init__(self, middleware):
        self.mw = middleware
        self.log = FaultLog()
        self._down_servers: Set[str] = set()
        self._masters_down: Set[int] = set()
        self._wan_partitioned = False

    def _note(self, name: str, **args) -> None:
        """Emit a ``fault`` trace record + counter through the middleware."""
        obs = getattr(self.mw, "obs", None)
        if obs is not None and obs.active:
            obs.emit("fault", name, self.mw.engine.now, **args)
            obs.counter("fault_events", type=name.split(".", 1)[-1]).inc()

    # ------------------------------------------------------------------ #
    # server crashes
    # ------------------------------------------------------------------ #
    def crash_server(self, server_name: str, salvage: bool = True,
                     hard: bool = False) -> int:
        """Hard-fail a DF server.  Returns the number of tasks it was running.

        With ``salvage``, killed cloud requests re-enter their cluster's queue
        and killed edge requests are re-submitted (they may still make their
        deadline elsewhere); filler is dropped.  With ``hard``, the server is
        marked failed and stays off until :meth:`recover_server` even if the
        heat regulator asks for power (churn-model semantics); the default
        soft crash keeps the legacy behaviour where the smart grid may power
        the board back up on the next thermal tick.
        """
        killed, district = self.kill_server(server_name, hard=hard)
        if salvage:
            self.salvage_tasks(killed, district)
        return len(killed)

    def kill_server(self, server_name: str, hard: bool = False):
        """Kill a server's tasks and power it off — no salvage.

        Returns ``(killed_tasks, district)`` so a failure detector can defer
        salvage until the crash is actually *detected* (heartbeat timeout)
        rather than the omniscient instant of the fault.
        """
        server, district = self._find(server_name)
        sur = getattr(self.mw, "surrogate", None)
        if sur is not None:
            # churn-affected districts leave the aggregate model before the
            # fault lands: the crash must hit real per-server state
            sur.ensure_live(district, reason="churn")
        killed = server.kill_all()
        if hard:
            server.fail()
        else:
            server.power_off()
        self._down_servers.add(server_name)
        self.log.server_crashes += 1
        self.log.tasks_killed += len(killed)
        self.log.note(self.mw.engine.now, f"crash {server_name} ({len(killed)} tasks)")
        self._note("fault.server_crash", server=server_name, district=district,
                   tasks_killed=len(killed), hard=hard)
        return killed, district

    def salvage_tasks(self, killed, district: int, progress: str = "preserve",
                      salvage_edge: bool = True) -> float:
        """Re-route tasks killed by a crash; returns the wasted (redo) cycles.

        ``progress`` sets the cloud restart point:

        * ``"preserve"`` — optimistic legacy semantics: all progress survives
          the crash (as if state were continuously replicated);
        * ``"restart"`` — the request re-runs from scratch;
        * ``"checkpoint"`` — it re-runs from the last periodic checkpoint
          (``task.metadata["ckpt_remaining"]``, written by the resilience
          runtime's checkpointer).

        Killed edge requests have their lifecycle state reset and re-enter
        through the *gateway* — so a concurrent master outage rejects salvage
        exactly as it rejects fresh indirect traffic.  With
        ``salvage_edge=False`` they are terminally rejected instead (no retry
        policy: the client never learns it should resubmit).  Filler is
        always dropped.
        """
        if progress not in ("preserve", "restart", "checkpoint"):
            raise ValueError(f"unknown progress mode {progress!r}")
        sched = self.mw.schedulers[district]
        gateway = self.mw.edge_gateways[district]
        obs = getattr(self.mw, "obs", None)
        wasted = 0.0
        for task in killed:
            kind = task.metadata.get("kind")
            req = task.metadata.get("request")
            if req is None:
                continue
            if kind == "cloud":
                if progress == "preserve":
                    restart_from = task.remaining_cycles
                elif progress == "checkpoint":
                    restart_from = task.metadata.get("ckpt_remaining", req.cycles)
                else:
                    restart_from = req.cycles
                wasted += max(0.0, restart_from - task.remaining_cycles)
                req.cycles = max(restart_from, 1.0)
                req.status = RequestStatus.QUEUED
                if obs is not None and obs.active:
                    obs.emit_span("resilience", "cloud.salvaged",
                                  self.mw.engine.now, ctx=req,
                                  id=req.request_id, server=req.executed_on,
                                  progress=progress)
                sched.cloud_queue.push_front(req)
                self.log.tasks_salvaged += 1
            elif kind == "edge":
                if not salvage_edge:
                    sched.reject_edge(req, reason="crash")
                    continue
                if progress == "preserve":
                    req.cycles = max(task.remaining_cycles, 1.0)
                else:
                    wasted += max(0.0, req.cycles - task.remaining_cycles)
                if obs is not None and obs.active:
                    obs.emit_span("resilience", "edge.salvaged",
                                  self.mw.engine.now, ctx=req,
                                  id=req.request_id, server=req.executed_on,
                                  progress=progress)
                req.status = RequestStatus.QUEUED
                req.started_at = -1.0
                req.executed_on = ""
                gateway.resubmit(req)
                self.log.tasks_salvaged += 1
        sched.drain()
        return wasted

    def recover_server(self, server_name: str) -> None:
        """Bring a crashed server back (empty, powered on)."""
        if server_name not in self._down_servers:
            raise ValueError(f"server {server_name!r} is not down")
        server, district = self._find(server_name)
        server.repair()
        self._down_servers.discard(server_name)
        self.log.server_recoveries += 1
        self.log.note(self.mw.engine.now, f"recover {server_name}")
        self._note("fault.server_recover", server=server_name, district=district)
        self.mw.schedulers[district].drain()

    def _find(self, server_name: str):
        for district, cluster in self.mw.clusters.items():
            try:
                return cluster.worker(server_name), district
            except KeyError:
                continue
        raise KeyError(f"no server named {server_name!r} in any cluster")

    @property
    def down_servers(self) -> Set[str]:
        """Names of currently crashed servers."""
        return set(self._down_servers)

    # ------------------------------------------------------------------ #
    # master outage
    # ------------------------------------------------------------------ #
    def fail_master(self, district: int) -> None:
        """Take a district's master down: indirect edge submission rejects.

        The direct path survives (it does not need the master, §II-C) and the
        gateway keeps its obs instrumentation — the outage is a first-class
        :attr:`EdgeGateway.master_up` flag, not a method patch.
        """
        if district in self._masters_down:
            raise ValueError(f"master of district {district} already down")
        self.mw.edge_gateways[district].master_up = False
        self._masters_down.add(district)
        self.log.master_outages += 1
        self.log.note(self.mw.engine.now, f"master outage district {district}")
        self._note("fault.master_outage", district=district)

    def restore_master(self, district: int) -> None:
        """Bring a district's master back."""
        if district not in self._masters_down:
            raise ValueError(f"master of district {district} is not down")
        self.mw.edge_gateways[district].master_up = True
        self._masters_down.discard(district)
        self.log.note(self.mw.engine.now, f"master restored district {district}")
        self._note("fault.master_restore", district=district)

    def master_is_down(self, district: int) -> bool:
        """Whether a district's master is currently out."""
        return district in self._masters_down

    # ------------------------------------------------------------------ #
    # WAN partition
    # ------------------------------------------------------------------ #
    def partition_wan(self) -> None:
        """Cut the city off from the datacenter (vertical offloading fails).

        With :attr:`Offloader.store_and_forward` enabled, vertical offloads
        buffer during the partition instead of failing, and drain on heal.
        """
        if self._wan_partitioned:
            raise ValueError("WAN already partitioned")
        self.mw.offloader.set_wan_up(False)
        self._wan_partitioned = True
        self.log.wan_partitions += 1
        self.log.note(self.mw.engine.now, "WAN partitioned")
        self._note("fault.wan_partition")

    def heal_wan(self) -> None:
        """Restore datacenter connectivity."""
        if not self._wan_partitioned:
            raise ValueError("WAN is not partitioned")
        self.mw.offloader.set_wan_up(True)
        self._wan_partitioned = False
        self.log.note(self.mw.engine.now, "WAN healed")
        self._note("fault.wan_heal")

    @property
    def wan_partitioned(self) -> bool:
        """Whether the WAN is currently cut."""
        return self._wan_partitioned
