"""The automated decision system (paper §III-B).

"In all cases, we recommend to modelize the computational problem as a
decision problem that can be solved by an automated system."

Given a saturated cluster and an edge request, :class:`DecisionSystem` picks
one of the §III-B options — queue/delay, preempt DCC work, offload
horizontally, offload vertically, or reject — from an estimate of whether each
option can still meet the deadline:

1. **QUEUE** when the EDF queue is expected to reach this request before its
   deadline (estimated from running-task residuals);
2. **PREEMPT** when preemptible DCC work can free enough cores right now;
3. **HORIZONTAL** when a peer fits it and the metro hop leaves slack;
4. **VERTICAL** when the WAN round trip leaves slack and privacy allows;
5. **REJECT** when nothing can make the deadline (failing fast beats wasting
   cycles on a response nobody can use).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.requests import EdgeRequest

__all__ = ["Decision", "DecisionConfig", "DecisionSystem"]


class Decision(str, Enum):
    """Possible outcomes for a saturated edge request."""

    LOCAL = "local"
    QUEUE = "queue"
    PREEMPT = "preempt"
    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"
    REJECT = "reject"


@dataclass(frozen=True)
class DecisionConfig:
    """Tunables of the decision policy.

    ``slack_factor`` discounts the usable deadline (safety margin);
    ``prefer_preempt`` ranks preemption above horizontal offload (local
    placement keeps data in the building).
    """

    slack_factor: float = 0.8
    prefer_preempt: bool = True
    metro_hop_estimate_s: float = 0.01
    wan_rtt_estimate_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.slack_factor <= 1:
            raise ValueError("slack factor must be in (0, 1]")
        if self.metro_hop_estimate_s < 0 or self.wan_rtt_estimate_s < 0:
            raise ValueError("delay estimates must be >= 0")


class DecisionSystem:
    """Deadline-feasibility-driven choice among the §III-B options."""

    def __init__(self, config: DecisionConfig = DecisionConfig()):
        self.config = config
        self.decisions: dict[Decision, int] = {d: 0 for d in Decision}

    # ------------------------------------------------------------------ #
    def _exec_time_s(self, req: EdgeRequest, scheduler) -> float:
        workers = scheduler.edge_workers()
        if not workers:
            return float("inf")
        rate = max(w.core_rate_cycles_per_s() for w in workers)
        if rate <= 0:
            rate = max(
                w.spec.ladder.top.freq_ghz * 1e9 for w in workers
            )
        return req.cycles / (rate * req.cores)

    def _queue_wait_estimate_s(self, req: EdgeRequest, scheduler) -> float:
        """Rough time until ``req.cores`` free up on some edge worker."""
        best = float("inf")
        for w in scheduler.edge_workers():
            if not w.enabled:
                continue
            if w.free_cores >= req.cores:
                return 0.0
            rate = w.core_rate_cycles_per_s()
            if rate <= 0:
                continue
            # residual times of running tasks, shortest first
            residuals = sorted(
                t.remaining_cycles / (rate * t.cores) for t in w.running_tasks
            )
            freed = w.free_cores
            for r in residuals:
                freed_cores = freed
                freed_cores += sum(
                    t.cores
                    for t in w.running_tasks
                    if t.remaining_cycles / (rate * t.cores) <= r
                )
                if freed_cores >= req.cores:
                    best = min(best, r)
                    break
        # pending EDF queue ahead of us adds delay; coarse linear penalty
        best += len(scheduler.edge_queue) * self._exec_time_s(req, scheduler)
        return best

    def _preemptible_cores(self, scheduler) -> int:
        return sum(
            t.cores
            for w in scheduler.edge_workers()
            for t in w.running_tasks
            if t.metadata.get("kind") == "cloud" and t.metadata["request"].preemptible
        )

    # ------------------------------------------------------------------ #
    def decide(self, req: EdgeRequest, scheduler) -> Decision:
        """Choose an action for a request that found no free cores."""
        cfg = self.config
        now = scheduler.engine.now
        budget = (req.time + req.deadline_s - now) * cfg.slack_factor
        exec_s = self._exec_time_s(req, scheduler)
        choice = self._decide_inner(req, scheduler, budget, exec_s)
        self.decisions[choice] += 1
        return choice

    def _decide_inner(self, req, scheduler, budget, exec_s) -> Decision:
        cfg = self.config
        if budget <= 0:
            return Decision.REJECT
        can_preempt = self._preemptible_cores(scheduler) + sum(
            w.free_cores for w in scheduler.edge_workers()
        ) >= req.cores
        if cfg.prefer_preempt and can_preempt and exec_s <= budget:
            return Decision.PREEMPT
        wait = self._queue_wait_estimate_s(req, scheduler)
        if wait + exec_s <= budget:
            return Decision.QUEUE
        off = scheduler.offloader
        if off is not None:
            peer = off.best_peer(req, exclude=scheduler.cluster.name)
            if peer is not None and cfg.metro_hop_estimate_s + exec_s <= budget:
                return Decision.HORIZONTAL
            if off.can_vertical(req) and cfg.wan_rtt_estimate_s + exec_s <= budget:
                return Decision.VERTICAL
        if can_preempt and exec_s <= budget:  # preemption as last resort
            return Decision.PREEMPT
        return Decision.REJECT
