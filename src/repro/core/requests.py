"""The three request flows of the DF3 model (paper §II-C).

* :class:`HeatingRequest` — "deliver heat to the environment in which the DF
  server is deployed"; numerical comfort targets, individual or collective;
* :class:`CloudRequest` — Internet computing requests serviced with a
  distributed-cloud model (rendering, risk computation, BOINC-like batches);
* :class:`EdgeRequest` — local computing requests, **direct** (device talks
  straight to a DF server) or **indirect** (via the cluster master), with
  near-real-time deadlines and a privacy class.

Requests carry their own outcome timeline (queued → started → completed /
rejected / missed-deadline) so metric collectors can reduce over plain lists
of requests without auxiliary bookkeeping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "Flow",
    "EdgeMode",
    "RequestStatus",
    "HeatingRequest",
    "CloudRequest",
    "EdgeRequest",
    "reset_ids",
]

_ids = itertools.count()


def _next_id(prefix: str) -> str:
    return f"{prefix}-{next(_ids)}"


def reset_ids(start: int = 0) -> None:
    """Restart the request-id counter (trace determinism in sweep workers).

    Request ids are process-global, so a forked worker inherits whatever
    count its parent had reached and a traced parallel sweep would name the
    same request differently from run to run.  Sweep workers call this
    before each traced point so its ids are a pure function of the point.
    """
    global _ids
    _ids = itertools.count(start)


class Flow(str, Enum):
    """The three flows of the DF3 processing model."""

    HEATING = "heating"
    CLOUD = "cloud"
    EDGE = "edge"


class EdgeMode(str, Enum):
    """How an edge request reaches its worker (paper §II-C)."""

    DIRECT = "direct"      # straight to a DF server on the local network
    INDIRECT = "indirect"  # via the cluster master (safer, + latency)


class RequestStatus(str, Enum):
    """Lifecycle of a compute request."""

    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    OFFLOADED = "offloaded"


@dataclass
class HeatingRequest:
    """A comfort target from a host (the first flow).

    Collective requests target the mean temperature of several rooms
    ("set the mean temperature in rooms of an apartment"); individual
    requests target one server's room.
    """

    target_temp_c: float
    time: float
    rooms: tuple = ()           # room names in scope
    collective: bool = False
    request_id: str = field(default_factory=lambda: _next_id("heat"))

    def __post_init__(self) -> None:
        if not 5.0 <= self.target_temp_c <= 30.0:
            raise ValueError(
                f"target temperature {self.target_temp_c} outside sane range 5..30 °C"
            )
        if self.collective and len(self.rooms) < 2:
            raise ValueError("collective request needs at least two rooms")


@dataclass
class _ComputeRequest:
    """Shared fields of cloud and edge requests."""

    cycles: float
    time: float
    cores: int = 1
    input_bytes: float = 0.0
    output_bytes: float = 0.0

    status: RequestStatus = RequestStatus.CREATED
    started_at: float = -1.0
    completed_at: float = -1.0
    executed_on: str = ""
    network_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError(f"cycles must be > 0, got {self.cycles}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("message sizes must be >= 0")

    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """True once the request reached a terminal state."""
        return self.status in (RequestStatus.COMPLETED, RequestStatus.REJECTED)

    def response_time(self) -> float:
        """Submission-to-completion latency including network (s)."""
        if self.status is not RequestStatus.COMPLETED:
            raise ValueError(f"request {self.request_id} not completed")
        return self.completed_at - self.time

    def mark_completed(self, now: float) -> None:
        """Transition to COMPLETED at ``now``."""
        self.status = RequestStatus.COMPLETED
        self.completed_at = now

    def mark_rejected(self) -> None:
        """Transition to REJECTED (no capacity anywhere, or inadmissible)."""
        self.status = RequestStatus.REJECTED


@dataclass
class CloudRequest(_ComputeRequest):
    """An Internet/DCC computing request (the second flow)."""

    user: str = "anonymous"
    preemptible: bool = True
    request_id: str = field(default_factory=lambda: _next_id("cloud"))

    flow = Flow.CLOUD


@dataclass
class EdgeRequest(_ComputeRequest):
    """A local computing request (the third flow, the paper's addition)."""

    deadline_s: float = 1.0          # relative near-real-time deadline
    mode: EdgeMode = EdgeMode.INDIRECT
    source: str = ""                 # topology node (building) of origin
    privacy_sensitive: bool = True   # edge data should not leave the cluster
    request_id: str = field(default_factory=lambda: _next_id("edge"))

    flow = Flow.EDGE

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.deadline_s <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline_s}")

    def deadline_met(self) -> bool:
        """True when the request completed within its deadline."""
        if self.status is not RequestStatus.COMPLETED:
            return False
        return self.response_time() <= self.deadline_s + 1e-12
