"""Structural perf/outcome diff between two JSON artifacts (`repro diff`).

The radar compares any two of the repo's machine-readable artifacts — run
reports (``repro run --report-json``), bench envelopes (``BENCH_*.json``,
see ``benchmarks/bench_schema.py``) or plain metric dicts — and classifies
every leaf-level change instead of demanding byte equality:

* **timing keys** (``*_s``, ``*_ms``, ``*_mib`` …, or containing ``latency``
  / ``rtt`` / ``wall``) are *lower-better*: the candidate only
  regresses when it exceeds the baseline by more than the relative tolerance
  band **and** the absolute floor (so jitter on sub-second timings never
  flags);
* **speedup keys** (containing ``speedup`` or ``ratio``) are
  *higher-better* with the same band;
* **everything else numeric or string is exact** — a changed SLO rate,
  deadline percentage or ``result_digest`` is a regression at any delta;
* **scheduling detail** (worker assignment, chunk steals, heartbeats,
  retry/death accounting) legitimately varies between two identical-config
  runs and is reported as *info*, never a regression;
* ``commit`` / ``generated_at`` / ``wrote`` provenance keys are ignored,
  and a ``cpu_count`` mismatch anywhere in scope downgrades every timing
  and speedup comparison under it to *skipped* (numbers measured on
  different hardware are not comparable — the bench honesty convention);
* the sentinel ``"skipped_insufficient_cores"`` matches anything: an
  undersized CI box neither passes nor fails a perf gate.

Deterministic: entries come out in sorted-path order, so two diffs of the
same pair of files are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["DiffEntry", "DiffReport", "diff_artifacts", "diff_files",
           "load_artifact"]

# leaf keys that are pure provenance: always ignored
_IGNORED_KEYS = frozenset({"commit", "generated_at", "wrote", "timestamp"})
# scheduling detail that legitimately varies between two identical-config
# runs (work stealing, worker assignment, crash/retry accounting), plus
# ``cpu_count`` hardware provenance (it *drives* the skip logic below):
# reported as "info" when changed, never a regression
_INFO_KEYS = frozenset({
    "worker", "attempts", "chunk_steals", "chunks_dispatched",
    "queue_depth_peak", "worker_deaths", "retried_nodes",
    "respawned_workers", "duplicate_results", "cpu_count",
})
_INFO_SEGMENTS = frozenset({"last_heartbeat", "nodes_per_worker"})
# sentinel an undersized box writes instead of a perf number
_SKIP_SENTINEL = "skipped_insufficient_cores"
# suffixes / substrings marking a lower-is-better measured quantity
_TIMING_SUFFIXES = ("_s", "_ms", "_us", "_ns", "_mib", "_mb", "_bytes")
_TIMING_SUBSTRINGS = ("latency", "rtt", "wall", "staleness")
_HIGHER_BETTER_SUBSTRINGS = ("speedup", "ratio", "throughput", "per_s")
# below this absolute delta (seconds/units) a timing change is noise
_DEFAULT_ABS_FLOOR = 0.25


def classify_key(key: str) -> str:
    """How a leaf key is compared: lower_better | higher_better | exact."""
    low = key.lower()
    if any(s in low for s in _HIGHER_BETTER_SUBSTRINGS):
        return "higher_better"
    if low.endswith(_TIMING_SUFFIXES) or \
            any(s in low for s in _TIMING_SUBSTRINGS):
        return "lower_better"
    return "exact"


@dataclass
class DiffEntry:
    """One leaf-level comparison outcome."""

    path: str           # dotted path into the artifact ("rows.0.serial_s")
    kind: str           # lower_better | higher_better | exact | structure
    status: str         # ok | regression | improvement | skipped | added | missing
    base: Any = None
    cand: Any = None
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "kind": self.kind, "status": self.status,
                "base": self.base, "cand": self.cand, "note": self.note}


@dataclass
class DiffReport:
    """All entries of one artifact comparison, sorted by path."""

    base_name: str
    cand_name: str
    rel_tol: float
    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "improvement"]

    @property
    def skipped(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "skipped"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base_name,
            "cand": self.cand_name,
            "rel_tol": self.rel_tol,
            "ok": self.ok,
            "counts": {
                "compared": len(self.entries),
                "regressions": len(self.regressions),
                "improvements": len(self.improvements),
                "skipped": len(self.skipped),
            },
            "entries": [e.to_dict() for e in self.entries
                        if e.status != "ok"],
        }

    def render(self) -> str:
        """Human-readable summary, stable across reruns of the same pair."""
        lines = [f"diff {self.base_name} -> {self.cand_name} "
                 f"(rel_tol={self.rel_tol:g})"]
        shown = [e for e in self.entries if e.status != "ok"]
        for e in shown:
            delta = ""
            if isinstance(e.base, (int, float)) and \
                    isinstance(e.cand, (int, float)) and \
                    not isinstance(e.base, bool) and e.base:
                delta = f" ({(e.cand - e.base) / abs(e.base):+.1%})"
            lines.append(f"  [{e.status:<11}] {e.path}: "
                         f"{e.base!r} -> {e.cand!r}{delta}"
                         + (f"  # {e.note}" if e.note else ""))
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.skipped)} skipped, "
            f"{len(self.entries)} leaves compared")
        return "\n".join(lines)


def load_artifact(path: Union[str, Path]) -> Any:
    """Load one JSON (or JSONL: list of objects) artifact from disk."""
    p = Path(path)
    text = p.read_text(encoding="utf-8")
    if p.suffix == ".jsonl":
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    return json.loads(text)


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _leaf_key(path: str) -> str:
    return path.rsplit(".", 1)[-1]


def _walk(base: Any, cand: Any, path: str,
          out: List[Tuple[str, Any, Any]]) -> None:
    """Flatten both trees into aligned (path, base, cand) leaf triples."""
    if isinstance(base, dict) and isinstance(cand, dict):
        for key in sorted(set(base) | set(cand)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in base:
                out.append((sub, _MISSING, cand[key]))
            elif key not in cand:
                out.append((sub, base[key], _MISSING))
            else:
                _walk(base[key], cand[key], sub, out)
        return
    if isinstance(base, list) and isinstance(cand, list):
        for i in range(max(len(base), len(cand))):
            sub = f"{path}.{i}" if path else str(i)
            if i >= len(base):
                out.append((sub, _MISSING, cand[i]))
            elif i >= len(cand):
                out.append((sub, base[i], _MISSING))
            else:
                _walk(base[i], cand[i], sub, out)
        return
    out.append((path, base, cand))


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<absent>"


_MISSING = _Missing()


def _cpu_mismatch_scopes(base: Any, cand: Any) -> List[str]:
    """Dotted-path prefixes under which ``cpu_count`` disagrees."""
    scopes: List[str] = []

    def visit(b: Any, c: Any, path: str) -> None:
        if isinstance(b, dict) and isinstance(c, dict):
            if b.get("cpu_count") is not None and \
                    c.get("cpu_count") is not None and \
                    b["cpu_count"] != c["cpu_count"]:
                scopes.append(path)
            for key in sorted(set(b) & set(c)):
                visit(b[key], c[key],
                      f"{path}.{key}" if path else str(key))
        elif isinstance(b, list) and isinstance(c, list):
            for i in range(min(len(b), len(c))):
                visit(b[i], c[i], f"{path}.{i}" if path else str(i))

    visit(base, cand, "")
    return scopes


def diff_artifacts(base: Any, cand: Any, rel_tol: float = 0.2,
                   abs_floor: float = _DEFAULT_ABS_FLOOR,
                   base_name: str = "base",
                   cand_name: str = "candidate") -> DiffReport:
    """Compare two parsed artifacts; see the module docstring for semantics."""
    report = DiffReport(base_name=base_name, cand_name=cand_name,
                        rel_tol=rel_tol)
    leaves: List[Tuple[str, Any, Any]] = []
    _walk(base, cand, "", leaves)
    mismatch_scopes = _cpu_mismatch_scopes(base, cand)

    for path, b, c in leaves:
        key = _leaf_key(path)
        if key in _IGNORED_KEYS:
            continue
        kind = classify_key(key)
        perf = kind in ("lower_better", "higher_better")
        info = (key in _INFO_KEYS
                or not _INFO_SEGMENTS.isdisjoint(path.split(".")))
        entry = DiffEntry(path=path, kind=kind, status="ok",
                          base=None if b is _MISSING else b,
                          cand=None if c is _MISSING else c)

        if b is _MISSING:
            entry.status, entry.kind = "added", "structure"
            entry.note = "key only in candidate"
        elif c is _MISSING:
            entry.kind = "structure"
            entry.note = "key dropped from candidate"
            entry.status = "missing" if (perf or info) else "regression"
        elif b == _SKIP_SENTINEL or c == _SKIP_SENTINEL:
            entry.status = "skipped"
            entry.note = "undersized box (cpu_count convention)"
        elif info:
            if b != c:
                entry.status = "info"
                entry.note = "scheduling detail: varies between runs"
        elif perf and any(path.startswith(s + ".") or s == ""
                          for s in mismatch_scopes):
            entry.status = "skipped"
            entry.note = "cpu_count differs: timings not comparable"
        elif _is_number(b) and _is_number(c) and perf:
            delta = c - b
            band = rel_tol * abs(b)
            worse = delta > 0 if kind == "lower_better" else delta < 0
            if worse and abs(delta) > band and abs(delta) > abs_floor:
                entry.status = "regression"
                entry.note = f"outside ±{rel_tol:.0%} band"
            elif (not worse) and abs(delta) > band and abs(delta) > abs_floor:
                entry.status = "improvement"
        elif b != c:
            # exact-compared leaf changed: outcome drift is a regression
            entry.status = "regression"
            entry.note = "exact-match key changed"
        report.entries.append(entry)
    return report


def diff_files(base_path: Union[str, Path], cand_path: Union[str, Path],
               rel_tol: float = 0.2,
               abs_floor: float = _DEFAULT_ABS_FLOOR) -> DiffReport:
    """Load two artifact files and diff them (names taken from the paths)."""
    base = load_artifact(base_path)
    cand = load_artifact(cand_path)
    return diff_artifacts(base, cand, rel_tol=rel_tol, abs_floor=abs_floor,
                          base_name=str(base_path), cand_name=str(cand_path))
