"""Per-subsystem wall-clock profiling of the DES engine.

When a :class:`Profiler` is attached to :class:`repro.sim.engine.Engine`,
every dispatched callback is timed with ``perf_counter`` and attributed to a
label: the explicit ``label=`` passed at scheduling time (periodic processes
get ``process:<name>`` automatically), falling back to the callback's
``__qualname__`` — which for the closures scheduled by gateways, offloaders
and schedulers already names the owning subsystem
(``EdgeGateway.submit.<locals>.<lambda>``, ``Offloader.vertical.<locals>.arrive``,
…).

Wall-clock numbers never feed back into the simulation, so profiling cannot
perturb results — it only answers "where does the real time go?".
"""

from __future__ import annotations

from typing import Dict

__all__ = ["Profiler"]


class Profiler:
    """Accumulates call count and wall-clock seconds per label."""

    __slots__ = ("_calls", "_seconds", "_max")

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}
        self._max: Dict[str, float] = {}

    def record(self, label: str, seconds: float) -> None:
        """Attribute one timed call to ``label``."""
        self._calls[label] = self._calls.get(label, 0) + 1
        self._seconds[label] = self._seconds.get(label, 0.0) + seconds
        if seconds > self._max.get(label, 0.0):
            self._max[label] = seconds

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler into this one (worker → parent merge-back)."""
        for label in sorted(other._calls):
            self._calls[label] = self._calls.get(label, 0) + other._calls[label]
            self._seconds[label] = (self._seconds.get(label, 0.0)
                                    + other._seconds[label])
            if other._max[label] > self._max.get(label, 0.0):
                self._max[label] = other._max[label]

    @property
    def total_s(self) -> float:
        """Wall-clock seconds across all labels."""
        return sum(self._seconds.values())

    @property
    def total_calls(self) -> int:
        """Timed calls across all labels."""
        return sum(self._calls.values())

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Label → {calls, total_s, mean_us, max_us}, hottest first."""
        out: Dict[str, Dict[str, float]] = {}
        for label in sorted(self._seconds, key=self._seconds.get, reverse=True):
            calls = self._calls[label]
            total = self._seconds[label]
            out[label] = {
                "calls": calls,
                "total_s": total,
                "mean_us": total / calls * 1e6,
                "max_us": self._max[label] * 1e6,
            }
        return out

    def report(self, top: int = 15) -> str:
        """Human-readable table of the ``top`` hottest labels."""
        # imported here: repro.obs must stay importable from anywhere in
        # repro.core, which repro.metrics transitively depends on
        from repro.metrics.report import Table

        stats = self.stats()
        grand = self.total_s or 1.0
        table = Table(
            ["subsystem", "calls", "total_s", "mean_us", "max_us", "share"],
            title=f"profile — {self.total_calls} callbacks, "
                  f"{self.total_s:.3f}s wall clock",
        )
        for label, s in list(stats.items())[:top]:
            table.add_row(
                label,
                int(s["calls"]),
                round(s["total_s"], 4),
                round(s["mean_us"], 1),
                round(s["max_us"], 1),
                f"{s['total_s'] / grand:.1%}",
            )
        return table.render()
