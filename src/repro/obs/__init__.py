"""Observability layer: structured tracing, metrics and profiling.

The three pillars (see DESIGN.md, "Observability"):

* :class:`~repro.obs.trace.Tracer` — typed span/event records of what the
  middleware did, exportable to JSONL and Chrome trace-event format;
* :class:`~repro.obs.registry.MetricsRegistry` — named counters / gauges /
  histograms with labels, snapshot/diff support;
* :class:`~repro.obs.profiler.Profiler` — per-subsystem wall-clock accounting
  inside the DES engine.

They travel together as one :class:`Observability` bundle.  Instrumented code
holds an ``obs`` reference and guards every instrumentation site with
``if obs.active:`` — on the default inactive bundle that is a single attribute
read, which keeps uninstrumented runs at full speed and byte-identical output.

Wiring pattern: the CLI (or a test) builds an active bundle and installs it as
the process-wide current one around an experiment run::

    with obs_session(Observability(tracer=Tracer())) as obs:
        result = experiment.run()
    obs.tracer.write_jsonl("trace.jsonl")

:class:`~repro.core.middleware.DF3Middleware` picks up the current bundle at
construction time (or accepts one explicitly), so every experiment becomes
fully instrumented without touching its code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.profiler import Profiler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import SpanIndex, adopt_chain, link_spans, next_span, span_context
from repro.obs.trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RingTracer,
    TraceRecord,
    Tracer,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "OBS_OFF",
    "Profiler",
    "RingTracer",
    "SpanIndex",
    "TraceRecord",
    "Tracer",
    "adopt_chain",
    "get_obs",
    "install",
    "link_spans",
    "obs_session",
    "read_jsonl",
    "span_context",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]


class Observability:
    """One bundle of tracer + metrics registry + profiler.

    Any pillar may be absent: ``Observability(tracer=Tracer())`` traces
    without collecting metrics, ``Observability(registry=MetricsRegistry())``
    collects metrics without tracing, ``Observability()`` is fully inactive.
    """

    __slots__ = ("tracer", "registry", "profiler", "metrics_enabled")

    def __init__(self, tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 profiler: Optional[Profiler] = None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics_enabled = registry is not None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.profiler = profiler

    @property
    def active(self) -> bool:
        """True when any pillar should receive data — the hot-path guard."""
        return (self.tracer.enabled or self.metrics_enabled
                or self.profiler is not None)

    # convenience pass-throughs so call sites read `obs.emit(...)` etc.
    def emit(self, kind: str, name: str, ts: float,
             dur: Optional[float] = None, **args: Any) -> None:
        """Emit a trace record (no-op when tracing is off)."""
        self.tracer.emit(kind, name, ts, dur=dur, **args)

    def emit_span(self, kind: str, name: str, ts: float, ctx: Any,
                  dur: Optional[float] = None, **args: Any) -> None:
        """Emit a causally-linked record on ``ctx``'s span chain.

        ``ctx`` is the request (or any carrier with a ``request_id``) whose
        story this event belongs to; the span's parent is the carrier's
        previous span, so consecutive lifecycle events of one request form a
        chain (cross-request links — clones, adoptions — are made explicitly
        via :func:`repro.obs.span.link_spans` / :func:`~repro.obs.span.
        adopt_chain`).  No-op, with no chain allocation, when tracing is off
        or the tracer's kind filter drops ``kind`` — filtered kinds never
        leave dangling parents.
        """
        tracer = self.tracer
        if not tracer.enabled or not tracer.wants(kind):
            return
        c = span_context(ctx)
        span_id, parent_id = next_span(c)
        tracer.emit(kind, name, ts, dur=dur, trace_id=c["trace"],
                    span_id=span_id, parent_id=parent_id, **args)

    def counter(self, name: str, **labels: Any) -> Counter:
        """Counter from this bundle's registry."""
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Gauge from this bundle's registry."""
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """Histogram from this bundle's registry."""
        return self.registry.histogram(name, **labels)


#: The inactive default bundle every component falls back to.
OBS_OFF = Observability()

_current: Observability = OBS_OFF


def get_obs() -> Observability:
    """The process-wide current bundle (inactive unless one was installed)."""
    return _current


def install(obs: Observability) -> Observability:
    """Make ``obs`` the current bundle; returns the previous one."""
    global _current
    previous = _current
    _current = obs
    return previous


@contextmanager
def obs_session(obs: Observability) -> Iterator[Observability]:
    """Install ``obs`` for the duration of a ``with`` block."""
    previous = install(obs)
    try:
        yield obs
    finally:
        install(previous)
