"""Self-contained HTML run reports from a trace.

``repro report trace.jsonl`` turns one run's trace into a single HTML file
with zero external dependencies — no scripts, no fonts, no CDN: every chart
is inline SVG, hover detail rides native SVG ``<title>`` tooltips, and the
file can be mailed, archived as a CI artifact, or opened from disk offline.

Sections, top to bottom:

* **SLO panel** — one card per objective (:mod:`repro.obs.slo`), verdict
  spelled out as text (PASS/FAIL) beside the status colour, never colour
  alone;
* **metric time series** — comfort in-band fraction, fleet availability and
  per-window edge deadline compliance as single-series line charts (one
  y-axis each; a dashed, labelled target line marks the objective);
* **span waterfalls** — the slowest end-to-end requests, their critical
  path rendered as timed segments with a per-segment duration table
  (``policy.decision`` spans ride the chain, so a waterfall shows *why* a
  clone existed);
* **recovery policy decisions** — counts of the policy engine's
  spawn/skip/cancel/switch decisions, when the trace carries any;
* **fleet utilisation heatmap** — district × time-of-run busy fraction on
  a single-hue sequential ramp with a labelled scale.

Colours are the repo's validated light-mode chart palette (see DESIGN.md,
"Observability v2"): series blue ``#2a78d6``, sequential ramp ``#cde2fb`` →
``#0d366b``, status green/red only ever next to a text verdict.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.slo import SLOEngine, SLOReport, SLOSpec
from repro.obs.span import Segment, SpanIndex
from repro.obs.trace import TraceRecord, read_jsonl

__all__ = ["render_live_dashboard", "render_report", "write_report",
           "report_from_jsonl"]

# validated light-mode palette (scripts/validate_palette.js, DESIGN.md)
_SURFACE = "#fcfcfb"
_INK = "#20201d"
_MUTED = "#6f6c66"
_GRID = "#e7e4df"
_BLUE = "#2a78d6"
_RAMP_LO = (0xCD, 0xE2, 0xFB)   # #cde2fb
_RAMP_HI = (0x0D, 0x36, 0x6B)   # #0d366b
_GOOD = "#008300"
_BAD = "#e34948"

_W = 860                        # chart width (px)


def _esc(s: object) -> str:
    return html.escape(str(s), quote=True)


def _ramp(frac: float) -> str:
    """Sequential blue ramp: 0 → lightest, 1 → darkest."""
    f = min(1.0, max(0.0, frac))
    rgb = [round(lo + (hi - lo) * f) for lo, hi in zip(_RAMP_LO, _RAMP_HI)]
    return "#{:02x}{:02x}{:02x}".format(*rgb)


def _fmt_s(seconds: float) -> str:
    """Compact duration: 0.42s / 12.3s / 4.2min / 1.8h."""
    s = abs(seconds)
    if s < 60:
        return f"{seconds:.2f}s" if s < 10 else f"{seconds:.1f}s"
    if s < 3600:
        return f"{seconds / 60:.1f}min"
    return f"{seconds / 3600:.1f}h"


# ---------------------------------------------------------------------- #
# chart primitives (inline SVG)
# ---------------------------------------------------------------------- #
def _line_chart(points: Sequence[Tuple[float, float]], title: str,
                target: Optional[float] = None,
                target_label: str = "", height: int = 190) -> str:
    """One single-series line chart; x = hours into the run, y = 0..100 %."""
    if not points:
        return ""
    pad_l, pad_r, pad_t, pad_b = 46, 14, 30, 26
    iw, ih = _W - pad_l - pad_r, height - pad_t - pad_b
    x_max = max(t for t, _ in points) or 1.0

    def sx(t: float) -> float:
        return pad_l + iw * t / x_max

    def sy(v: float) -> float:
        return pad_t + ih * (1.0 - min(1.0, max(0.0, v)))

    parts = [f'<svg viewBox="0 0 {_W} {height}" role="img" '
             f'aria-label="{_esc(title)}">',
             f'<text x="{pad_l}" y="18" class="ct">{_esc(title)}</text>']
    for frac in (0.0, 0.5, 1.0):                       # y grid + labels
        y = sy(frac)
        parts.append(f'<line x1="{pad_l}" y1="{y:.1f}" x2="{_W - pad_r}" '
                     f'y2="{y:.1f}" class="grid"/>')
        parts.append(f'<text x="{pad_l - 6}" y="{y + 4:.1f}" '
                     f'class="tick" text-anchor="end">{frac:.0%}</text>')
    n_ticks = min(8, max(2, int(x_max // 4) or 2))     # x ticks
    for i in range(n_ticks + 1):
        t = x_max * i / n_ticks
        parts.append(f'<text x="{sx(t):.1f}" y="{height - 8}" class="tick" '
                     f'text-anchor="middle">{t:.0f}h</text>')
    if target is not None:
        y = sy(target)
        parts.append(f'<line x1="{pad_l}" y1="{y:.1f}" x2="{_W - pad_r}" '
                     f'y2="{y:.1f}" class="target"/>')
        parts.append(f'<text x="{_W - pad_r}" y="{y - 5:.1f}" class="tgt" '
                     f'text-anchor="end">{_esc(target_label)}</text>')
    pts = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in points)
    parts.append(f'<polyline points="{pts}" class="series"/>')
    for t, v in points:                                # hover markers
        parts.append(f'<circle cx="{sx(t):.1f}" cy="{sy(v):.1f}" r="2.6" '
                     f'class="dot"><title>{t:.1f}h — {v:.1%}</title></circle>')
    parts.append("</svg>")
    return "".join(parts)


def _waterfall(trace_id: str, segments: Sequence[Segment],
               outcome: str) -> str:
    """One request's critical path as a timed horizontal segment track."""
    if not segments:
        return ""
    t0 = segments[0].start_ts
    total = max(segments[-1].end_ts - t0, 1e-9)
    pad_l, pad_r, bar_y, bar_h, height = 10, 10, 26, 24, 64
    iw = _W - pad_l - pad_r
    parts = [f'<svg viewBox="0 0 {_W} {height}" role="img" '
             f'aria-label="critical path of {_esc(trace_id)}">',
             f'<text x="{pad_l}" y="16" class="ct">{_esc(trace_id)} — '
             f'{_fmt_s(total)} end to end — {_esc(outcome)}</text>']
    for seg in segments:
        x = pad_l + iw * (seg.start_ts - t0) / total
        w = max(iw * seg.dur / total, 1.5)
        shade = _ramp(0.35 + 0.5 * (seg.dur / total))
        parts.append(
            f'<rect x="{x:.1f}" y="{bar_y}" width="{w:.1f}" '
            f'height="{bar_h}" rx="3" fill="{shade}" class="seg">'
            f'<title>{_esc(seg.label)}: {_fmt_s(seg.dur)}</title></rect>')
    parts.append(f'<text x="{pad_l}" y="{height - 2}" class="tick">0</text>')
    parts.append(f'<text x="{_W - pad_r}" y="{height - 2}" class="tick" '
                 f'text-anchor="end">{_fmt_s(total)}</text>')
    parts.append("</svg>")
    rows = "".join(
        f"<tr><td>{_esc(s.label)}</td><td class='num'>{_fmt_s(s.dur)}</td>"
        f"<td class='num'>{s.dur / total:.1%}</td></tr>"
        for s in segments)
    table = (f"<table class='segs'><thead><tr><th>segment</th><th>time</th>"
             f"<th>share</th></tr></thead><tbody>{rows}</tbody></table>")
    return f"<div class='wf'>{''.join(parts)}{table}</div>"


def _heatmap(series: Dict[str, List[Tuple[float, float]]],
             x_max_h: float, buckets: int = 48) -> str:
    """District × time busy-fraction heatmap on the sequential ramp."""
    rows = sorted(series)
    if not rows or x_max_h <= 0:
        return ""
    cell_w = (_W - 140) / buckets
    cell_h, pad_t = 24, 30
    height = pad_t + len(rows) * (cell_h + 2) + 40
    parts = [f'<svg viewBox="0 0 {_W} {height}" role="img" '
             f'aria-label="fleet utilisation heatmap">',
             f'<text x="10" y="18" class="ct">Fleet utilisation '
             f'(busy core fraction)</text>']
    for ri, name in enumerate(rows):
        y = pad_t + ri * (cell_h + 2)
        parts.append(f'<text x="126" y="{y + cell_h / 2 + 4}" class="tick" '
                     f'text-anchor="end">{_esc(name)}</text>')
        cells: List[List[float]] = [[] for _ in range(buckets)]
        for t, v in series[name]:
            b = min(buckets - 1, int(buckets * t / x_max_h))
            cells[b].append(v)
        for b, vals in enumerate(cells):
            if not vals:
                continue
            v = sum(vals) / len(vals)
            x = 134 + b * cell_w
            lo, hi = x_max_h * b / buckets, x_max_h * (b + 1) / buckets
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{cell_w - 1:.1f}" '
                f'height="{cell_h}" rx="2" fill="{_ramp(v)}">'
                f'<title>{_esc(name)} {lo:.1f}–{hi:.1f}h: {v:.0%} busy'
                f'</title></rect>')
    ly = pad_t + len(rows) * (cell_h + 2) + 14      # labelled ramp legend
    for i in range(24):
        parts.append(f'<rect x="{134 + i * 6}" y="{ly}" width="6" height="10" '
                     f'fill="{_ramp(i / 23)}"/>')
    parts.append(f'<text x="128" y="{ly + 9}" class="tick" '
                 f'text-anchor="end">0%</text>')
    parts.append(f'<text x="{134 + 24 * 6 + 6}" y="{ly + 9}" '
                 f'class="tick">100% busy</text>')
    parts.append("</svg>")
    return "".join(parts)


# ---------------------------------------------------------------------- #
# sections
# ---------------------------------------------------------------------- #
def _slo_panel(report: SLOReport) -> str:
    cards = []
    for r in report:
        ok, color = ("PASS", _GOOD) if r.ok else ("FAIL", _BAD)
        obs = "no data" if r.samples == 0 else f"{r.compliance:.2%}"
        breaches = (f"{r.breaches} of {len(r.windows)} windows over budget"
                    if r.windows else "whole-run objective")
        cards.append(
            f"<div class='card'>"
            f"<div class='verdict' style='color:{color}'>"
            f"{'✔' if r.ok else '✘'} {ok}</div>"
            f"<div class='slo-name'>{_esc(r.spec.name)} "
            f"<span class='flow'>[{_esc(r.spec.flow)}]</span></div>"
            f"<div class='slo-desc'>{_esc(r.spec.description)}</div>"
            f"<div class='slo-num'>{obs} <span class='muted'>vs target "
            f"{r.spec.target:.0%}</span></div>"
            f"<div class='muted'>{_esc(breaches)}</div></div>")
    return f"<div class='cards'>{''.join(cards)}</div>"


def _sample_series(records: Sequence[TraceRecord], name: str, key: str,
                   t0: float) -> List[Tuple[float, float]]:
    return [((r.ts - t0) / 3600.0, float(r.args[key]))
            for r in records if r.name == name and key in r.args]


def _stat_cards(items: Sequence[Tuple[str, object]]) -> str:
    cells = "".join(
        f"<div class='card'><div class='slo-name'>{_esc(label)}</div>"
        f"<div class='slo-num'>{_esc(value)}</div></div>"
        for label, value in items)
    return f"<div class='cards'>{cells}</div>"


def _gantt_panel(run_report: Dict[str, object]) -> str:
    """Worker × node execution timeline from a run report's backend stats.

    Fed by ``repro run --report-json`` output (``RunReport.to_dict()``): the
    wall-clock node lifecycle rows the :class:`~repro.runner.backend`
    backends collect.  Each worker is one lane; a node's bar spans
    ``start_s → done_s`` with the queued span (``enqueue_s → start_s``)
    drawn as a pale lead-in.  Retried nodes (``attempts > 1``) are outlined
    in the failure colour.
    """
    stats = run_report.get("backend_stats") or {}
    timeline = stats.get("timeline") or [] if isinstance(stats, dict) else []
    cards = []
    if isinstance(stats, dict) and stats:
        cards = [
            ("nodes executed", stats.get("executed", 0)),
            ("chunks dispatched", stats.get("chunks_dispatched", 0)),
            ("chunk steals", stats.get("chunk_steals", 0)),
            ("queue depth peak", stats.get("queue_depth_peak", 0)),
            ("worker deaths", stats.get("worker_deaths", 0)),
            ("nodes retried", stats.get("retried_nodes", 0)),
            ("workers respawned", stats.get("respawned_workers", 0)),
            ("heartbeat staleness max",
             f"{float(stats.get('heartbeat_max_staleness_s', 0.0)):.2f}s"),
        ]
    parts: List[str] = []
    rows = [r for r in timeline
            if isinstance(r, dict) and r.get("done_s") is not None]
    if rows:
        t_end = max(float(r["done_s"]) for r in rows) or 1e-9
        workers = sorted({int(r.get("worker") or 0) for r in rows})
        lane = {w: i for i, w in enumerate(workers)}
        pad_l, pad_r, pad_t, lane_h = 70, 14, 30, 26
        iw = _W - pad_l - pad_r
        height = pad_t + len(workers) * (lane_h + 4) + 30
        parts.append(
            f'<svg viewBox="0 0 {_W} {height}" role="img" '
            f'aria-label="worker-node timeline">'
            f'<text x="10" y="18" class="ct">Worker × node timeline '
            f'({len(rows)} nodes, {_fmt_s(t_end)} wall)</text>')
        for w in workers:
            y = pad_t + lane[w] * (lane_h + 4)
            parts.append(f'<text x="{pad_l - 6}" y="{y + lane_h / 2 + 4}" '
                         f'class="tick" text-anchor="end">w{w}</text>')
        for i, r in enumerate(rows):
            w = int(r.get("worker") or 0)
            y = pad_t + lane[w] * (lane_h + 4)
            start = float(r.get("start_s", r.get("enqueue_s", 0.0)) or 0.0)
            done = float(r["done_s"])
            enq = float(r.get("enqueue_s", start) or start)
            x0 = pad_l + iw * enq / t_end
            xs = pad_l + iw * start / t_end
            xw = max(iw * (done - start) / t_end, 1.5)
            if xs - x0 > 0.5:   # queued lead-in
                parts.append(
                    f'<rect x="{x0:.1f}" y="{y + 7}" '
                    f'width="{xs - x0:.1f}" height="{lane_h - 14}" '
                    f'fill="{_GRID}"/>')
            retried = int(r.get("attempts", 1) or 1) > 1
            stroke = f' stroke="{_BAD}" stroke-width="1.5"' if retried else ""
            shade = _ramp(0.25 + 0.6 * ((done - start) / t_end))
            label = (f"{r.get('node', '?')} [{r.get('kind', '?')}] w{w}: "
                     f"{_fmt_s(done - start)}"
                     + (f" ({r.get('attempts')} attempts)" if retried else ""))
            parts.append(
                f'<rect x="{xs:.1f}" y="{y + 3}" width="{xw:.1f}" '
                f'height="{lane_h - 6}" rx="3" fill="{shade}"{stroke}>'
                f'<title>{_esc(label)}</title></rect>')
        parts.append(f'<text x="{pad_l}" y="{height - 6}" class="tick">0'
                     f'</text><text x="{_W - pad_r}" y="{height - 6}" '
                     f'class="tick" text-anchor="end">{_fmt_s(t_end)}</text>')
        parts.append("</svg>")
    if not cards and not parts:
        return ""
    header = ""
    if run_report.get("experiment"):
        header = (f"<p class='muted'>{_esc(run_report['experiment'])} · "
                  f"backend {_esc(run_report.get('backend', '?'))} · "
                  f"jobs {_esc(run_report.get('jobs', '?'))} · "
                  f"{_esc(run_report.get('computed', 0))} computed / "
                  f"{_esc(run_report.get('cached', 0))} cached points</p>")
    return header + (_stat_cards(cards) if cards else "") + "".join(parts)


def _surrogate_panel(records: Sequence[TraceRecord], t0: float) -> str:
    """The surrogate tier's error-budget panel from its trace records.

    ``surrogate.drift`` records carry the worst sample-vs-aggregate district
    drift against the declared budget (``repro.thermal.budget``); the chart
    plots drift as a share of that budget, with 100% as the break line.
    Both ``surrogate.materialize`` and the historical ``…materialise``
    spelling are counted.
    """
    sur = [r for r in records if r.kind == "surrogate"]
    if not sur:
        return ""
    drifts = [r for r in sur if r.name == "surrogate.drift"]
    n_mat = sum(1 for r in sur
                if r.name in ("surrogate.materialize",
                              "surrogate.materialise"))
    n_zoom = sum(1 for r in sur if r.name == "surrogate.zoom")
    switch = next((r for r in sur if r.name == "surrogate.switch"), None)
    cards: List[Tuple[str, object]] = []
    if switch is not None:
        cards.append(("aggregated at switch",
                      switch.args.get("aggregated",
                                      switch.args.get("districts", "?"))))
    if drifts:
        last = drifts[-1]
        budget_c = float(last.args.get("budget_c", 0.0)) or 1.0
        worst = max(float(r.args.get("max_drift_c", 0.0)) for r in drifts)
        cards.append(("worst drift",
                      f"{worst:.3f}°C / {budget_c:.2f}°C budget"))
        cards.append(("live districts", last.args.get("live", "?")))
    cards.append(("materializations", n_mat))
    cards.append(("zoom-ins", n_zoom))
    parts = [_stat_cards(cards)]
    if drifts:
        budget_c = float(drifts[-1].args.get("budget_c", 0.0)) or 1.0
        pts = [((r.ts - t0) / 3600.0,
                float(r.args.get("max_drift_c", 0.0)) / budget_c)
               for r in drifts]
        parts.append(_line_chart(
            pts, "Surrogate drift as share of declared budget",
            target=1.0, target_label="error budget"))
    return "".join(parts)


def render_report(records: Iterable[TraceRecord],
                  title: str = "DF3 run report",
                  slos: Optional[Sequence[SLOSpec]] = None,
                  slowest_n: int = 5,
                  run_report: Optional[Dict[str, object]] = None) -> str:
    """The whole report as one self-contained HTML string.

    ``run_report`` (a ``RunReport.to_dict()`` payload, e.g. loaded from
    ``repro run --report-json``) adds the orchestration panel: backend
    counters and the worker × node Gantt timeline.
    """
    recs = list(records)
    report = SLOEngine(slos).evaluate(recs)
    idx = SpanIndex(recs)
    t0 = recs[0].ts if recs else 0.0
    t_max = max((r.ts for r in recs), default=t0)
    span_h = max((t_max - t0) / 3600.0, 1e-9)

    comfort = _sample_series(recs, "comfort.sample", "in_band", t0)
    fleet = _sample_series(recs, "fleet.sample", "up", t0)
    util: Dict[str, List[Tuple[float, float]]] = {}
    for r in recs:
        if r.name == "fleet.sample":
            for district, busy in r.args.get("util", {}).items():
                util.setdefault(district, []).append(
                    ((r.ts - t0) / 3600.0, float(busy)))

    edge_windows: List[Tuple[float, float]] = []
    for res in report:
        if res.spec.name == "edge-deadline":
            edge_windows = [((w.end_ts - t0) / 3600.0, w.compliance)
                            for w in res.windows]

    charts = []
    if edge_windows:
        charts.append(_line_chart(
            edge_windows, "Edge deadline compliance per window",
            target=0.90, target_label="target 90%"))
    if comfort:
        charts.append(_line_chart(
            comfort, "Comfort: rooms inside the band",
            target=0.90, target_label="target 90%"))
    if fleet:
        charts.append(_line_chart(
            fleet, "Fleet availability: servers up",
            target=0.95, target_label="target 95%"))

    policy_counts: Dict[str, int] = {}
    for r in recs:
        if r.kind == "policy":
            action = str(r.args.get("action", "?"))
            policy_counts[action] = policy_counts.get(action, 0) + 1

    waterfalls = []
    for tid in idx.slowest(slowest_n):
        term = idx.terminal(tid)
        outcome = term.name if term is not None else "?"
        waterfalls.append(_waterfall(tid, idx.critical_path(tid), outcome))

    n_traces = len(idx.trace_ids())
    complete, total = idx.completeness("edge.")
    stats = (f"{len(recs):,} records · {n_traces:,} traces · "
             f"{span_h:.1f}h simulated")
    if total:
        stats += f" · {complete / total:.1%} of edge stories causally complete"

    sections = [
        f"<h1>{_esc(title)}</h1>",
        f"<p class='muted'>{_esc(stats)}</p>",
        "<h2>Service-level objectives</h2>", _slo_panel(report),
    ]
    if charts:
        sections.append("<h2>Time series</h2>")
        sections.extend(charts)
    if waterfalls:
        sections.append(f"<h2>Slowest requests (top {len(waterfalls)})</h2>")
        sections.extend(waterfalls)
    if policy_counts:
        cells = "".join(
            f"<div class='card'><div class='slo-name'>{_esc(a)}</div>"
            f"<div class='slo-num'>{n:,}</div></div>"
            for a, n in sorted(policy_counts.items()))
        sections.append("<h2>Recovery policy decisions</h2>"
                        f"<div class='cards'>{cells}</div>")
    surrogate = _surrogate_panel(recs, t0)
    if surrogate:
        sections.append("<h2>Surrogate error budget</h2>")
        sections.append(surrogate)
    if run_report:
        gantt = _gantt_panel(run_report)
        if gantt:
            sections.append("<h2>Orchestration</h2>")
            sections.append(gantt)
    hm = _heatmap(util, span_h)
    if hm:
        sections.append("<h2>Fleet utilisation</h2>")
        sections.append(hm)

    css = f"""
 body {{ background:{_SURFACE}; color:{_INK}; margin:2rem auto; max-width:{_W + 40}px;
        font:15px/1.45 system-ui, sans-serif; padding:0 1rem; }}
 h1 {{ font-size:1.5rem; margin-bottom:.2rem; }}
 h2 {{ font-size:1.1rem; margin:1.6rem 0 .6rem; }}
 svg {{ display:block; width:100%; height:auto; margin:.4rem 0 1rem; }}
 .muted {{ color:{_MUTED}; }}
 .ct {{ font-size:14px; fill:{_INK}; font-weight:600; }}
 .tick {{ font-size:11px; fill:{_MUTED}; }}
 .tgt {{ font-size:11px; fill:{_MUTED}; font-style:italic; }}
 .grid {{ stroke:{_GRID}; stroke-width:1; }}
 .target {{ stroke:{_MUTED}; stroke-width:1; stroke-dasharray:5 4; }}
 .series {{ fill:none; stroke:{_BLUE}; stroke-width:2; }}
 .dot {{ fill:{_BLUE}; stroke:{_SURFACE}; stroke-width:1.5; }}
 .seg {{ stroke:{_SURFACE}; stroke-width:2; }}
 .cards {{ display:grid; grid-template-columns:repeat(auto-fit,minmax(190px,1fr));
          gap:12px; }}
 .card {{ border:1px solid {_GRID}; border-radius:8px; padding:12px 14px; }}
 .verdict {{ font-weight:700; font-size:1rem; }}
 .slo-name {{ font-weight:600; margin-top:.2rem; }}
 .flow {{ color:{_MUTED}; font-weight:400; }}
 .slo-desc {{ color:{_MUTED}; font-size:.85rem; margin:.15rem 0; }}
 .slo-num {{ font-size:1.25rem; font-weight:600; margin:.2rem 0; }}
 .slo-num .muted {{ font-size:.8rem; font-weight:400; }}
 .wf {{ margin-bottom:1.2rem; }}
 table.segs {{ border-collapse:collapse; font-size:.85rem; margin:-.4rem 0 .8rem; }}
 table.segs th, table.segs td {{ text-align:left; padding:2px 14px 2px 0;
   border-bottom:1px solid {_GRID}; }}
 table.segs td.num {{ font-variant-numeric:tabular-nums; }}
"""
    return ("<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
            f"<title>{_esc(title)}</title><style>{css}</style></head>"
            f"<body>{''.join(sections)}</body></html>")


def render_live_dashboard(title: str = "DF3 live twin") -> str:
    """The served dashboard: the report's look, fed by SSE instead of files.

    Where :func:`render_report` renders a finished run from its trace, this
    page subscribes to the service's ``/events`` stream with ``EventSource``
    and repaints its panels as ``state`` / ``metrics`` / ``slo.burn_rate`` /
    ``trace`` events arrive — same palette, zero dependencies, one file.
    """
    css = f"""
 body {{ background:{_SURFACE}; color:{_INK}; margin:2rem auto; max-width:{_W + 40}px;
        font:15px/1.45 system-ui, sans-serif; padding:0 1rem; }}
 h1 {{ font-size:1.5rem; margin-bottom:.2rem; }}
 h2 {{ font-size:1.1rem; margin:1.6rem 0 .6rem; }}
 .muted {{ color:{_MUTED}; }}
 .cards {{ display:grid; grid-template-columns:repeat(auto-fit,minmax(190px,1fr));
          gap:12px; }}
 .card {{ border:1px solid {_GRID}; border-radius:8px; padding:12px 14px; }}
 .num {{ font-size:1.25rem; font-weight:600; margin:.2rem 0;
         font-variant-numeric:tabular-nums; }}
 .lab {{ color:{_MUTED}; font-size:.85rem; }}
 .bar {{ height:8px; background:{_GRID}; border-radius:4px; overflow:hidden;
         margin:.6rem 0; }}
 .bar > div {{ height:100%; background:{_BLUE}; width:0%; }}
 .ok {{ color:{_GOOD}; }} .bad {{ color:{_BAD}; }}
 table {{ border-collapse:collapse; font-size:.85rem; width:100%; }}
 th, td {{ text-align:left; padding:3px 14px 3px 0;
           border-bottom:1px solid {_GRID}; }}
 td.n {{ font-variant-numeric:tabular-nums; }}
 #log {{ font:12px/1.5 ui-monospace, monospace; white-space:pre-wrap;
         border:1px solid {_GRID}; border-radius:8px; padding:10px 12px;
         max-height:16rem; overflow-y:auto; }}
"""
    js = """
var $ = function (id) { return document.getElementById(id); };
var sloRows = {}, traceLines = [], evCount = 0;
function fmtH(s) { return (s / 3600).toFixed(2) + ' h'; }
function paint(st) {
  $('now').textContent = fmtH(st.now - st.t_start);
  $('progress').textContent = (100 * st.progress).toFixed(1) + '%';
  $('fill').style.width = (100 * st.progress) + '%';
  $('events').textContent = st.events_executed.toLocaleString();
  $('phase').textContent = st.finished ? 'finished'
                         : (st.paused ? 'paused' : 'running');
  $('phase').className = 'num ' + (st.finished ? 'ok' : '');
}
function paintSlo() {
  var keys = Object.keys(sloRows).sort();
  var html = '<tr><th>SLO</th><th>window end</th><th>compliance</th>' +
             '<th>burn rate</th><th></th></tr>';
  keys.forEach(function (k) {
    var w = sloRows[k];
    html += '<tr><td>' + k + '</td><td class=n>' + fmtH(w.end) +
            '</td><td class=n>' + (100 * w.compliance).toFixed(1) +
            '%</td><td class=n>' + w.burn_rate.toFixed(2) + '</td><td>' +
            (w.breached ? '<span class=bad>breach</span>'
                        : '<span class=ok>ok</span>') + '</td></tr>';
  });
  $('slo').innerHTML = html;
}
var es = new EventSource('/events');
['run.started', 'run.paused', 'run.finished', 'run.error', 'state', 'metrics',
 'slo.burn_rate', 'slo.breach', 'trace', 'command.applied', 'command.failed'
].forEach(function (kind) {
  es.addEventListener(kind, function (e) {
    evCount += 1;
    $('evcount').textContent = evCount;
    var d = JSON.parse(e.data);
    if (kind === 'state' || kind === 'run.finished') { if (d.t_start !== undefined) paint(d); }
    if (kind === 'slo.burn_rate') { sloRows[d.slo] = d; paintSlo(); }
    if (kind === 'trace') {
      d.records.forEach(function (r) {
        traceLines.push(fmtH(r.ts) + '  ' + r.name);
      });
      traceLines = traceLines.slice(-60);
      $('log').textContent = traceLines.join('\\n');
    }
    if (kind === 'command.applied') {
      traceLines.push('command applied: ' + d.label);
      $('log').textContent = traceLines.join('\\n');
    }
  });
});
es.onerror = function () { $('phase').textContent = 'disconnected'; };
fetch('/api/state').then(function (r) { return r.json(); }).then(paint);
"""
    body = (
        f"<h1>{_esc(title)}</h1>"
        "<p class='muted'>Live digital twin — this page updates from the "
        "<code>/events</code> SSE stream.</p>"
        "<div class='bar'><div id='fill'></div></div>"
        "<div class='cards'>"
        "<div class='card'><div class='lab'>sim time into run</div>"
        "<div class='num' id='now'>–</div></div>"
        "<div class='card'><div class='lab'>progress</div>"
        "<div class='num' id='progress'>–</div></div>"
        "<div class='card'><div class='lab'>status</div>"
        "<div class='num' id='phase'>connecting…</div></div>"
        "<div class='card'><div class='lab'>engine events</div>"
        "<div class='num' id='events'>–</div></div>"
        "<div class='card'><div class='lab'>SSE events received</div>"
        "<div class='num' id='evcount'>0</div></div>"
        "</div>"
        "<h2>SLO burn rates</h2><table id='slo'>"
        "<tr><td class='muted'>waiting for the first closed window…</td></tr>"
        "</table>"
        "<h2>Trace tail</h2><div id='log'>waiting for events…</div>"
    )
    return ("<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
            f"<title>{_esc(title)}</title><style>{css}</style></head>"
            f"<body>{body}<script>{js}</script></body></html>")


def write_report(records: Iterable[TraceRecord], path: str | Path,
                 **kwargs) -> Path:
    """Render and write the report; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_report(records, **kwargs), encoding="utf-8")
    return p


def report_from_jsonl(trace_path: str | Path, out_path: str | Path,
                      **kwargs) -> Path:
    """``repro report``'s body: JSONL trace in, HTML file out."""
    return write_report(read_jsonl(trace_path), out_path, **kwargs)
