"""Structured tracing for DF3 runs.

A trace is an append-only sequence of :class:`TraceRecord` — typed, timestamped
facts about what happened inside the simulator: request lifecycle transitions
(``edge.admitted`` → ``edge.queued`` → ``edge.scheduled`` → ``edge.completed``),
regulator actions, fault injections, engine event dispatch.  Records carry
*simulated* time, so a trace is as deterministic as the run that produced it.

Two tracer flavours:

* :class:`Tracer` — collects records in memory; export with
  :func:`write_jsonl` (one JSON object per line) or
  :func:`write_chrome_trace` (the Chrome ``chrome://tracing`` / Perfetto
  trace-event format).
* :class:`NullTracer` — the zero-overhead default.  ``enabled`` is False and
  :meth:`~NullTracer.emit` is a no-op, so instrumentation sites guarded by
  ``if obs.active:`` cost one attribute check on uninstrumented runs.

Canonical record kinds (``TraceRecord.kind``): ``request``, ``regulator``,
``fault``, ``engine``.  Kinds are open-ended — new subsystems may add their
own — but exporters group by kind, so reuse these when they fit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "TraceRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]


@dataclass
class TraceRecord:
    """One observed fact.

    ``ts`` is simulated seconds; ``dur`` (also simulated seconds) turns the
    record into a span — e.g. the service time of a completed request.
    ``args`` holds free-form structured payload (request ids, room names,
    worker names, …).
    """

    ts: float
    kind: str
    name: str
    args: Dict[str, Any] = field(default_factory=dict)
    dur: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL exporter."""
        out: Dict[str, Any] = {"ts": self.ts, "kind": self.kind, "name": self.name}
        if self.dur is not None:
            out["dur"] = self.dur
        out["args"] = self.args
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ts=float(d["ts"]),
            kind=str(d["kind"]),
            name=str(d["name"]),
            args=dict(d.get("args", {})),
            dur=d.get("dur"),
        )


class Tracer:
    """In-memory collector of :class:`TraceRecord`.

    The ``enabled`` class attribute is the fast-path switch: instrumentation
    reads it (via ``Observability.active``) before building any record, so a
    disabled tracer costs nothing on hot paths.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, kind: str, name: str, ts: float,
             dur: Optional[float] = None, **args: Any) -> None:
        """Append one record at simulated time ``ts``."""
        self.records.append(TraceRecord(float(ts), kind, name, args, dur))

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()

    def counts_by_kind(self) -> Dict[str, int]:
        """Record count per ``kind`` — the trace's table of contents."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def write_jsonl(self, path: str | Path) -> Path:
        """Export this tracer's records as JSONL; see :func:`write_jsonl`."""
        return write_jsonl(self.records, path)

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Export in Chrome trace-event format; see :func:`write_chrome_trace`."""
        return write_chrome_trace(self.records, path)


class NullTracer(Tracer):
    """The do-nothing tracer: observability off (the default)."""

    enabled = False

    def emit(self, kind: str, name: str, ts: float,
             dur: Optional[float] = None, **args: Any) -> None:
        """Discard the record."""


#: Shared inert tracer; safe to use from any number of middlewares at once
#: because it holds no state.
NULL_TRACER = NullTracer()


# --------------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------------- #
def write_jsonl(records: Iterable[TraceRecord], path: str | Path) -> Path:
    """Write records as JSON Lines (one record object per line)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as f:
        for r in records:
            f.write(json.dumps(r.to_dict(), sort_keys=True, default=str))
            f.write("\n")
    return path


def read_jsonl(path: str | Path) -> List[TraceRecord]:
    """Load a JSONL trace back into records (for analysis and tests)."""
    out: List[TraceRecord] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            out.append(TraceRecord.from_dict(json.loads(line)))
    return out


def to_chrome_trace(records: Iterable[TraceRecord]) -> Dict[str, Any]:
    """Render records as a Chrome trace-event JSON object.

    Loadable in ``chrome://tracing`` and https://ui.perfetto.dev.  Each record
    kind becomes one named thread (pid 1); records with ``dur`` become
    complete-duration events (``ph="X"``), the rest instant events
    (``ph="i"``).  Timestamps are microseconds of *simulated* time.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for r in records:
        tid = tids.get(r.kind)
        if tid is None:
            tid = tids[r.kind] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": r.kind},
            })
        ev: Dict[str, Any] = {
            "name": r.name, "cat": r.kind, "pid": 1, "tid": tid,
            "ts": r.ts * 1e6, "args": r.args,
        }
        if r.dur is not None:
            ev["ph"] = "X"
            ev["dur"] = r.dur * 1e6
        else:
            ev["ph"] = "i"
            ev["s"] = "t"
        events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[TraceRecord], path: str | Path) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(records), default=str),
                    encoding="utf-8")
    return path
