"""Structured tracing for DF3 runs.

A trace is an append-only sequence of :class:`TraceRecord` — typed, timestamped
facts about what happened inside the simulator: request lifecycle transitions
(``edge.received`` → ``edge.admitted`` → ``edge.queued`` → ``edge.scheduled``
→ ``edge.completed``), regulator actions, fault injections, engine event
dispatch.  Records carry *simulated* time, so a trace is as deterministic as
the run that produced it.

Records may additionally carry **causal identity** (``trace_id`` / ``span_id``
/ ``parent_id``): every lifecycle event of one request shares the request's
trace id and points at the event that caused it, including the resilience
paths (retry, speculative clone, salvage, checkpoint-restart).  The span
machinery lives in :mod:`repro.obs.span`; plain point events simply leave the
three fields ``None``.

Tracer flavours:

* :class:`Tracer` — collects records in memory; export with
  :func:`write_jsonl` (one JSON object per line) or
  :func:`write_chrome_trace` (the Chrome ``chrome://tracing`` / Perfetto
  trace-event format).
* :class:`JsonlTracer` — streaming collector: records spill to a JSONL file
  incrementally once an in-memory buffer fills, so peak memory is O(buffer)
  regardless of run size (the E14-scale mode).
* :class:`RingTracer` — flight recorder: a bounded ring keeps only the most
  recent records (the "what just happened before it went wrong" mode).
* :class:`NullTracer` — the zero-overhead default.  ``enabled`` is False and
  :meth:`~NullTracer.emit` is a no-op, so instrumentation sites guarded by
  ``if obs.active:`` cost one attribute check on uninstrumented runs.

Every tracer accepts a ``kinds`` allowlist; records of other kinds are
dropped *before* construction (and before span-id allocation, so causal
chains never dangle through a filtered-out span of an allowed kind).

Argument values are sanitised at :meth:`Tracer.emit` time — numpy scalars
unwrap to Python numbers and arrays to lists — so JSONL round-trips preserve
numeric types instead of silently stringifying ``np.float64`` the way a
``default=str`` exporter would.

Canonical record kinds (``TraceRecord.kind``): ``request``, ``regulator``,
``fault``, ``resilience``, ``engine``, ``comfort``, ``fleet``, ``slo``,
``policy`` (recovery policy-engine decisions: clone spawn/skip, sibling
cancellation, adaptive per-flow switches).  Kinds are open-ended — new
subsystems may add their own — but exporters group by kind, so reuse these
when they fit.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

import numpy as np

__all__ = [
    "TraceRecord",
    "Tracer",
    "JsonlTracer",
    "RingTracer",
    "NullTracer",
    "NULL_TRACER",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]


def _sanitize(value: Any) -> Any:
    """Unwrap numpy scalars/arrays so trace args stay JSON-native numbers."""
    if type(value) in (int, float, str, bool) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_sanitize(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


@dataclass
class TraceRecord:
    """One observed fact.

    ``ts`` is simulated seconds; ``dur`` (also simulated seconds) turns the
    record into a span — e.g. the service time of a completed request.
    ``args`` holds free-form structured payload (request ids, room names,
    worker names, …).

    ``trace_id``/``span_id``/``parent_id`` are the optional causal identity:
    all events of one request's lifecycle share a ``trace_id`` (the primary
    request id), each carries its own ``span_id``, and ``parent_id`` names
    the span that caused this one — across retries, speculative clones and
    crash salvage, so :class:`repro.obs.span.SpanIndex` can rebuild the whole
    causal story as one tree.
    """

    ts: float
    kind: str
    name: str
    args: Dict[str, Any] = field(default_factory=dict)
    dur: Optional[float] = None
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL exporter."""
        out: Dict[str, Any] = {"ts": self.ts, "kind": self.kind, "name": self.name}
        if self.dur is not None:
            out["dur"] = self.dur
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        out["args"] = self.args
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceRecord":
        """Inverse of :meth:`to_dict`."""
        dur = d.get("dur")
        return cls(
            ts=float(d["ts"]),
            kind=str(d["kind"]),
            name=str(d["name"]),
            args=dict(d.get("args", {})),
            dur=None if dur is None else float(dur),
            trace_id=d.get("trace_id"),
            span_id=d.get("span_id"),
            parent_id=d.get("parent_id"),
        )


class Tracer:
    """In-memory collector of :class:`TraceRecord`.

    The ``enabled`` class attribute is the fast-path switch: instrumentation
    reads it (via ``Observability.active``) before building any record, so a
    disabled tracer costs nothing on hot paths.

    ``kinds`` optionally restricts collection to an allowlist of record
    kinds (``{"request", "fault"}``); everything else is dropped at emit
    time, before any record object exists.
    """

    enabled = True

    def __init__(self, kinds: Optional[Iterable[str]] = None) -> None:
        self.records: List[TraceRecord] = []
        self.kinds: Optional[frozenset] = (
            frozenset(kinds) if kinds is not None else None
        )
        self.total_emitted = 0

    def wants(self, kind: str) -> bool:
        """Whether records of ``kind`` pass this tracer's allowlist."""
        return self.kinds is None or kind in self.kinds

    def emit(self, kind: str, name: str, ts: float,
             dur: Optional[float] = None,
             trace_id: Optional[str] = None,
             span_id: Optional[str] = None,
             parent_id: Optional[str] = None,
             **args: Any) -> None:
        """Append one record at simulated time ``ts``."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if args:
            args = {k: _sanitize(v) for k, v in args.items()}
        self.total_emitted += 1
        self._append(TraceRecord(float(ts), kind, name, args,
                                 None if dur is None else float(dur),
                                 trace_id, span_id, parent_id))

    def _append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def absorb(self, records: Iterable[TraceRecord]) -> int:
        """Fold already-built records in (worker → parent trace merge-back).

        The allowlist still applies; returns the number of records kept.
        Records are appended in the order given — callers merge workers in
        deterministic points order, so repeated merges are reproducible.
        """
        kept = 0
        for r in records:
            if self.kinds is not None and r.kind not in self.kinds:
                continue
            self.total_emitted += 1
            self._append(r)
            kept += 1
        return kept

    def iter_records(self) -> Iterator[TraceRecord]:
        """All retained records, in emit order (spilled ones included)."""
        return iter(self.records)

    def tail(self, n: int) -> List[TraceRecord]:
        """The most recent ``n`` retained records, oldest first.

        Non-destructive: unlike :meth:`iter_records` on the streaming
        tracers, tailing neither flushes nor rewinds anything, so a live
        consumer (the service layer's SSE feed) can poll it repeatedly while
        the engine thread keeps emitting.  A list slice is atomic under the
        GIL, so no lock is needed here; :class:`RingTracer` overrides this
        with a locked copy because deque iteration is not.
        """
        if n < 1:
            return []
        return self.records[-n:]

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()
        self.total_emitted = 0

    def counts_by_kind(self) -> Dict[str, int]:
        """Record count per ``kind`` — the trace's table of contents."""
        out: Dict[str, int] = {}
        for r in self.iter_records():
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def write_jsonl(self, path: str | Path) -> Path:
        """Export this tracer's records as JSONL; see :func:`write_jsonl`."""
        return write_jsonl(self.iter_records(), path)

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Export in Chrome trace-event format; see :func:`write_chrome_trace`."""
        return write_chrome_trace(self.iter_records(), path)


class JsonlTracer(Tracer):
    """Streaming tracer: records spill to ``path`` as JSONL incrementally.

    At most ``buffer_records`` records are ever held in memory; once the
    buffer fills it is appended to the file and cleared, so an E14-scale run
    can be traced with O(buffer) tracer memory.  ``peak_buffered`` records
    the high-water mark (asserted bounded in tests).

    Call :meth:`flush` (or any export method) to make the file complete; the
    destructor flushes too, but explicit is better at the end of a run.
    """

    def __init__(self, path: str | Path, buffer_records: int = 4096,
                 kinds: Optional[Iterable[str]] = None) -> None:
        super().__init__(kinds=kinds)
        if buffer_records < 1:
            raise ValueError(f"buffer_records must be >= 1, got {buffer_records}")
        self.path = Path(path)
        self.buffer_records = buffer_records
        self.spilled = 0
        self.peak_buffered = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("", encoding="utf-8")  # truncate any stale file
        self._counts: Dict[str, int] = {}

    def _append(self, record: TraceRecord) -> None:
        self.records.append(record)
        self._counts[record.kind] = self._counts.get(record.kind, 0) + 1
        if len(self.records) > self.peak_buffered:
            self.peak_buffered = len(self.records)
        if len(self.records) >= self.buffer_records:
            self.flush()

    def flush(self) -> None:
        """Spill the in-memory buffer to the file."""
        if not self.records:
            return
        with self.path.open("a", encoding="utf-8") as f:
            for r in self.records:
                f.write(json.dumps(r.to_dict(), sort_keys=True))
                f.write("\n")
        self.spilled += len(self.records)
        self.records.clear()

    def __len__(self) -> int:
        return self.spilled + len(self.records)

    def counts_by_kind(self) -> Dict[str, int]:
        """Counts over everything emitted, spilled records included."""
        return dict(self._counts)

    def iter_records(self) -> Iterator[TraceRecord]:
        """Replay the full trace: spilled records from disk, then the buffer.

        Loads the spilled portion back — use for post-run analysis (SLO
        evaluation, reports), not on the hot path.
        """
        self.flush()
        return iter(read_jsonl(self.path))

    def tail(self, n: int) -> List[TraceRecord]:
        """Most recent ``n`` records still buffered in memory, oldest first.

        Non-destructive and disk-free: the slice covers only the unspilled
        buffer (at most ``buffer_records`` entries), never triggers a flush,
        and never reads the file back — so a live consumer can poll it while
        the engine thread streams.  Right after a spill the buffer (and so
        the tail) is briefly short; callers wanting the complete history use
        :meth:`iter_records`.
        """
        if n < 1:
            return []
        return self.records[-n:]

    def clear(self) -> None:
        super().clear()
        self.spilled = 0
        self._counts.clear()
        self.path.write_text("", encoding="utf-8")

    def write_jsonl(self, path: str | Path) -> Path:
        """Finalise the stream; copy only if ``path`` differs from the sink."""
        self.flush()
        path = Path(path)
        if path.resolve() != self.path.resolve():
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(self.path.read_bytes())
        return path

    def __del__(self) -> None:  # best-effort: never lose buffered records
        try:
            self.flush()
        except Exception:
            pass


class RingTracer(Tracer):
    """Flight recorder: keeps only the most recent ``capacity`` records.

    Memory is O(capacity) no matter how long the run; ``total_emitted``
    still counts everything that passed the kind filter, so
    ``total_emitted - len(self)`` is the number of evicted records.
    """

    def __init__(self, capacity: int = 65536,
                 kinds: Optional[Iterable[str]] = None) -> None:
        super().__init__(kinds=kinds)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.records = deque(maxlen=capacity)  # type: ignore[assignment]
        # deque iteration raises RuntimeError when the deque mutates under
        # it, so cross-thread reads (tail, iter_records from the service
        # layer) must copy under this lock while the engine thread appends
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # locks don't pickle; drop it and rebuild on the receiving side
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _append(self, record: TraceRecord) -> None:
        with self._lock:
            self.records.append(record)

    def tail(self, n: int) -> List[TraceRecord]:
        """Most recent ``n`` ring entries, oldest first; thread-safe copy."""
        if n < 1:
            return []
        with self._lock:
            records = list(self.records)
        return records[-n:]

    def iter_records(self) -> Iterator[TraceRecord]:
        """Snapshot of the ring, in emit order (thread-safe copy)."""
        with self._lock:
            return iter(list(self.records))

    def clear(self) -> None:
        with self._lock:
            self.records.clear()
        self.total_emitted = 0


class NullTracer(Tracer):
    """The do-nothing tracer: observability off (the default)."""

    enabled = False

    def emit(self, kind: str, name: str, ts: float,
             dur: Optional[float] = None,
             trace_id: Optional[str] = None,
             span_id: Optional[str] = None,
             parent_id: Optional[str] = None,
             **args: Any) -> None:
        """Discard the record."""


#: Shared inert tracer; safe to use from any number of middlewares at once
#: because it holds no state.
NULL_TRACER = NullTracer()


# --------------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------------- #
def write_jsonl(records: Iterable[TraceRecord], path: str | Path) -> Path:
    """Write records as JSON Lines (one record object per line).

    Serialisation is strict (no ``default=`` escape hatch): args are
    sanitised at emit time, so anything unserialisable here is a bug worth
    surfacing rather than silently stringifying.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as f:
        for r in records:
            f.write(json.dumps(r.to_dict(), sort_keys=True))
            f.write("\n")
    return path


def read_jsonl(path: str | Path) -> List[TraceRecord]:
    """Load a JSONL trace back into records (for analysis and tests)."""
    out: List[TraceRecord] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            out.append(TraceRecord.from_dict(json.loads(line)))
    return out


def to_chrome_trace(records: Iterable[TraceRecord]) -> Dict[str, Any]:
    """Render records as a Chrome trace-event JSON object.

    Loadable in ``chrome://tracing`` and https://ui.perfetto.dev.  Each record
    kind becomes one named thread (pid 1); records with ``dur`` become
    complete-duration events (``ph="X"``), the rest instant events
    (``ph="i"``).  Timestamps are microseconds of *simulated* time.  Causal
    identity, when present, rides along in the event args (``trace_id`` /
    ``span_id`` / ``parent_id``) so a Perfetto query can regroup by request.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for r in records:
        tid = tids.get(r.kind)
        if tid is None:
            tid = tids[r.kind] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": r.kind},
            })
        ev_args = r.args
        if r.trace_id is not None:
            ev_args = dict(r.args)
            ev_args["trace_id"] = r.trace_id
            if r.span_id is not None:
                ev_args["span_id"] = r.span_id
            if r.parent_id is not None:
                ev_args["parent_id"] = r.parent_id
        ev: Dict[str, Any] = {
            "name": r.name, "cat": r.kind, "pid": 1, "tid": tid,
            "ts": r.ts * 1e6, "args": ev_args,
        }
        if r.dur is not None:
            ev["ph"] = "X"
            ev["dur"] = r.dur * 1e6
        else:
            ev["ph"] = "i"
            ev["s"] = "t"
        events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[TraceRecord], path: str | Path) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(records)), encoding="utf-8")
    return path
