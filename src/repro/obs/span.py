"""Causal span trees over trace records.

The tracer records *what* happened; this module records *why*.  Every
request-lifecycle event emitted through
:meth:`repro.obs.Observability.emit_span` carries three identity fields:

* ``trace_id`` — the primary request id, shared by every event of the
  request's whole story (a speculative clone shares its primary's trace id);
* ``span_id`` — ``<carrier request id>/<sequence>``, unique per event;
* ``parent_id`` — the span that *caused* this one.

Causality is threaded as a chain per carrier: each new span's parent is the
carrier's previous span.  Cross-carrier hand-offs (primary → clone at
speculation time, clone → primary when the clone's completion wins) are
explicit links made by the resilience runtime via :func:`link_spans` /
:func:`adopt_chain`, so a Perfetto waterfall or a :class:`SpanIndex` tree
shows exactly why a request was slow: gateway admit → queue → placement →
execution → completion, including retries, clones, salvage and
checkpoint-restart.

:class:`SpanIndex` rebuilds the trees from any record iterable (or JSONL
file) and computes per-segment critical-path breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import TraceRecord, read_jsonl

__all__ = [
    "span_context",
    "link_spans",
    "adopt_chain",
    "Segment",
    "SpanIndex",
]

_CTX = "_trace_ctx"
_CLONE_SUFFIX = "#clone"

#: request-record names that end a request's story
TERMINAL_SUFFIXES = (".completed", ".expired", ".rejected")


def span_context(carrier) -> Dict[str, object]:
    """The carrier's span chain state, created on first use.

    ``carrier`` is any object with a ``request_id`` and an instance
    ``__dict__`` (our request dataclasses).  The context lives in
    ``carrier.__dict__`` so uninstrumented runs never allocate it.
    """
    ctx = carrier.__dict__.get(_CTX)
    if ctx is None:
        rid = carrier.request_id
        trace_id = rid[:-len(_CLONE_SUFFIX)] if rid.endswith(_CLONE_SUFFIX) else rid
        ctx = carrier.__dict__[_CTX] = {
            "trace": trace_id, "base": rid, "seq": 0, "last": None,
        }
    return ctx


def next_span(ctx: Dict[str, object]) -> Tuple[str, Optional[str]]:
    """Allocate the next span id on a chain; returns ``(span_id, parent_id)``."""
    span_id = f"{ctx['base']}/{ctx['seq']}"
    ctx["seq"] = ctx["seq"] + 1  # type: ignore[operator]
    parent = ctx["last"]
    ctx["last"] = span_id
    return span_id, parent  # type: ignore[return-value]


def link_spans(child_carrier, parent_carrier) -> None:
    """Seed ``child_carrier``'s chain to hang off ``parent_carrier``'s tip.

    Used at speculation time: the clone's first span parents to the
    primary's ``edge.cloned`` span, so both execution attempts share one
    tree.  The child also inherits the parent's trace id.
    """
    parent_ctx = span_context(parent_carrier)
    child_ctx = span_context(child_carrier)
    child_ctx["trace"] = parent_ctx["trace"]
    child_ctx["last"] = parent_ctx["last"]


def adopt_chain(dst_carrier, src_carrier) -> None:
    """Graft ``src``'s chain tip onto ``dst`` (clone won: primary adopts).

    After this, the next span emitted for ``dst`` parents to ``src``'s last
    span — the completion record of a clone-won request hangs off the
    clone's execution, which is the true cause.  No-op unless ``src`` ever
    emitted a span.
    """
    if _CTX not in src_carrier.__dict__:
        return
    src_ctx = src_carrier.__dict__[_CTX]
    if src_ctx["last"] is None:
        return
    span_context(dst_carrier)["last"] = src_ctx["last"]


@dataclass(frozen=True)
class Segment:
    """One hop of a critical path: the gap between two consecutive spans."""

    label: str       # "received→scheduled"
    start_ts: float
    end_ts: float

    @property
    def dur(self) -> float:
        """Seconds spent in this segment."""
        return self.end_ts - self.start_ts


class SpanIndex:
    """Span trees reconstructed from a trace.

    Feed it any iterable of :class:`TraceRecord` (records without a
    ``span_id`` are ignored); query per-trace trees, terminal outcomes,
    root-reachability and critical-path breakdowns.
    """

    def __init__(self, records: Iterable[TraceRecord]):
        self.spans: Dict[str, TraceRecord] = {}
        self.children: Dict[str, List[str]] = {}
        self.traces: Dict[str, List[str]] = {}   # trace id → span ids, emit order
        for r in records:
            if r.span_id is None or r.trace_id is None:
                continue
            self.spans[r.span_id] = r
            self.traces.setdefault(r.trace_id, []).append(r.span_id)
            if r.parent_id is not None:
                self.children.setdefault(r.parent_id, []).append(r.span_id)

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "SpanIndex":
        """Build an index straight from a JSONL trace file."""
        return cls(read_jsonl(path))

    # ------------------------------------------------------------------ #
    # tree queries
    # ------------------------------------------------------------------ #
    def trace_ids(self) -> List[str]:
        """All trace ids seen, in first-appearance order."""
        return list(self.traces)

    def root(self, trace_id: str) -> Optional[TraceRecord]:
        """The trace's root span (no parent, or parent outside the trace)."""
        for sid in self.traces.get(trace_id, ()):
            r = self.spans[sid]
            if r.parent_id is None or r.parent_id not in self.spans:
                return r
        return None

    def terminal(self, trace_id: str) -> Optional[TraceRecord]:
        """The span that ended the story (completed / expired / rejected)."""
        for sid in reversed(self.traces.get(trace_id, [])):
            r = self.spans[sid]
            if r.name.endswith(TERMINAL_SUFFIXES):
                return r
        return None

    def path_to_root(self, span_id: str) -> List[TraceRecord]:
        """Ancestor chain from ``span_id`` up to (and including) its root.

        Returned root-first.  Stops at a missing parent (an incomplete
        trace, e.g. evicted from a flight-recorder ring).
        """
        chain: List[TraceRecord] = []
        seen = set()
        cur: Optional[str] = span_id
        while cur is not None and cur in self.spans and cur not in seen:
            seen.add(cur)
            r = self.spans[cur]
            chain.append(r)
            cur = r.parent_id
        chain.reverse()
        return chain

    def is_complete(self, trace_id: str) -> bool:
        """True when the terminal span is reachable from the trace's root.

        This is the acceptance property: a completed (or terminally failed)
        request whose whole causal story survived collection — every hop
        from the gateway admit through retries/clones/salvage to the end is
        present and linked.
        """
        term = self.terminal(trace_id)
        if term is None or term.span_id is None:
            return False
        chain = self.path_to_root(term.span_id)
        return bool(chain) and chain[0].parent_id is None

    def completeness(self, prefix: str = "edge.") -> Tuple[int, int]:
        """``(complete, total)`` over traces whose terminal name starts with
        ``prefix`` — e.g. the fraction of edge requests with an intact tree."""
        complete = total = 0
        for tid in self.traces:
            term = self.terminal(tid)
            if term is None or not term.name.startswith(prefix):
                continue
            total += 1
            if self.is_complete(tid):
                complete += 1
        return complete, total

    # ------------------------------------------------------------------ #
    # critical path
    # ------------------------------------------------------------------ #
    def critical_path(self, trace_id: str) -> List[Segment]:
        """The causal chain root → terminal as timed segments.

        Each segment spans two consecutive causal events; its duration is
        simulated time spent between them (radio delivery, queueing, retry
        backoff, execution, …).  Empty when the trace has no terminal span.
        """
        term = self.terminal(trace_id)
        if term is None or term.span_id is None:
            return []
        chain = self.path_to_root(term.span_id)
        segments: List[Segment] = []
        for prev, nxt in zip(chain, chain[1:]):
            label = f"{_short(prev.name)}→{_short(nxt.name)}"
            segments.append(Segment(label, prev.ts, nxt.ts))
        return segments

    def breakdown(self, trace_id: str) -> Dict[str, float]:
        """Per-segment seconds of one trace's critical path (summed by label)."""
        out: Dict[str, float] = {}
        for seg in self.critical_path(trace_id):
            out[seg.label] = out.get(seg.label, 0.0) + seg.dur
        return out

    def aggregate_breakdown(self, prefix: str = "edge.") -> Dict[str, float]:
        """Critical-path seconds summed by segment label across matching traces.

        The fleet-wide answer to "where does latency go?" — per-segment
        totals over every trace whose terminal event starts with ``prefix``.
        """
        out: Dict[str, float] = {}
        for tid in self.traces:
            term = self.terminal(tid)
            if term is None or not term.name.startswith(prefix):
                continue
            for seg in self.critical_path(tid):
                out[seg.label] = out.get(seg.label, 0.0) + seg.dur
        return out

    # ------------------------------------------------------------------ #
    # stable JSON summaries (service / client consumption)
    # ------------------------------------------------------------------ #
    def tree_dict(self, trace_id: str) -> Optional[Dict[str, object]]:
        """One trace's span tree as nested JSON-ready dicts.

        Each node carries ``span_id``/``name``/``ts`` (+ ``dur`` when the
        span has one) and its ``children`` in emit order.  Spans whose parent
        never survived collection (ring eviction, kind filters) surface as
        extra roots under a synthetic ``orphans`` list so nothing is silently
        dropped.  Returns None for an unknown trace id.
        """
        span_ids = self.traces.get(trace_id)
        if not span_ids:
            return None
        in_trace = set(span_ids)

        def node(sid: str) -> Dict[str, object]:
            r = self.spans[sid]
            out: Dict[str, object] = {"span_id": sid, "name": r.name, "ts": r.ts}
            if r.dur is not None:
                out["dur"] = r.dur
            out["children"] = [node(c) for c in self.children.get(sid, ())
                               if c in in_trace]
            return out

        roots = [sid for sid in span_ids
                 if self.spans[sid].parent_id is None]
        orphans = [sid for sid in span_ids
                   if self.spans[sid].parent_id is not None
                   and self.spans[sid].parent_id not in self.spans]
        term = self.terminal(trace_id)
        return {
            "trace_id": trace_id,
            "spans": len(span_ids),
            "complete": self.is_complete(trace_id),
            "outcome": term.name if term is not None else None,
            "roots": [node(sid) for sid in roots],
            "orphans": [node(sid) for sid in orphans],
        }

    def critical_path_dict(self, trace_id: str) -> List[Dict[str, float]]:
        """The critical path as JSON-ready segment rows (root → terminal)."""
        return [{"label": seg.label, "start_ts": seg.start_ts,
                 "end_ts": seg.end_ts, "dur": seg.dur}
                for seg in self.critical_path(trace_id)]

    def to_dict(self, prefix: str = "edge.", slowest_n: int = 5) -> Dict[str, object]:
        """Whole-index summary: counts, completeness, latency breakdown.

        The stable JSON the service's ``/api/spans`` endpoint returns — the
        same facts the HTML report renders, consumable without scraping:
        trace/span totals, causal completeness over ``prefix``-terminated
        stories, the aggregate critical-path breakdown, and the ``slowest_n``
        worst end-to-end requests with their full critical paths.
        """
        complete, total = self.completeness(prefix)
        slowest = []
        for tid in self.slowest(slowest_n, prefix):
            term = self.terminal(tid)
            path = self.critical_path_dict(tid)
            total_s = (path[-1]["end_ts"] - path[0]["start_ts"]) if path else 0.0
            slowest.append({
                "trace_id": tid,
                "outcome": term.name if term is not None else None,
                "total_s": total_s,
                "critical_path": path,
            })
        return {
            "traces": len(self.traces),
            "spans": len(self.spans),
            "prefix": prefix,
            "completeness": {"complete": complete, "total": total},
            "aggregate_breakdown": self.aggregate_breakdown(prefix),
            "slowest": slowest,
        }

    def slowest(self, n: int = 5, prefix: str = "edge.") -> List[str]:
        """Trace ids of the ``n`` longest end-to-end stories (worst first)."""
        scored: List[Tuple[float, str]] = []
        for tid in self.traces:
            term = self.terminal(tid)
            if term is None or not term.name.startswith(prefix):
                continue
            chain = self.path_to_root(term.span_id)  # type: ignore[arg-type]
            if not chain:
                continue
            scored.append((term.ts - chain[0].ts, tid))
        scored.sort(key=lambda s: (-s[0], s[1]))
        return [tid for _, tid in scored[:n]]


def _short(name: str) -> str:
    """``edge.received`` → ``received`` (segment labels drop the flow)."""
    return name.split(".", 1)[-1]
